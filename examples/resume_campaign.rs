//! Kill-and-resume drill for the persistent result store: run a campaign
//! whose store "dies" mid-append (injected short writes), reopen the torn
//! file the way a restarted process would, and resume the campaign. The
//! drill gates — and exits non-zero if any gate fails — on:
//!
//! * recovery never aborting and counting the torn damage it discards,
//! * the resumed campaign replaying every persisted point from the disk
//!   tier (no re-simulation of completed work),
//! * the resumed campaign answering the same physics: replayed points are
//!   the original bits, and the extracted border agrees to well under the
//!   tolerance border consumers use. (The points the resume *recomputes*
//!   restart their warm-seed chains, so the full output is equivalent, not
//!   bit-identical, to the uninterrupted run; bit-identity across thread
//!   counts of the resume itself is pinned by the `store_resume` tests.)
//!
//! Store recovery stats land in a timestamped JSON under `results/`.
//! In production the same flow is driven by the `DSO_STORE` environment
//! variable (see README); here the store is attached explicitly so the
//! fault plan can tear it on purpose.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example resume_campaign
//! ```

use dram_stress_opt::analysis::{Analyzer, PlaneCampaign};
use dram_stress_opt::defects::{BitLineSide, Defect};
use dram_stress_opt::dram::design::{ColumnDesign, OperatingPoint};
use dram_stress_opt::eval::EvalService;
use dram_stress_opt::exec::CampaignConfig;
use dram_stress_opt::num::chaos::{FaultPlan, IoFaultKind};
use dram_stress_opt::num::interp::logspace;
use dram_stress_opt::store::ResultStore;
use dram_stress_opt::Session;

/// I/O ordinal at which every later store write starts short-writing —
/// the moment the simulated process is "killed".
const KILL_AT: usize = 8;

fn session_on(service: EvalService, threads: usize) -> Session {
    Session::from_parts(service, CampaignConfig::with_threads(threads).with_chunk(2))
}

fn campaign_on(session: &Session) -> PlaneCampaign {
    session
        .planes(
            &Defect::cell_open(BitLineSide::True),
            &OperatingPoint::nominal(),
            &logspace(1e4, 1e7, 8).expect("valid sweep"),
            1,
        )
        .expect("campaign runs")
}

fn main() {
    // Coarser time base than the production default keeps the drill
    // affordable while exercising the identical persistence hot path.
    let analyzer = Analyzer::new(ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    });
    let context = EvalService::context_for(&analyzer);
    let path = std::env::temp_dir().join(format!("dso-resume-drill-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut failed = false;

    // 1. The campaign that dies: from I/O ordinal KILL_AT on, every append
    //    persists only a prefix of its record — the on-disk state of a
    //    process killed mid-write. The campaign itself still completes
    //    (write failures degrade durability, never correctness).
    let plan = FaultPlan::new().inject_io_span(KILL_AT, usize::MAX, IoFaultKind::ShortWrite);
    let store = ResultStore::open_with_faults(&path, context, plan).expect("open store");
    let session = session_on(
        EvalService::with_store(analyzer.clone(), store).expect("context matches"),
        1,
    );
    let interrupted = campaign_on(&session);
    let at_kill = session.service().store().expect("store attached").stats();
    println!(
        "interrupted run: {} clean appends, {} torn writes, {}",
        at_kill.appends, at_kill.write_errors, interrupted.report
    );
    if at_kill.write_errors == 0 {
        eprintln!("FAIL: the kill never fired — no torn writes injected");
        failed = true;
    }
    drop(session);

    // 2. Restart: reopen the torn file. Recovery must keep every cleanly
    //    appended record, drop the torn fragments, and count the damage.
    let store = ResultStore::open(&path, context).expect("recovering open never aborts");
    let recovered = store.stats();
    println!(
        "recovery: {} records kept, {} corrupt skipped, {} torn tail bytes, \
         {} compaction(s)",
        recovered.records_loaded,
        recovered.corrupt_skipped,
        recovered.torn_tail_bytes,
        recovered.compactions
    );
    if recovered.records_loaded != at_kill.appends {
        eprintln!(
            "FAIL: recovery kept {} of {} clean appends",
            recovered.records_loaded, at_kill.appends
        );
        failed = true;
    }
    if !recovered.recovered_anything() {
        eprintln!("FAIL: the torn tail left no trace in the recovery stats");
        failed = true;
    }

    // 3. Resume: a fresh service over the recovered store replays every
    //    persisted point from disk and recomputes only what is missing —
    //    bit-identically to the uninterrupted run.
    let session = session_on(
        EvalService::with_store(analyzer, store).expect("context matches"),
        2,
    );
    let resumed = campaign_on(&session);
    let store_stats = session.service().store().expect("store attached").stats();
    println!(
        "resumed run: {} disk hits, {} recomputed, {}",
        resumed.perf.disk_hits, resumed.perf.cache_misses, resumed.report
    );
    if resumed.perf.disk_hits != recovered.records_loaded {
        eprintln!(
            "FAIL: resume replayed {} of {} recovered records from disk",
            resumed.perf.disk_hits, recovered.records_loaded
        );
        failed = true;
    }
    if resumed.perf.cache_misses
        != interrupted.perf.cache_hits + interrupted.perf.cache_misses - recovered.records_loaded
    {
        eprintln!(
            "FAIL: resume recomputed {} points (expected only the unpersisted ones)",
            resumed.perf.cache_misses
        );
        failed = true;
    }
    if resumed.report.failed() != 0 || !resumed.gaps().is_empty() {
        eprintln!("FAIL: resumed campaign lost points: {}", resumed.report);
        failed = true;
    }
    let border = |c: &PlaneCampaign| {
        c.border_from_intersection()
            .expect("no gap straddles the border")
            .expect("border in sweep")
    };
    let (b_interrupted, b_resumed) = (border(&interrupted), border(&resumed));
    if (b_resumed - b_interrupted).abs() >= 0.01 * b_interrupted {
        eprintln!("FAIL: resumed border {b_resumed:.4e} vs uninterrupted {b_interrupted:.4e}");
        failed = true;
    }
    drop(session);
    let _ = std::fs::remove_file(&path);

    // 4. Archive the drill's recovery stats under results/.
    std::fs::create_dir_all("results").expect("create results/");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"records_loaded\": {},\n  \"stale_skipped\": {},\n  \
         \"corrupt_skipped\": {},\n  \"torn_tail_bytes\": {},\n  \
         \"appends\": {},\n  \"write_errors\": {},\n  \"hits\": {},\n  \
         \"misses\": {},\n  \"compactions\": {},\n  \"disk_hits\": {},\n  \
         \"recomputed\": {}\n}}\n",
        recovered.records_loaded,
        recovered.stale_skipped,
        recovered.corrupt_skipped,
        recovered.torn_tail_bytes,
        store_stats.appends,
        at_kill.write_errors,
        store_stats.hits,
        store_stats.misses,
        recovered.compactions,
        resumed.perf.disk_hits,
        resumed.perf.cache_misses
    );
    let archived = format!("results/RESUME_drill-{stamp}.json");
    std::fs::write(&archived, &json).unwrap_or_else(|e| panic!("write {archived}: {e}"));
    println!("wrote {archived}");

    if failed {
        std::process::exit(1);
    }
    println!("resume drill: OK");
}
