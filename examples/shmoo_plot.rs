//! Shmoo plot: the pass/fail behaviour of a defective device over a
//! `(Vdd × tcyc)` stress grid — the traditional optimization method of
//! Section 2 of the paper, driven here by electrical simulation instead of
//! a production tester.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example shmoo_plot
//! ```

use dram_stress_opt::analysis::DetectionCondition;
use dram_stress_opt::defects::{BitLineSide, Defect};
use dram_stress_opt::dram::design::ColumnDesign;
use dram_stress_opt::stress::{OperatingPoint, StressKind};
use dram_stress_opt::Session;
use dso_num::interp::linspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::with_design(ColumnDesign::default());
    let nominal = OperatingPoint::nominal();
    let defect = Defect::cell_open(BitLineSide::True);
    let detection = DetectionCondition::default_for(&defect, 2);

    // Pick a defect resistance slightly *below* the nominal border: the
    // device passes at nominal conditions, and the shmoo shows which
    // corner of the stress plane exposes it.
    let border = session.border(&defect, &detection, &nominal, 0.05)?;
    let r_marginal = border.resistance * 0.9;
    println!(
        "device under test: {defect} at R = {r_marginal:.3e} Ω (border {:.3e} Ω)",
        border.resistance
    );
    println!(
        "test applied at every grid point: {}",
        detection.display_for(defect.side())
    );
    println!();

    let (vdd_lo, vdd_hi) = StressKind::SupplyVoltage.spec_range();
    let (tcyc_lo, tcyc_hi) = StressKind::CycleTime.spec_range();
    let vdds = linspace(vdd_lo, vdd_hi, 7)?;
    let tcycs = linspace(tcyc_lo, tcyc_hi, 5)?;

    let plot = session.shmoo_detection(
        &defect,
        &detection,
        r_marginal,
        "Vdd (V)",
        &vdds,
        "tcyc (s)",
        &tcycs,
        |vdd, tcyc| {
            Ok(OperatingPoint {
                vdd,
                tcyc,
                ..nominal
            })
        },
    )?;

    println!("{}", plot.render_ascii());
    println!("pass rate over the grid: {:.0}%", plot.pass_rate() * 100.0);
    let stats = session.service().cache_stats();
    println!(
        "evaluation service: {} simulated, {} replayed from cache",
        stats.misses, stats.hits
    );
    println!();
    println!("the failing corner (low Vdd, short tcyc) is exactly the stress");
    println!("combination the simulation-based optimizer picks — without needing");
    println!("a {}-point tester sweep.", vdds.len() * tcycs.len());
    println!();
    println!("CSV for external plotting:");
    print!("{}", plot.render_csv());
    Ok(())
}
