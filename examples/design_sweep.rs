//! Design-space sweep: three declarative column designs, two defects,
//! one pass.
//!
//! The paper (Table 1) fixes a single folded-bit-line column; this
//! example treats the *design* as a swept axis. Three [`DesignConfig`]s —
//! the paper column, the same electricals under a dummy-cell reference
//! scheme, and a taller two-cells-per-bit-line array — expand through the
//! config → plan → generate pipeline and run one cross-design campaign.
//! Designs whose configs expand to the same electrical plan share one
//! evaluation service, so the dummy-cell design's healthy-reference grid
//! is answered from the paper column's results (the `cross_design_dedup`
//! counter printed at the end).
//!
//! Outputs, under `results/`:
//!
//! * `design_sweep_coverage.csv` — one row per `(design, defect)` cell of
//!   the coverage matrices.
//! * `design_sweep_trend.csv` — border resistance vs transfer ratio, one
//!   row per `(defect, design)`.
//! * `design_sweep.jsonl` — one JSON document per design (the same
//!   payload the `design_sweep` service job returns).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_sweep
//! ```

use dram_stress_opt::analysis::{DesignParam, DesignSpace, DesignSweepRequest};
use dram_stress_opt::service::design_sweep_result;
use dram_stress_opt::Session;
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, DesignConfig, ReferenceScheme};
use dso_obs::json::Json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Three declarative designs. The coarser-than-production time base
    //    keeps the example affordable; drop `dt_fraction` to run the
    //    production step. "dummy" resolves its reference skew from the
    //    cell/bit-line divider at expansion time — to the same plan as
    //    "paper", which spells the skew out.
    let paper = DesignConfig {
        name: "paper".into(),
        dt_fraction: 1.0 / 250.0,
        ..DesignConfig::paper_default()
    };
    let dummy_skew = ReferenceScheme::DummyCell.resolve_skew(
        paper.cell_cap,
        paper.cells_per_bitline as f64 * paper.bl_cap_per_cell,
    );
    let paper = DesignConfig {
        reference: ReferenceScheme::SkewedRef { skew: dummy_skew },
        ..paper
    };
    let dummy = DesignConfig {
        name: "dummy".into(),
        reference: ReferenceScheme::DummyCell,
        ..paper.clone()
    };
    let tall = DesignConfig {
        name: "tall".into(),
        cells_per_bitline: 2,
        ..paper.clone()
    };
    let space = DesignSpace::new(vec![paper, dummy, tall])?;
    println!(
        "design space: {} designs, {} distinct electrical plans",
        space.len(),
        space.distinct_plans()
    );

    // 2. One pass over designs x defects x R. The session's own column
    //    only serves as the analyzer template (recovery/tuning); each
    //    design generates its own column.
    let defects = vec![
        Defect::cell_open(BitLineSide::True),
        Defect::cell_open(BitLineSide::Comp),
    ];
    let request = DesignSweepRequest::new(defects)
        .with_r_points(10)
        .with_n_ops(2);
    let session = Session::with_design(ColumnDesign::default());
    let result = session.design_sweep(&space, &request)?;

    // 3. Per-design Table-1-style coverage matrices and the trend of the
    //    border resistance over the charge-transfer ratio.
    for report in &result.designs {
        println!();
        println!("{}", report.coverage_matrix());
    }
    println!();
    println!("{}", result.trend_table(DesignParam::TransferRatio));
    println!();
    println!(
        "{} distinct plan(s) simulated for {} designs; {}",
        result.distinct_plans,
        result.designs.len(),
        result.perf
    );

    // 4. Machine-readable copies under results/.
    std::fs::create_dir_all("results")?;
    let mut coverage =
        String::from("design,defect,vdd,tcyc_s,border_ohm,fails_above,vmp_v,confidence\n");
    for report in &result.designs {
        for cell in &report.cells {
            coverage.push_str(&format!(
                "{},{},{},{:e},{},{},{},{}\n",
                report.name,
                cell.defect,
                cell.op_point.vdd,
                cell.op_point.tcyc,
                cell.border.map_or("-".to_string(), |b| format!("{b:e}")),
                cell.fails_above,
                cell.vmp,
                cell.confidence
            ));
        }
    }
    std::fs::write("results/design_sweep_coverage.csv", &coverage)?;

    let mut trend = String::from("defect,vdd,tcyc_s,transfer_ratio,border_ohm,trend\n");
    for row in result.trend_rows(DesignParam::TransferRatio) {
        let label = row
            .trend
            .map(|t| t.to_string())
            .unwrap_or_else(|| "n/a".to_string());
        for (ratio, border) in &row.borders {
            trend.push_str(&format!(
                "{},{},{:e},{ratio},{},{label}\n",
                row.defect,
                row.op_point.vdd,
                row.op_point.tcyc,
                border.map_or("-".to_string(), |b| format!("{b:e}")),
            ));
        }
    }
    std::fs::write("results/design_sweep_trend.csv", &trend)?;

    // One JSON document per design — the same per-design payload the
    // `design_sweep` service job puts on the wire.
    let payload = design_sweep_result(&result);
    let mut jsonl = String::new();
    if let Some(Json::Arr(designs)) = payload.get("designs").cloned() {
        for design in designs {
            jsonl.push_str(&design.to_string());
            jsonl.push('\n');
        }
    }
    std::fs::write("results/design_sweep.jsonl", &jsonl)?;
    println!(
        "wrote results/design_sweep_coverage.csv, results/design_sweep_trend.csv, \
         and results/design_sweep.jsonl"
    );
    Ok(())
}
