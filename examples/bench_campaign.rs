//! Offline campaign benchmark: times plane-sweep campaigns through the
//! [`Session`] API serial vs parallel, checks the determinism contract
//! (parallel output bit-identical to serial), verifies the warm-start
//! payoff, the evaluation-cache payoff (a cached repeat campaign must be
//! at least 5x faster than its cold run, with identical bits), and the
//! batched-solver payoff (a cold lanes=8 campaign must beat the cold
//! scalar solver on points per second, with identical bits), and writes
//! `BENCH_campaign.json` (schema per record:
//! `{name, threads, wall_ms, points, newton_iters, cache_hit_rate,
//! disk_hit_rate, lu_reuse_rate, bypass_hit_rate, dedup_waits,
//! serve_p99_ms, cross_design_dedup_rate}`). A disk-resume scenario
//! additionally replays the campaign from a persistent [`ResultStore`] on
//! a fresh service and gates on bit-identity and a full disk hit rate, a
//! service scenario runs interactive queries against an embedded daemon
//! busy with a bulk campaign, feeding the interactive p99 into the
//! baseline, and a design-sweep scenario runs three declarative designs
//! (two expanding to one electrical plan) in one pass, feeding the
//! deterministic cross-design dedup rate into the baseline.
//!
//! Run in release mode — debug-mode timings are meaningless:
//!
//! ```text
//! cargo run --release --example bench_campaign
//! ```
//!
//! The parallel speedup scales with available cores (the executor shards
//! the sweep grid across `DSO_THREADS` workers); on a single-core host the
//! parallel scenarios still run — and must still produce identical bits —
//! but wall-clock parity is all that can be observed. The process exits
//! non-zero if parallel output diverges from serial, the warm-start
//! iteration saving falls below 20%, the cached repeat campaign is less
//! than 5x faster than (or diverges from) its cold run, the batched
//! campaign is slower than (or diverges from) the cold scalar one, the
//! modified-Newton fast path is less than 1.5x faster than the legacy
//! full-Newton path (or reuses fewer than half its factorizations, or
//! shifts the extracted border), or a
//! derived figure regresses more than 25% against the committed
//! `BENCH_baseline.json` (refresh an intentional change with
//! `cargo run --release --example bench_campaign -- --write-baseline`).

use dram_stress_opt::analysis::{Analyzer, DesignSpace, DesignSweepRequest, PlaneCampaign};
use dram_stress_opt::bench::{effective_cores, median_of, to_json, BenchBaseline, BenchRecord};
use dram_stress_opt::eval::EvalService;
use dram_stress_opt::exec::CampaignConfig;
use dram_stress_opt::service::{
    percentile, Daemon, JobKind, JobRequest, Priority, ReplySink, ServeConfig,
};
use dram_stress_opt::store::ResultStore;
use dram_stress_opt::Session;
use dso_defects::{BitLineSide, Defect};
use dso_dram::column::DefectSite;
use dso_dram::design::{ColumnDesign, DesignConfig, OperatingPoint, ReferenceScheme};
use dso_num::interp::logspace;
use dso_spice::SolverTuning;

const REPEATS: usize = 3;
const R_POINTS: usize = 30;
const N_OPS: usize = 2;
const BASELINE_PATH: &str = "BENCH_baseline.json";
const BASELINE_TOLERANCE: f64 = 0.25;

fn main() {
    // Coarser time base than the production default keeps the bench
    // affordable while exercising the identical hot path.
    let design = ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    };
    let analyzer = Analyzer::new(design);
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = logspace(1e4, 1e7, R_POINTS).expect("valid sweep");
    let mut records: Vec<BenchRecord> = Vec::new();

    // Every cold scenario gets a fresh session (fresh memo cache) so the
    // timing measures simulation, not cache replay.
    let fresh_session = |config: &CampaignConfig| {
        Session::from_parts(EvalService::new(analyzer.clone()), config.clone())
    };

    // --- result planes: warm-start payoff at threads = 1 ---------------
    let serial_cold = CampaignConfig::with_threads(1).with_warm_start(false);
    let serial_warm = CampaignConfig::with_threads(1);
    let planes = |config: &CampaignConfig| {
        fresh_session(config)
            .planes_strict(&defect, &op, &r_values, N_OPS)
            .expect("planes build")
    };
    let (cold_ms, (_, cold_perf)) = median_of(REPEATS, || planes(&serial_cold));
    records.push(BenchRecord {
        name: "result_planes/serial-cold".into(),
        threads: 1,
        wall_ms: cold_ms,
        points: cold_perf.points,
        newton_iters: cold_perf.newton_iters,
        cache_hit_rate: cold_perf.cache_hit_rate(),
        disk_hit_rate: cold_perf.disk_hit_rate(),
        lu_reuse_rate: cold_perf.lu_reuse_rate(),
        bypass_hit_rate: cold_perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let (warm_ms, (_, warm_perf)) = median_of(REPEATS, || planes(&serial_warm));
    records.push(BenchRecord {
        name: "result_planes/serial-warm".into(),
        threads: 1,
        wall_ms: warm_ms,
        points: warm_perf.points,
        newton_iters: warm_perf.newton_iters,
        cache_hit_rate: warm_perf.cache_hit_rate(),
        disk_hit_rate: warm_perf.disk_hit_rate(),
        lu_reuse_rate: warm_perf.lu_reuse_rate(),
        bypass_hit_rate: warm_perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let saved = 1.0 - warm_perf.newton_iters as f64 / cold_perf.newton_iters.max(1) as f64;
    println!(
        "warm start: {} -> {} Newton iterations ({:.1}% saved), {:.0} ms -> {:.0} ms",
        cold_perf.newton_iters,
        warm_perf.newton_iters,
        saved * 100.0,
        cold_ms,
        warm_ms
    );
    let mut failed = false;
    if saved < 0.20 {
        eprintln!("FAIL: warm start saved {:.1}% (< 20%)", saved * 100.0);
        failed = true;
    }

    // --- plane campaign: serial vs parallel, bit-identity gate ----------
    let campaign = |config: &CampaignConfig| -> PlaneCampaign {
        fresh_session(config)
            .planes(&defect, &op, &r_values, N_OPS)
            .expect("campaign runs")
    };
    let serial_cfg = CampaignConfig::with_threads(1);
    let (serial_ms, serial) = median_of(REPEATS, || campaign(&serial_cfg));
    records.push(BenchRecord {
        name: "plane_campaign/serial".into(),
        threads: 1,
        wall_ms: serial_ms,
        points: serial.perf.points,
        newton_iters: serial.perf.newton_iters,
        cache_hit_rate: serial.perf.cache_hit_rate(),
        disk_hit_rate: serial.perf.disk_hit_rate(),
        lu_reuse_rate: serial.perf.lu_reuse_rate(),
        bypass_hit_rate: serial.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let mut widest_speedup_per_core = f64::INFINITY;
    for threads in [2, 8] {
        let cfg = CampaignConfig::with_threads(threads);
        let (ms, parallel) = median_of(REPEATS, || campaign(&cfg));
        records.push(BenchRecord {
            name: format!("plane_campaign/parallel-{threads}"),
            threads,
            wall_ms: ms,
            points: parallel.perf.points,
            newton_iters: parallel.perf.newton_iters,
            cache_hit_rate: parallel.perf.cache_hit_rate(),
            disk_hit_rate: parallel.perf.disk_hit_rate(),
            lu_reuse_rate: parallel.perf.lu_reuse_rate(),
            bypass_hit_rate: parallel.perf.bypass_hit_rate(),
            dedup_waits: 0,
            serve_p99_ms: 0.0,
            cross_design_dedup_rate: 0.0,
        });
        let speedup = serial_ms / ms;
        widest_speedup_per_core = speedup / effective_cores(threads) as f64;
        println!(
            "plane_campaign x{threads}: {:.0} ms (serial {:.0} ms, speedup {:.2}x, \
             {:.2}x/core)",
            ms, serial_ms, speedup, widest_speedup_per_core
        );
        if parallel.planes != serial.planes
            || parallel.report != serial.report
            || parallel.gaps() != serial.gaps()
        {
            eprintln!("FAIL: parallel ({threads} threads) diverged from serial output");
            failed = true;
        }
    }

    // --- batched solver: cold scalar vs lanes=8 points per second --------
    // Lanes>1 runs every point cold (no warm-start chaining), so the fair
    // scalar comparator is the cold path at one thread. The batched run
    // must answer the same physics bit-for-bit *and* beat scalar on raw
    // throughput — the payoff the SoA backend exists for.
    let batch_cfg = CampaignConfig::with_threads(1).with_lanes(8);
    let (scalar_batchref_ms, scalar_batchref) = median_of(REPEATS, || campaign(&serial_cold));
    records.push(BenchRecord {
        name: "plane_campaign/scalar-cold".into(),
        threads: 1,
        wall_ms: scalar_batchref_ms,
        points: scalar_batchref.perf.points,
        newton_iters: scalar_batchref.perf.newton_iters,
        cache_hit_rate: scalar_batchref.perf.cache_hit_rate(),
        disk_hit_rate: scalar_batchref.perf.disk_hit_rate(),
        lu_reuse_rate: scalar_batchref.perf.lu_reuse_rate(),
        bypass_hit_rate: scalar_batchref.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let (batch_ms, batched) = median_of(REPEATS, || campaign(&batch_cfg));
    records.push(BenchRecord {
        name: "plane_campaign/batched-lanes8".into(),
        threads: 1,
        wall_ms: batch_ms,
        points: batched.perf.points,
        newton_iters: batched.perf.newton_iters,
        cache_hit_rate: batched.perf.cache_hit_rate(),
        disk_hit_rate: batched.perf.disk_hit_rate(),
        lu_reuse_rate: batched.perf.lu_reuse_rate(),
        bypass_hit_rate: batched.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let pps = |points: usize, ms: f64| points as f64 / (ms / 1e3).max(1e-9);
    let scalar_pps = pps(scalar_batchref.perf.points, scalar_batchref_ms);
    let batch_pps = pps(batched.perf.points, batch_ms);
    let batch_speedup = batch_pps / scalar_pps.max(1e-9);
    println!(
        "batched solver: scalar cold {:.0} ms ({:.2} points/s) -> lanes=8 {:.0} ms \
         ({:.2} points/s, {:.2}x)",
        scalar_batchref_ms, scalar_pps, batch_ms, batch_pps, batch_speedup
    );
    if batched.planes != scalar_batchref.planes
        || batched.report != scalar_batchref.report
        || batched.gaps() != scalar_batchref.gaps()
    {
        eprintln!("FAIL: batched (lanes=8) campaign diverged from cold scalar output");
        failed = true;
    }
    if batch_speedup < 1.0 {
        eprintln!("FAIL: batched campaign ran at {batch_speedup:.2}x scalar points/s (< 1.0x)");
        failed = true;
    }

    // --- modified-Newton fast path: legacy vs default tuning -------------
    // Both runs are cold scalar at one thread; the only difference is the
    // solver tuning, so the points-per-second ratio isolates the LU-reuse
    // + device-bypass payoff. Bypass moves iterates within solver
    // tolerance (tolerance-0 bit-equivalence is pinned by the test
    // suites), so the gates here are throughput, reuse rate, and border
    // agreement — not raw bits.
    let tuned_campaign = |tuning: SolverTuning, config: &CampaignConfig| -> PlaneCampaign {
        Session::from_parts(
            EvalService::new(analyzer.clone().with_tuning(tuning)),
            config.clone(),
        )
        .planes(&defect, &op, &r_values, N_OPS)
        .expect("campaign runs")
    };
    let (legacy_ms, legacy) = median_of(REPEATS, || {
        tuned_campaign(SolverTuning::legacy(), &serial_cold)
    });
    records.push(BenchRecord {
        name: "plane_campaign/serial-cold".into(),
        threads: 1,
        wall_ms: legacy_ms,
        points: legacy.perf.points,
        newton_iters: legacy.perf.newton_iters,
        cache_hit_rate: legacy.perf.cache_hit_rate(),
        disk_hit_rate: legacy.perf.disk_hit_rate(),
        lu_reuse_rate: legacy.perf.lu_reuse_rate(),
        bypass_hit_rate: legacy.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let (mn_ms, mn) = median_of(REPEATS, || {
        tuned_campaign(SolverTuning::default(), &serial_cold)
    });
    records.push(BenchRecord {
        name: "plane_campaign/modified-newton".into(),
        threads: 1,
        wall_ms: mn_ms,
        points: mn.perf.points,
        newton_iters: mn.perf.newton_iters,
        cache_hit_rate: mn.perf.cache_hit_rate(),
        disk_hit_rate: mn.perf.disk_hit_rate(),
        lu_reuse_rate: mn.perf.lu_reuse_rate(),
        bypass_hit_rate: mn.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let legacy_pps = pps(legacy.perf.points, legacy_ms);
    let mn_pps = pps(mn.perf.points, mn_ms);
    let modified_newton_speedup = mn_pps / legacy_pps.max(1e-9);
    println!(
        "modified-Newton: legacy {:.0} ms ({:.2} points/s) -> fast path {:.0} ms \
         ({:.2} points/s, {:.2}x; LU reuse {:.0}%, bypass {:.0}%)",
        legacy_ms,
        legacy_pps,
        mn_ms,
        mn_pps,
        modified_newton_speedup,
        100.0 * mn.perf.lu_reuse_rate(),
        100.0 * mn.perf.bypass_hit_rate()
    );
    if modified_newton_speedup < 1.5 {
        eprintln!(
            "FAIL: modified-Newton ran at {modified_newton_speedup:.2}x legacy points/s (< 1.5x)"
        );
        failed = true;
    }
    if mn.perf.lu_reuse_rate() <= 0.5 {
        eprintln!(
            "FAIL: modified-Newton LU reuse rate {:.2} (<= 0.5)",
            mn.perf.lu_reuse_rate()
        );
        failed = true;
    }
    if legacy.perf.lu_reuses != 0 || legacy.perf.bypass_hits != 0 {
        eprintln!("FAIL: legacy tuning touched the fast path");
        failed = true;
    }
    let border = |c: &PlaneCampaign| c.border_from_intersection().expect("no gap at the border");
    match (border(&legacy), border(&mn)) {
        (Some(a), Some(b)) if (a - b).abs() > 1e-3 * a.abs().max(1.0) => {
            eprintln!("FAIL: modified-Newton shifted the border: {a} -> {b}");
            failed = true;
        }
        (Some(_), Some(_)) | (None, None) => {}
        (a, b) => {
            eprintln!("FAIL: modified-Newton changed border existence: {a:?} -> {b:?}");
            failed = true;
        }
    }

    // --- observability overhead: metrics registry on vs off -------------
    // The disabled fast path is a relaxed atomic load per site; with the
    // registry *enabled* the cost is a thread-local bump per event. Both
    // are timed so the overhead budget in DESIGN.md §7 stays honest.
    dso_obs::set_metrics_enabled(true);
    let (obs_ms, obs_run) = median_of(REPEATS, || campaign(&serial_cfg));
    dso_obs::set_metrics_enabled(false);
    records.push(BenchRecord {
        name: "plane_campaign/serial-metrics-on".into(),
        threads: 1,
        wall_ms: obs_ms,
        points: obs_run.perf.points,
        newton_iters: obs_run.perf.newton_iters,
        cache_hit_rate: obs_run.perf.cache_hit_rate(),
        disk_hit_rate: obs_run.perf.disk_hit_rate(),
        lu_reuse_rate: obs_run.perf.lu_reuse_rate(),
        bypass_hit_rate: obs_run.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    println!(
        "metrics enabled: {:.0} ms vs {:.0} ms disabled ({:+.1}%)",
        obs_ms,
        serial_ms,
        100.0 * (obs_ms / serial_ms - 1.0)
    );

    // --- eval cache: cold vs cached repeat on a shared session ----------
    // The first campaign on a fresh session simulates every point; the
    // repeats replay the memo cache. The repeat must be at least 5x
    // faster and bit-identical — the payoff the cache exists for.
    let shared_session = fresh_session(&serial_cfg);
    let run_shared = || {
        shared_session
            .planes(&defect, &op, &r_values, N_OPS)
            .expect("campaign runs")
    };
    let (shared_cold_ms, shared_cold) = median_of(1, run_shared);
    records.push(BenchRecord {
        name: "plane_campaign/shared-cold".into(),
        threads: 1,
        wall_ms: shared_cold_ms,
        points: shared_cold.perf.points,
        newton_iters: shared_cold.perf.newton_iters,
        cache_hit_rate: shared_cold.perf.cache_hit_rate(),
        disk_hit_rate: shared_cold.perf.disk_hit_rate(),
        lu_reuse_rate: shared_cold.perf.lu_reuse_rate(),
        bypass_hit_rate: shared_cold.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let (cached_ms, cached) = median_of(REPEATS, run_shared);
    let cache_stats = shared_session.service().cache_stats();
    records.push(BenchRecord {
        name: "plane_campaign/shared-cached".into(),
        threads: 1,
        wall_ms: cached_ms,
        points: cached.perf.points,
        newton_iters: cached.perf.newton_iters,
        cache_hit_rate: cached.perf.cache_hit_rate(),
        disk_hit_rate: cached.perf.disk_hit_rate(),
        lu_reuse_rate: cached.perf.lu_reuse_rate(),
        bypass_hit_rate: cached.perf.bypass_hit_rate(),
        dedup_waits: cache_stats.dedup_waits as usize,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    let cache_speedup = shared_cold_ms / cached_ms.max(1e-6);
    println!(
        "eval cache: cold {:.0} ms -> cached {:.2} ms ({:.0}x, hit rate {:.0}%, \
         {} entries)",
        shared_cold_ms,
        cached_ms,
        cache_speedup,
        100.0 * cached.perf.cache_hit_rate(),
        cache_stats.entries
    );
    if cached.planes != shared_cold.planes
        || cached.report != shared_cold.report
        || cached.gaps() != shared_cold.gaps()
    {
        eprintln!("FAIL: cached repeat campaign diverged from its cold run");
        failed = true;
    }
    if cache_speedup < 5.0 {
        eprintln!("FAIL: cached repeat campaign only {cache_speedup:.1}x faster (< 5x)");
        failed = true;
    }
    if cached.perf.cache_misses != 0 {
        eprintln!(
            "FAIL: cached repeat re-simulated {} points",
            cached.perf.cache_misses
        );
        failed = true;
    }
    drop(shared_session);

    // --- persistent store: disk-resume replay on a fresh service ---------
    // A campaign persisted through the result store, then replayed by a
    // *fresh* service against the reopened store — the cold-restart path a
    // resumed campaign takes. Every request must come back from the disk
    // tier, bit-identical, with zero recomputation.
    let store_path =
        std::env::temp_dir().join(format!("dso-bench-store-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let context = EvalService::context_for(&analyzer);
    let store = ResultStore::open(&store_path, context).expect("open bench store");
    let persist_session = Session::from_parts(
        EvalService::with_store(analyzer.clone(), store).expect("context matches"),
        serial_cfg.clone(),
    );
    let run_persisted = |session: &Session| {
        session
            .planes(&defect, &op, &r_values, N_OPS)
            .expect("campaign runs")
    };
    let (persist_ms, persisted) = median_of(1, || run_persisted(&persist_session));
    drop(persist_session);
    let store = ResultStore::open(&store_path, context).expect("reopen bench store");
    let resume_session = Session::from_parts(
        EvalService::with_store(analyzer.clone(), store).expect("context matches"),
        serial_cfg.clone(),
    );
    let (resume_ms, resumed) = median_of(1, || run_persisted(&resume_session));
    let store_stats = resume_session
        .service()
        .store()
        .expect("store attached")
        .stats();
    records.push(BenchRecord {
        name: "plane_campaign/disk-resume".into(),
        threads: 1,
        wall_ms: resume_ms,
        points: resumed.perf.points,
        newton_iters: resumed.perf.newton_iters,
        cache_hit_rate: resumed.perf.cache_hit_rate(),
        disk_hit_rate: resumed.perf.disk_hit_rate(),
        lu_reuse_rate: resumed.perf.lu_reuse_rate(),
        bypass_hit_rate: resumed.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate: 0.0,
    });
    println!(
        "disk resume: persist {:.0} ms -> replay {:.2} ms ({} records on disk, \
         disk hit rate {:.0}%)",
        persist_ms,
        resume_ms,
        store_stats.records_loaded,
        100.0 * resumed.perf.disk_hit_rate()
    );
    if resumed.planes != persisted.planes
        || resumed.report != persisted.report
        || resumed.gaps() != persisted.gaps()
    {
        eprintln!("FAIL: disk-resume replay diverged from the persisted run");
        failed = true;
    }
    if resumed.perf.cache_misses != 0 {
        eprintln!(
            "FAIL: disk-resume replay re-simulated {} points",
            resumed.perf.cache_misses
        );
        failed = true;
    }
    if resumed.perf.disk_hits != resumed.perf.cache_hits {
        eprintln!(
            "FAIL: disk-resume replay served {} of {} hits from memory, not disk",
            resumed.perf.cache_hits - resumed.perf.disk_hits,
            resumed.perf.cache_hits
        );
        failed = true;
    }
    drop(resume_session);
    let _ = std::fs::remove_file(&store_path);

    // --- service daemon: interactive tail latency under a bulk load ------
    // A single-worker daemon picks up a bulk plane campaign, then serves
    // interactive queries (on *different* defects, so nothing is answered
    // from a shared cache) inline at its chunk boundaries — the same
    // chunk-granular preemption the serve drill replays. The interactive
    // p99 across admission-to-done is the one lower-is-better figure the
    // baseline gate tracks.
    let serve_session = Session::from_parts(
        EvalService::new(analyzer.clone()),
        CampaignConfig::with_threads(1).with_chunk(2),
    );
    let daemon = Daemon::start(
        serve_session,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let handle = daemon.handle();
    let sink: ReplySink = std::sync::Arc::new(|_reply| true);
    let submit = |id: &str, kind: JobKind, priority: Priority| {
        let request = JobRequest {
            id: id.into(),
            kind,
            priority,
            deadline_ms: None,
        };
        let control = handle.make_control(&request);
        handle.submit(request, control, std::sync::Arc::clone(&sink));
    };
    let serve_start = std::time::Instant::now();
    submit(
        "serve-bulk",
        JobKind::Campaign {
            defect,
            op,
            r_values: logspace(1e4, 1e8, 12).expect("valid sweep"),
            n_ops: N_OPS,
        },
        Priority::Bulk,
    );
    // Wait for the worker to pick the campaign up so every query below
    // measures the preempted path (admission -> chunk boundary -> inline
    // run), not an idle-daemon fast path that would skew the baseline.
    while handle.queue_depth() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let geo_mid = |d: &Defect| {
        let (lo, hi) = d.sweep_range();
        (lo * hi).sqrt()
    };
    let sg = Defect::new(DefectSite::Sg, BitLineSide::True);
    let sv = Defect::new(DefectSite::Sv, BitLineSide::True);
    let o1 = Defect::new(DefectSite::O1, BitLineSide::True);
    let o3c = Defect::cell_open(BitLineSide::Comp);
    submit(
        "serve-border-sg",
        JobKind::Border {
            defect: sg,
            op,
            settling: 2,
            rel_tol: 0.05,
        },
        Priority::Interactive,
    );
    submit(
        "serve-border-o3c",
        JobKind::Border {
            defect: o3c,
            op,
            settling: 2,
            rel_tol: 0.05,
        },
        Priority::Interactive,
    );
    submit(
        "serve-detect-sv",
        JobKind::Detection {
            defect: sv,
            op,
            r_target: geo_mid(&sv),
            max_settling: 8,
        },
        Priority::Interactive,
    );
    submit(
        "serve-detect-o1",
        JobKind::Detection {
            defect: o1,
            op,
            r_target: geo_mid(&o1),
            max_settling: 8,
        },
        Priority::Interactive,
    );
    let serve_stats = daemon.shutdown();
    let serve_ms = serve_start.elapsed().as_secs_f64() * 1e3;
    let serve_p99_ms = percentile(&serve_stats.latency_interactive_ms, 0.99);
    records.push(BenchRecord {
        name: "serve/mixed-interactive".into(),
        threads: 1,
        wall_ms: serve_ms,
        points: serve_stats.completed as usize,
        newton_iters: 0,
        cache_hit_rate: 0.0,
        disk_hit_rate: 0.0,
        lu_reuse_rate: 0.0,
        bypass_hit_rate: 0.0,
        dedup_waits: 0,
        serve_p99_ms,
        cross_design_dedup_rate: 0.0,
    });
    println!(
        "service daemon: {} jobs in {:.0} ms, {} preemptions, interactive p50 {:.0} ms / \
         p99 {:.0} ms",
        serve_stats.completed,
        serve_ms,
        serve_stats.preemptions,
        percentile(&serve_stats.latency_interactive_ms, 0.50),
        serve_p99_ms
    );
    if serve_stats.completed != 5 || serve_stats.failed != 0 {
        eprintln!(
            "FAIL: service scenario completed {} of 5 jobs ({} failed)",
            serve_stats.completed, serve_stats.failed
        );
        failed = true;
    }
    if serve_stats.preemptions == 0 {
        eprintln!("FAIL: no query was served by chunk-granular preemption");
        failed = true;
    }

    // --- design-space sweep: cross-design healthy-reference dedup --------
    // Three declarative designs, two of which expand to the same
    // electrical plan ("skewed" spells out the exact skew "dummy"
    // resolves to) and one genuinely different (two cells per bit line).
    // The shared plan's healthy-reference grid must dedup; the rate is a
    // deterministic count, so it feeds the baseline gate directly.
    let sweep_space = {
        let base = DesignConfig {
            name: "skewed".into(),
            dt_fraction: 1.0 / 250.0,
            ..DesignConfig::paper_default()
        };
        let skew = ReferenceScheme::DummyCell.resolve_skew(
            base.cell_cap,
            base.cells_per_bitline as f64 * base.bl_cap_per_cell,
        );
        let skewed = DesignConfig {
            reference: ReferenceScheme::SkewedRef { skew },
            ..base
        };
        let dummy = DesignConfig {
            name: "dummy".into(),
            reference: ReferenceScheme::DummyCell,
            ..skewed.clone()
        };
        let tall = DesignConfig {
            name: "tall".into(),
            cells_per_bitline: 2,
            ..skewed.clone()
        };
        DesignSpace::new(vec![skewed, dummy, tall]).expect("valid design space")
    };
    let sweep_request = DesignSweepRequest::new(vec![defect])
        .with_r_points(8)
        .with_n_ops(N_OPS);
    let sweep_session = fresh_session(&serial_cfg);
    let (sweep_ms, sweep) = median_of(1, || {
        sweep_session
            .design_sweep(&sweep_space, &sweep_request)
            .expect("design sweep runs")
    });
    let sweep_campaigns =
        (sweep_space.len() * sweep_request.defects.len() * sweep_request.op_points.len()) as f64;
    let cross_design_dedup_rate = sweep.cross_design_dedup() as f64 / sweep_campaigns;
    records.push(BenchRecord {
        name: "design_sweep/three-designs".into(),
        threads: 1,
        wall_ms: sweep_ms,
        points: sweep.perf.points,
        newton_iters: sweep.perf.newton_iters,
        cache_hit_rate: sweep.perf.cache_hit_rate(),
        disk_hit_rate: sweep.perf.disk_hit_rate(),
        lu_reuse_rate: sweep.perf.lu_reuse_rate(),
        bypass_hit_rate: sweep.perf.bypass_hit_rate(),
        dedup_waits: 0,
        serve_p99_ms: 0.0,
        cross_design_dedup_rate,
    });
    println!(
        "design sweep: {} designs ({} distinct plans) in {:.0} ms \
         ({:.2} points/s), {} cross-design reuse(s) ({:.0}% of campaigns)",
        sweep_space.len(),
        sweep.distinct_plans,
        sweep_ms,
        pps(sweep.perf.points, sweep_ms),
        sweep.cross_design_dedup(),
        100.0 * cross_design_dedup_rate
    );
    if sweep.cross_design_dedup() < 1 {
        eprintln!("FAIL: equal-plan designs shared no healthy-reference grid");
        failed = true;
    }
    if sweep.designs.len() != sweep_space.len() {
        eprintln!(
            "FAIL: design sweep reported {} of {} designs",
            sweep.designs.len(),
            sweep_space.len()
        );
        failed = true;
    }

    // --- perf-regression gate vs the committed baseline ------------------
    let current = BenchBaseline {
        warm_iter_saving: saved,
        speedup_per_core: widest_speedup_per_core,
        batch_speedup,
        modified_newton_speedup,
        cross_design_dedup_rate,
        serve_p99_ms,
    };
    if std::env::args().any(|a| a == "--write-baseline") {
        std::fs::write(BASELINE_PATH, current.to_json()).expect("write baseline");
        println!("refreshed {BASELINE_PATH}: {current:?}");
    } else {
        match std::fs::read_to_string(BASELINE_PATH) {
            Ok(text) => match BenchBaseline::from_json(&text) {
                Ok(baseline) => {
                    for msg in baseline.regressions(&current, BASELINE_TOLERANCE) {
                        eprintln!("FAIL: {msg}");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("FAIL: {BASELINE_PATH} is malformed: {e}");
                    failed = true;
                }
            },
            // No committed baseline: report, don't gate (first run).
            Err(_) => println!(
                "no {BASELINE_PATH}; refresh with: \
                 cargo run --release --example bench_campaign -- --write-baseline"
            ),
        }
    }

    // One well-known file for CI artifacts, plus a timestamped copy under
    // results/ so local reruns stop silently clobbering the only record.
    let json = to_json(&records);
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    std::fs::create_dir_all("results").expect("create results/");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let archived = format!("results/BENCH_campaign-{stamp}.json");
    std::fs::write(&archived, &json).unwrap_or_else(|e| panic!("write {archived}: {e}"));
    // Store stats from the disk-resume scenario ride along in the archive
    // so a perf investigation can see recovery/compaction behaviour too.
    let store_json = format!(
        "{{\n  \"records_loaded\": {},\n  \"stale_skipped\": {},\n  \
         \"corrupt_skipped\": {},\n  \"torn_tail_bytes\": {},\n  \
         \"appends\": {},\n  \"write_errors\": {},\n  \"hits\": {},\n  \
         \"misses\": {},\n  \"compactions\": {}\n}}\n",
        store_stats.records_loaded,
        store_stats.stale_skipped,
        store_stats.corrupt_skipped,
        store_stats.torn_tail_bytes,
        store_stats.appends,
        store_stats.write_errors,
        store_stats.hits,
        store_stats.misses,
        store_stats.compactions
    );
    let store_archived = format!("results/STORE_resume-{stamp}.json");
    std::fs::write(&store_archived, &store_json)
        .unwrap_or_else(|e| panic!("write {store_archived}: {e}"));
    println!(
        "wrote BENCH_campaign.json, {archived} ({} records), and {store_archived}",
        records.len()
    );
    if failed {
        std::process::exit(1);
    }
}
