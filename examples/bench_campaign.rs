//! Offline campaign benchmark: times `result_planes` / `plane_campaign`
//! serial vs parallel, checks the determinism contract (parallel output
//! bit-identical to serial), verifies the warm-start payoff, and writes
//! `BENCH_campaign.json` (schema per record:
//! `{name, threads, wall_ms, points, newton_iters}`).
//!
//! Run in release mode — debug-mode timings are meaningless:
//!
//! ```text
//! cargo run --release --example bench_campaign
//! ```
//!
//! The parallel speedup scales with available cores (the executor shards
//! the sweep grid across `DSO_THREADS` workers); on a single-core host the
//! parallel scenarios still run — and must still produce identical bits —
//! but wall-clock parity is all that can be observed. The process exits
//! non-zero if parallel output diverges from serial or the warm-start
//! iteration saving falls below 20%.

use dram_stress_opt::analysis::{
    plane_campaign_with, result_planes_with, Analyzer, CampaignFaults, PlaneCampaign,
};
use dram_stress_opt::bench::{median_of, to_json, BenchRecord};
use dram_stress_opt::exec::CampaignConfig;
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::interp::logspace;

const REPEATS: usize = 3;
const R_POINTS: usize = 30;
const N_OPS: usize = 2;

fn main() {
    // Coarser time base than the production default keeps the bench
    // affordable while exercising the identical hot path.
    let design = ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    };
    let analyzer = Analyzer::new(design);
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = logspace(1e4, 1e7, R_POINTS).expect("valid sweep");
    let faults = CampaignFaults::new();
    let mut records: Vec<BenchRecord> = Vec::new();

    // --- result_planes: warm-start payoff at threads = 1 ---------------
    let serial_cold = CampaignConfig::with_threads(1).with_warm_start(false);
    let serial_warm = CampaignConfig::with_threads(1);
    let planes = |config: &CampaignConfig| {
        result_planes_with(&analyzer, &defect, &op, &r_values, N_OPS, config)
            .expect("planes build")
    };
    let (cold_ms, (_, cold_perf)) = median_of(REPEATS, || planes(&serial_cold));
    records.push(BenchRecord {
        name: "result_planes/serial-cold".into(),
        threads: 1,
        wall_ms: cold_ms,
        points: cold_perf.points,
        newton_iters: cold_perf.newton_iters,
    });
    let (warm_ms, (_, warm_perf)) = median_of(REPEATS, || planes(&serial_warm));
    records.push(BenchRecord {
        name: "result_planes/serial-warm".into(),
        threads: 1,
        wall_ms: warm_ms,
        points: warm_perf.points,
        newton_iters: warm_perf.newton_iters,
    });
    let saved = 1.0 - warm_perf.newton_iters as f64 / cold_perf.newton_iters.max(1) as f64;
    println!(
        "warm start: {} -> {} Newton iterations ({:.1}% saved), {:.0} ms -> {:.0} ms",
        cold_perf.newton_iters,
        warm_perf.newton_iters,
        saved * 100.0,
        cold_ms,
        warm_ms
    );
    let mut failed = false;
    if saved < 0.20 {
        eprintln!("FAIL: warm start saved {:.1}% (< 20%)", saved * 100.0);
        failed = true;
    }

    // --- plane_campaign: serial vs parallel, bit-identity gate ----------
    let campaign = |config: &CampaignConfig| -> PlaneCampaign {
        plane_campaign_with(&analyzer, &defect, &op, &r_values, N_OPS, &faults, config)
            .expect("campaign runs")
    };
    let serial_cfg = CampaignConfig::with_threads(1);
    let (serial_ms, serial) = median_of(REPEATS, || campaign(&serial_cfg));
    records.push(BenchRecord {
        name: "plane_campaign/serial".into(),
        threads: 1,
        wall_ms: serial_ms,
        points: serial.perf.points,
        newton_iters: serial.perf.newton_iters,
    });
    for threads in [2, 8] {
        let cfg = CampaignConfig::with_threads(threads);
        let (ms, parallel) = median_of(REPEATS, || campaign(&cfg));
        records.push(BenchRecord {
            name: format!("plane_campaign/parallel-{threads}"),
            threads,
            wall_ms: ms,
            points: parallel.perf.points,
            newton_iters: parallel.perf.newton_iters,
        });
        println!(
            "plane_campaign x{threads}: {:.0} ms (serial {:.0} ms, speedup {:.2}x)",
            ms,
            serial_ms,
            serial_ms / ms
        );
        if parallel.planes != serial.planes
            || parallel.report != serial.report
            || parallel.gaps() != serial.gaps()
        {
            eprintln!("FAIL: parallel ({threads} threads) diverged from serial output");
            failed = true;
        }
    }

    let json = to_json(&records);
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json ({} records)", records.len());
    if failed {
        std::process::exit(1);
    }
}
