//! Using the SPICE substrate directly: parse a classic text netlist of a
//! defective cell test bench and simulate a write-0 cycle.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example spice_deck
//! ```

use dram_stress_opt::spice::engine::{Simulator, StartMode, TranOptions};
use dram_stress_opt::spice::netlist;

const DECK: &str = "\
defective cell write-0 bench
* A storage cell (packaged as a subcircuit) behind a 200k open; the bit
* line is driven low after 10 ns through the access transistor, as during
* the write phase of a w0 cycle.
.subckt cell1t bl wl
Macc  bl   wl  xs  0  NACC W=0.15u L=0.5u
Rop   xs   st 200k
Cs    st   0  30f
.ends
Vbl   bl   0  PWL(0 1.2 10n 1.2 11n 0)
Vwl   wl   0  EXP(0 2.8 5n 0.5n 50n 0.5n)
Xc    bl   wl cell1t
.model NACC NMOS (VTO=0.55 KP=120u LAMBDA=0.03 GAMMA=0.4 PHI=0.7 BEX=-2.0)
.ic V(xc.st)=2.4 V(xc.xs)=2.4
.tran 0.05n 60n UIC
.temp 27
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = netlist::parse(DECK)?;
    println!("parsed deck: `{}`", deck.title);
    println!(
        "  {} devices, {} nodes",
        deck.circuit.device_count(),
        deck.circuit.node_count()
    );

    let tran = deck.tran.ok_or("deck has no .tran directive")?;
    let options = TranOptions {
        t_stop: tran.stop,
        dt: tran.step,
        method: Default::default(),
        start: StartMode::UseIc(deck.initial_conditions.clone()),
        adaptive: None,
    };
    let sim = Simulator::new(&deck.circuit).with_temperature(deck.temperature.unwrap_or(27.0));
    let result = sim.transient(&options)?;

    println!();
    println!("cell voltage during the write-0:");
    for &t in &[0.0, 10e-9, 20e-9, 30e-9, 40e-9, 50e-9, 60e-9] {
        println!(
            "  t = {:>5.1} ns: Vc = {:.3} V",
            t * 1e9,
            result.voltage_at("xc.st", t)?
        );
    }
    let v_end = result.final_voltage("xc.st")?;
    println!();
    if v_end > 1.0 {
        println!("after the cycle the cell still holds {v_end:.3} V — the 200 kΩ open");
        println!("blocked the 0-write within this window.");
    } else {
        println!("with this bench's generous ~40 ns write window even the 200 kΩ open");
        println!("discharges fully (Vc ends at {v_end:.3} V) — in the real column the");
        println!("window is ~11 ns, which is what makes the same defect marginal.");
    }
    Ok(())
}
