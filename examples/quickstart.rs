//! Quickstart: inject the paper's cell open, find its border resistance,
//! and optimize the stress combination against it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dram_stress_opt::analysis::DetectionCondition;
use dram_stress_opt::defects::{BitLineSide, Defect};
use dram_stress_opt::dram::design::ColumnDesign;
use dram_stress_opt::stress::{OperatingPoint, OptimizerConfig, StressKind, StressOptimizer};
use dram_stress_opt::Session;
use dso_spice::units::format_eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The memory model: one folded bit-line DRAM column. A session
    //    bundles the memoizing evaluation service with the execution
    //    policy (threads, chunking, solver lanes — all DSO_* tunable).
    let design = ColumnDesign::default();
    let session = Session::with_design(design.clone());
    let nominal = OperatingPoint::nominal();

    // 2. The defect: a resistive open between storage node and capacitor,
    //    on the true bit line (Figure 1 of the paper).
    let defect = Defect::cell_open(BitLineSide::True);
    println!("defect under analysis: {defect} ({})", defect.class());

    // 3. Border resistance at the nominal stress combination, using the
    //    detection condition {... w1 w1 w0 r0 ...}.
    let detection = DetectionCondition::default_for(&defect, 2);
    println!(
        "detection condition:   {}",
        detection.display_for(defect.side())
    );
    let border = session.border(&defect, &detection, &nominal, 0.05)?;
    println!(
        "nominal border:        {} ({} simulations)",
        border, border.evaluations
    );

    // 4. Optimize the stresses (cycle time and temperature here; add
    //    StressKind::SupplyVoltage for the full Table-1 treatment).
    let optimizer = StressOptimizer::new(design).with_config(OptimizerConfig {
        border_tol: 0.08,
        max_settling_writes: 4,
        stresses: vec![StressKind::CycleTime, StressKind::Temperature],
        ..OptimizerConfig::default()
    });
    let report = optimizer.optimize(&defect, &nominal)?;
    println!();
    println!("{report}");
    println!();
    println!(
        "the stressed combination moves the border from {} to {} — every",
        format_eng(report.nominal.border(), "Ω"),
        format_eng(report.stressed.border(), "Ω"),
    );
    println!("resistance in between is a defect the stressed test now catches.");
    Ok(())
}
