//! `dso-serve`: the resident campaign daemon.
//!
//! Wraps a [`Session`] (memo cache + optional `DSO_STORE` persistence)
//! behind the JSONL job protocol, with a bounded admission queue, two
//! request priorities, per-request deadlines, and cooperative
//! cancellation. See DESIGN.md §12 for the protocol.
//!
//! Transports:
//!
//! ```text
//! cargo run --release --example dso_serve                     # stdin/stdout
//! cargo run --release --example dso_serve -- --socket /tmp/dso.sock
//! ```
//!
//! Tuning comes from the `DSO_SERVE_*` environment knobs (workers, queue
//! capacity, frame limit, default deadline) plus the usual `DSO_THREADS`
//! / `DSO_CHUNK` / `DSO_LANES` / `DSO_STORE` session settings; see the
//! README's environment table.
//!
//! A quick smoke test over stdin/stdout:
//!
//! ```text
//! printf '%s\n' \
//!   '{"id":"b1","kind":"border","defect":{"site":"O3","side":"true"}}' \
//!   '{"control":"shutdown"}' \
//!   | cargo run --release --example dso_serve
//! ```

use dram_stress_opt::service::{serve_connection, Daemon, ServeConfig};
use dram_stress_opt::Session;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--socket needs a path");
                    std::process::exit(2);
                });
                socket = Some(path.into());
            }
            "--help" | "-h" => {
                println!("usage: dso_serve [--socket PATH]");
                println!("JSONL job protocol on stdin/stdout, or on a Unix socket.");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let config = ServeConfig::from_env();
    eprintln!(
        "dso-serve: {} worker(s), queue {}, frame limit {} bytes, default deadline {}",
        config.workers,
        config.queue_capacity,
        config.max_frame_bytes,
        if config.default_deadline_ms > 0.0 {
            format!("{} ms", config.default_deadline_ms)
        } else {
            "none".to_string()
        }
    );
    let daemon = Daemon::start(Session::from_env(), config);
    let handle = daemon.handle();

    let served = match socket {
        #[cfg(unix)]
        Some(path) => {
            eprintln!("dso-serve: listening on {}", path.display());
            dram_stress_opt::service::serve_unix(&handle, &path)
        }
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("--socket requires a Unix platform; use stdin/stdout here");
            std::process::exit(2);
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_connection(&handle, stdin.lock(), stdout)
        }
    };
    if let Err(e) = served {
        eprintln!("dso-serve: transport error: {e}");
        std::process::exit(1);
    }

    let stats = daemon.shutdown();
    eprintln!(
        "dso-serve: {} accepted, {} completed, {} cancelled, {} deadline-exceeded, \
         {} rejected, {} failed",
        stats.accepted,
        stats.completed,
        stats.cancelled,
        stats.deadline_exceeded,
        stats.rejected,
        stats.failed
    );
}
