//! Fault coverage of march tests at the nominal versus the stressed
//! stress combination — and why the paper's *detection conditions* matter.
//!
//! Two things happen when the stress combination is applied:
//!
//! 1. more defect resistances fail (the failing range widens), **but**
//! 2. writes settle more slowly, so a test must embed the derived
//!    detection condition (with its extra settling writes) to actually
//!    harvest that coverage. Standard march tests with single-write
//!    elements can even *lose* coverage under stress.
//!
//! This example measures both effects with electrically calibrated fault
//! dictionaries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example march_coverage
//! ```

use dram_stress_opt::analysis::{DefectiveCell, DetectionCondition};
use dram_stress_opt::defects::{BitLineSide, Defect};
use dram_stress_opt::dram::design::ColumnDesign;
use dram_stress_opt::march::coverage::{evaluate_coverage, FaultCase};
use dram_stress_opt::march::element::{AddressOrder, MarchElement, MarchOp};
use dram_stress_opt::march::test::MarchTest;
use dram_stress_opt::stress::OperatingPoint;
use dram_stress_opt::Session;
use dso_dram::ops::Operation;
use dso_num::interp::logspace;

/// Wraps a physical detection condition into a one-element march test
/// `{⇕(…)}` for the victim's bit-line side.
fn condition_as_march_test(
    name: &str,
    condition: &DetectionCondition,
    side: BitLineSide,
) -> Result<MarchTest, Box<dyn std::error::Error>> {
    let (seq, expected) = condition.to_logic(side);
    let mut read_idx = 0;
    let mut ops = Vec::new();
    for op in seq {
        match op {
            Operation::W0 => ops.push(MarchOp::Write(false)),
            Operation::W1 => ops.push(MarchOp::Write(true)),
            Operation::R => {
                ops.push(MarchOp::Read(expected[read_idx]));
                read_idx += 1;
            }
            Operation::Nop => {} // no pauses in these conditions
        }
    }
    Ok(MarchTest::new(
        name,
        vec![MarchElement::new(AddressOrder::Any, ops)?],
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::with_design(ColumnDesign::default());
    let defect = Defect::cell_open(BitLineSide::True);
    let nominal = OperatingPoint::nominal();
    let stressed = OperatingPoint {
        vdd: 2.1,
        tcyc: 55e-9,
        temp_c: 87.0,
        ..nominal
    };

    // Locate the nominal border and build the defect ensemble around it.
    let probe = DetectionCondition::default_for(&defect, 2);
    let border = session.border(&defect, &probe, &nominal, 0.05)?;
    let resistances = logspace(0.4 * border.resistance, 3.0 * border.resistance, 6)?;
    println!(
        "ensemble: {} instances of {defect} around the nominal border ({:.2e} Ω)",
        resistances.len(),
        border.resistance
    );
    println!();

    for (label, op) in [("nominal SC", nominal), ("stressed SC", stressed)] {
        println!(
            "=== {label}: Vdd = {} V, tcyc = {:.0} ns, T = {:+} °C ===",
            op.vdd,
            op.tcyc * 1e9,
            op.temp_c
        );
        // The paper's step: derive the detection condition *for this SC*
        // (stressed writes need more settling operations), then embed it
        // in a march element.
        let condition = session.detect(&defect, border.resistance, &op, 6)?;
        println!(
            "  derived detection condition: {}",
            condition.display_for(defect.side())
        );
        let derived_test = condition_as_march_test("derived", &condition, defect.side())?;
        // The paper's "a given test": the same fixed condition applied at
        // both stress combinations.
        let fixed_condition = DetectionCondition::default_for(&defect, 2);
        let fixed_test = condition_as_march_test("fixed", &fixed_condition, defect.side())?;

        // Calibrate one dictionary per ensemble member at this SC.
        let mut cases = Vec::new();
        for &r in &resistances {
            let dict = session.dictionary(&defect, r, &op, 5)?;
            cases.push(FaultCase {
                label: format!("{r:.2e} Ω"),
                make: Box::new(move || Box::new(DefectiveCell::new(dict.clone(), 0.0))),
            });
        }
        for test in [
            fixed_test,
            derived_test,
            MarchTest::mats_plus(),
            MarchTest::march_c_minus(),
        ] {
            let report = evaluate_coverage(&test, &cases, 16, 5)?;
            println!(
                "  {:<10} coverage {:>5.1}%  (missed: {})",
                report.test,
                report.coverage() * 100.0,
                if report.missed.is_empty() {
                    "none".to_string()
                } else {
                    report.missed.join(", ")
                }
            );
        }
        println!();
    }
    println!("the fixed test gains coverage under the stressed SC (the paper's");
    println!("claim: stresses increase the fault coverage of a given test), the");
    println!("derived condition harvests the full failing range at either SC, and");
    println!("plain march tests without the settling writes can even lose coverage");
    println!("(their single w1 no longer charges the cell, so the r1-based");
    println!("detections stop firing) — the case for embedding the method's");
    println!("detection conditions in production tests.");
    Ok(())
}
