//! Mixed-workload replay drill for the campaign service daemon.
//!
//! A seeded interleave of interactive queries (borders, detection
//! derivations, a small plane sweep, a shmoo) is replayed over a running
//! bulk campaign against an embedded daemon, once per worker-pool
//! parallelism in {1, 2, 4, 8}. The drill gates — and exits non-zero if
//! any gate fails — on:
//!
//! * **bit identity**: every job's terminal payload is byte-identical
//!   across all thread counts *and* to the equivalent direct [`Session`]
//!   call (the service determinism contract, DESIGN.md §12),
//! * **zero dropped or duplicated responses**: every job gets exactly one
//!   `accepted` and exactly one terminal reply; campaign progress frames
//!   are strictly monotonic and end at the full chunk count,
//! * **zero protocol errors** across the replay,
//! * **interactive tail latency**: pooled interactive-class p99 under
//!   [`SERVE_P99_GATE_MS`],
//! * **abort semantics**: a deadline-expired campaign reports
//!   `deadline_exceeded`, an explicitly cancelled one reports
//!   `cancelled`, and an over-capacity burst gets `queue_full`
//!   backpressure replies rather than stalls.
//!
//! Latency histograms, queue stats, and cancellation counts land in a
//! timestamped JSON under `results/`. Run with:
//!
//! ```text
//! cargo run --release --example serve_drill
//! ```

use dram_stress_opt::analysis::Analyzer;
use dram_stress_opt::defects::{BitLineSide, Defect};
use dram_stress_opt::dram::column::DefectSite;
use dram_stress_opt::dram::design::{ColumnDesign, OperatingPoint};
use dram_stress_opt::eval::EvalService;
use dram_stress_opt::exec::CampaignConfig;
use dram_stress_opt::num::interp::logspace;
use dram_stress_opt::obs::json::Json;
use dram_stress_opt::service::{
    percentile, protocol, serve_connection, Daemon, ErrorCode, JobKind, JobRequest, Priority,
    Reply, ServeConfig, ServiceStats, StressAxis, LATENCY_EDGES_MS,
};
use dram_stress_opt::Session;
use std::collections::BTreeMap;
use std::io::Cursor;
use std::sync::{Arc, Mutex};

/// Hard gate on the pooled interactive-class p99 latency. The drill's
/// queries take tens of milliseconds at the drill's coarse time base even
/// with a bulk campaign chunk ahead of them; a p99 beyond this means
/// preemption stopped working, not that CI was slow.
const SERVE_P99_GATE_MS: f64 = 2_500.0;

/// Deterministic workload seed (split-mix style LCG).
const SEED: u64 = 0x5e1_d011;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // SplitMix64: tiny, seedable, and identical on every platform.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index below `n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The drill's session: the production pipeline on a coarser time base so
/// a five-way replay stays affordable in CI.
fn fast_session(threads: usize) -> Session {
    let analyzer = Analyzer::new(ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    });
    Session::from_parts(
        EvalService::new(analyzer),
        CampaignConfig::with_threads(threads).with_chunk(2),
    )
}

/// The replayed workload: one bulk campaign plus a seeded shuffle of
/// interactive queries, every query on a defect distinct from the
/// campaign's so cross-job cache reuse cannot couple their warm-start
/// seeds (the exact condition the determinism contract is stated under).
fn workload() -> Vec<JobRequest> {
    let op = OperatingPoint::nominal();
    let bulk = JobRequest {
        id: "bulk-campaign".into(),
        kind: JobKind::Campaign {
            defect: Defect::cell_open(BitLineSide::True),
            op,
            r_values: logspace(1e4, 1e8, 16).expect("valid sweep"),
            n_ops: 2,
        },
        priority: Priority::Bulk,
        deadline_ms: None,
    };
    let geo_mid = |d: &Defect| {
        let (lo, hi) = d.sweep_range();
        (lo * hi).sqrt()
    };
    let sg = Defect::new(DefectSite::Sg, BitLineSide::True);
    let o3c = Defect::cell_open(BitLineSide::Comp);
    let sv = Defect::new(DefectSite::Sv, BitLineSide::True);
    let o1 = Defect::new(DefectSite::O1, BitLineSide::True);
    let o2 = Defect::new(DefectSite::O2, BitLineSide::True);
    let b2 = Defect::new(DefectSite::B2, BitLineSide::True);
    let o2_range = {
        let (lo, hi) = o2.sweep_range();
        logspace(lo, hi, 6).expect("valid sweep")
    };
    let mut interactive = vec![
        JobRequest {
            id: "q-border-sg".into(),
            kind: JobKind::Border {
                defect: sg,
                op,
                settling: 2,
                rel_tol: 0.05,
            },
            priority: Priority::Interactive,
            deadline_ms: None,
        },
        JobRequest {
            id: "q-border-o3c".into(),
            kind: JobKind::Border {
                defect: o3c,
                op,
                settling: 2,
                rel_tol: 0.05,
            },
            priority: Priority::Interactive,
            deadline_ms: None,
        },
        JobRequest {
            id: "q-detect-sv".into(),
            kind: JobKind::Detection {
                defect: sv,
                op,
                r_target: geo_mid(&sv),
                max_settling: 4,
            },
            priority: Priority::Interactive,
            deadline_ms: None,
        },
        JobRequest {
            id: "q-detect-o1".into(),
            kind: JobKind::Detection {
                defect: o1,
                op,
                r_target: geo_mid(&o1),
                max_settling: 4,
            },
            priority: Priority::Interactive,
            deadline_ms: None,
        },
        JobRequest {
            id: "q-planes-o2".into(),
            kind: JobKind::Planes {
                defect: o2,
                op,
                r_values: o2_range,
                n_ops: 1,
            },
            priority: Priority::Interactive,
            deadline_ms: None,
        },
        JobRequest {
            id: "q-shmoo-b2".into(),
            kind: JobKind::Shmoo {
                defect: b2,
                op,
                r_values: logspace(1e5, 1e7, 3).expect("valid sweep"),
                n_ops: 1,
                stress: StressAxis::Vdd,
                values: vec![2.0, 2.4, 2.8],
            },
            priority: Priority::Interactive,
            deadline_ms: None,
        },
    ];
    // Seeded Fisher–Yates: the interleave is shuffled but identical on
    // every run and platform.
    let mut lcg = Lcg(SEED);
    for i in (1..interactive.len()).rev() {
        interactive.swap(i, lcg.below(i + 1));
    }
    let mut jobs = vec![bulk];
    jobs.extend(interactive);
    jobs
}

/// A replayer-side pacing reader: the first frame (the bulk campaign) is
/// served immediately, every later frame after a fixed think-time gap.
/// The gap guarantees the campaign is already running when the
/// interactive queries arrive, so they exercise the chunk-granular
/// preemption path instead of just overtaking in the queue; it is far
/// shorter than the campaign, so every query still lands well before the
/// final chunk.
struct PacedReader {
    lines: Vec<Vec<u8>>,
    next: usize,
    buf: Vec<u8>,
    pos: usize,
    gap: std::time::Duration,
}

impl PacedReader {
    fn new(frames: &[String], gap_ms: u64) -> PacedReader {
        PacedReader {
            lines: frames
                .iter()
                .map(|f| format!("{f}\n").into_bytes())
                .collect(),
            next: 0,
            buf: Vec::new(),
            pos: 0,
            gap: std::time::Duration::from_millis(gap_ms),
        }
    }
}

impl std::io::Read for PacedReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        use std::io::BufRead;
        let available = self.fill_buf()?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl std::io::BufRead for PacedReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            if self.next >= self.lines.len() {
                return Ok(&[]);
            }
            if self.next > 0 {
                std::thread::sleep(self.gap);
            }
            self.buf = self.lines[self.next].clone();
            self.pos = 0;
            self.next += 1;
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos += amt;
    }
}

/// A `Write` target shared with the connection's writer thread.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The canonical terminal outcome of one job: the `done` payload's exact
/// serialization, or the structured error. `wall_ms` is deliberately
/// excluded — it is the one nondeterministic reply field.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Terminal {
    Done(String),
    Failed(ErrorCode, String),
}

impl std::fmt::Display for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Terminal::Done(payload) => write!(f, "done {payload}"),
            Terminal::Failed(code, detail) => write!(f, "error {} {detail}", code.label()),
        }
    }
}

/// One daemon replay's digest.
struct RunDigest {
    terminals: BTreeMap<String, Terminal>,
    stats: ServiceStats,
    protocol_ok: bool,
}

/// Replays `jobs` against a fresh single-worker daemon whose session runs
/// chunks on `threads` threads, and digests the reply stream.
fn replay(jobs: &[JobRequest], threads: usize) -> RunDigest {
    let daemon = Daemon::start(
        fast_session(threads),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let mut frames: Vec<String> = jobs.iter().map(JobRequest::to_line).collect();
    frames.push("{\"control\":\"shutdown\"}".to_string());
    let out = SharedBuf::default();
    serve_connection(
        &daemon.handle(),
        PacedReader::new(&frames, 150),
        out.clone(),
    )
    .expect("replay transport");
    let stats = daemon.shutdown();

    let raw = out.0.lock().expect("buffer poisoned").clone();
    let text = String::from_utf8(raw).expect("replies are UTF-8");
    let mut protocol_ok = true;
    let mut accepted: BTreeMap<String, usize> = BTreeMap::new();
    let mut chunks: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    let mut terminals: BTreeMap<String, Terminal> = BTreeMap::new();
    let known: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
    for line in text.lines() {
        let reply = match Reply::parse(line) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("FAIL[t{threads}]: unparseable reply {line:?}: {e}");
                protocol_ok = false;
                continue;
            }
        };
        let id = reply.id().unwrap_or("").to_string();
        if !known.contains(&id.as_str()) {
            eprintln!("FAIL[t{threads}]: reply for unknown id {id:?}");
            protocol_ok = false;
            continue;
        }
        if terminals.contains_key(&id) {
            eprintln!("FAIL[t{threads}]: reply after terminal for {id:?}: {line}");
            protocol_ok = false;
            continue;
        }
        match reply {
            Reply::Accepted { .. } => *accepted.entry(id).or_insert(0) += 1,
            Reply::Chunk {
                completed, total, ..
            } => chunks.entry(id).or_default().push((completed, total)),
            Reply::Done { result, .. } => {
                terminals.insert(id, Terminal::Done(result.to_string()));
            }
            Reply::Error { code, detail, .. } => {
                terminals.insert(id, Terminal::Failed(code, detail));
            }
            Reply::Stats { .. } => {
                eprintln!("FAIL[t{threads}]: unsolicited stats frame");
                protocol_ok = false;
            }
        }
    }
    // Exactly one accepted + one terminal per job; campaign progress is
    // strictly monotonic and complete.
    for job in jobs {
        if accepted.get(&job.id) != Some(&1) {
            eprintln!(
                "FAIL[t{threads}]: {:?} accepted {} time(s)",
                job.id,
                accepted.get(&job.id).unwrap_or(&0)
            );
            protocol_ok = false;
        }
        if !terminals.contains_key(&job.id) {
            eprintln!(
                "FAIL[t{threads}]: {:?} got no terminal reply (dropped)",
                job.id
            );
            protocol_ok = false;
        }
        let streamed = chunks.get(&job.id).cloned().unwrap_or_default();
        if matches!(job.kind, JobKind::Campaign { .. }) {
            if !streamed.windows(2).all(|w| w[0].0 < w[1].0) {
                eprintln!("FAIL[t{threads}]: {:?} progress not monotonic", job.id);
                protocol_ok = false;
            }
            match streamed.last() {
                Some(&(completed, total)) if completed == total => {}
                other => {
                    eprintln!(
                        "FAIL[t{threads}]: {:?} progress ended at {other:?}, want completed == total",
                        job.id
                    );
                    protocol_ok = false;
                }
            }
        } else if !streamed.is_empty() {
            eprintln!(
                "FAIL[t{threads}]: {:?} is not a campaign but streamed chunks",
                job.id
            );
            protocol_ok = false;
        }
    }
    RunDigest {
        terminals,
        stats,
        protocol_ok,
    }
}

/// The same workload executed directly on a [`Session`] — the ground
/// truth the daemon's payloads must match bit for bit.
fn direct(jobs: &[JobRequest], threads: usize) -> BTreeMap<String, Terminal> {
    let session = fast_session(threads);
    jobs.iter()
        .map(|job| {
            let outcome = match &job.kind {
                JobKind::Campaign {
                    defect,
                    op,
                    r_values,
                    n_ops,
                }
                | JobKind::Planes {
                    defect,
                    op,
                    r_values,
                    n_ops,
                } => session
                    .planes(defect, op, r_values, *n_ops)
                    .map(|c| protocol::campaign_result(&c)),
                JobKind::Border {
                    defect,
                    op,
                    settling,
                    rel_tol,
                } => {
                    let detection = dram_stress_opt::analysis::DetectionCondition::default_for(
                        defect, *settling,
                    );
                    session
                        .border(defect, &detection, op, *rel_tol)
                        .map(|b| protocol::border_result(&b))
                }
                JobKind::Detection {
                    defect,
                    op,
                    r_target,
                    max_settling,
                } => session
                    .detect(defect, *r_target, op, *max_settling)
                    .map(|d| protocol::detection_result(&d)),
                JobKind::DesignSweep {
                    designs,
                    defects,
                    op,
                    r_points,
                    n_ops,
                } => dram_stress_opt::analysis::DesignSpace::new(designs.clone())
                    .and_then(|space| {
                        let sweep =
                            dram_stress_opt::analysis::DesignSweepRequest::new(defects.clone())
                                .with_op_points(vec![*op])
                                .with_r_points(*r_points)
                                .with_n_ops(*n_ops);
                        session.design_sweep(&space, &sweep)
                    })
                    .map(|r| protocol::design_sweep_result(&r)),
                JobKind::Shmoo {
                    defect,
                    op,
                    r_values,
                    n_ops,
                    stress,
                    values,
                } => {
                    let base = *op;
                    let axis = *stress;
                    session
                        .shmoo(defect, *n_ops, r_values, axis.label(), values, move |v| {
                            Ok(axis.apply(&base, v))
                        })
                        .map(|p| protocol::shmoo_result(&p))
                }
            };
            let terminal = match outcome {
                Ok(payload) => Terminal::Done(payload.to_string()),
                Err(e) => Terminal::Failed(protocol::code_for(&e), e.to_string()),
            };
            (job.id.clone(), terminal)
        })
        .collect()
}

/// Exercises the abort semantics: a deadline that expires instantly, an
/// explicit cancel, and a burst into a single-slot queue. Returns
/// (deadline_exceeded, cancelled, queue_full) counts and protocol health.
fn abort_exercise() -> (u64, u64, u64, bool) {
    let mut ok = true;

    // Deadline + explicit cancel on one graceful connection.
    let daemon = Daemon::start(
        fast_session(2),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let campaign = |id: &str, deadline_ms: Option<f64>| JobRequest {
        id: id.into(),
        kind: JobKind::Campaign {
            defect: Defect::cell_open(BitLineSide::True),
            op: OperatingPoint::nominal(),
            r_values: logspace(1e4, 1e8, 16).expect("valid sweep"),
            n_ops: 2,
        },
        priority: Priority::Bulk,
        deadline_ms,
    };
    let input = format!(
        "{}\n{}\n{{\"control\":\"cancel\",\"id\":\"c-cancel\"}}\n{{\"control\":\"shutdown\"}}\n",
        campaign("c-deadline", Some(0.0)).to_line(),
        campaign("c-cancel", None).to_line(),
    );
    let out = SharedBuf::default();
    serve_connection(&daemon.handle(), Cursor::new(input), out.clone()).expect("abort transport");
    let stats = daemon.shutdown();
    let text = String::from_utf8(out.0.lock().expect("buffer poisoned").clone()).expect("UTF-8");
    let mut saw = BTreeMap::new();
    for line in text.lines() {
        if let Ok(Reply::Error {
            id: Some(id), code, ..
        }) = Reply::parse(line)
        {
            saw.insert(id, code);
        }
    }
    if saw.get("c-deadline") != Some(&ErrorCode::DeadlineExceeded) {
        eprintln!(
            "FAIL: expired deadline reported {:?}",
            saw.get("c-deadline")
        );
        ok = false;
    }
    if saw.get("c-cancel") != Some(&ErrorCode::Cancelled) {
        eprintln!("FAIL: explicit cancel reported {:?}", saw.get("c-cancel"));
        ok = false;
    }

    // Backpressure: burst five campaigns into a one-slot queue, then
    // vanish (EOF) so whatever was admitted cancels at the next chunk
    // boundary instead of running out the clock.
    let daemon = Daemon::start(
        fast_session(2),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
    );
    let input: String = (0..5)
        .map(|i| format!("{}\n", campaign(&format!("burst-{i}"), None).to_line()))
        .collect();
    let out = SharedBuf::default();
    serve_connection(&daemon.handle(), Cursor::new(input), out.clone()).expect("burst transport");
    let burst = daemon.shutdown();
    let text = String::from_utf8(out.0.lock().expect("buffer poisoned").clone()).expect("UTF-8");
    let mut terminals = 0;
    let mut queue_full = 0;
    for line in text.lines() {
        match Reply::parse(line) {
            Ok(Reply::Error { code, .. }) => {
                terminals += 1;
                if code == ErrorCode::QueueFull {
                    queue_full += 1;
                }
            }
            Ok(Reply::Done { .. }) => terminals += 1,
            _ => {}
        }
    }
    if burst.rejected < 3 {
        eprintln!(
            "FAIL: one-slot queue rejected only {} of a 5-job burst",
            burst.rejected
        );
        ok = false;
    }
    if burst.accepted + burst.rejected != 5 || terminals != 5 {
        eprintln!(
            "FAIL: burst accounting: {} accepted + {} rejected, {terminals} terminals (want 5)",
            burst.accepted, burst.rejected
        );
        ok = false;
    }

    (
        stats.deadline_exceeded,
        stats.cancelled + burst.cancelled,
        queue_full,
        ok,
    )
}

/// Fixed-bucket counts of `samples` over [`LATENCY_EDGES_MS`] (last
/// bucket = overflow), serialized for the drill's JSON artifact.
fn bucket_counts(samples: &[f64]) -> Json {
    let mut counts = vec![0u64; LATENCY_EDGES_MS.len() + 1];
    for &s in samples {
        let i = LATENCY_EDGES_MS.partition_point(|&e| e < s);
        counts[i] += 1;
    }
    Json::Arr(counts.into_iter().map(|c| Json::Num(c as f64)).collect())
}

fn main() {
    let jobs = workload();
    let threads = [1usize, 2, 4, 8];

    // Ground truth first: the direct Session execution of the workload.
    println!("serve drill: direct baseline ...");
    let baseline = direct(&jobs, 4);

    let mut failed = false;
    let mut interactive_ms: Vec<f64> = Vec::new();
    let mut bulk_ms: Vec<f64> = Vec::new();
    let mut queue_peak = 0usize;
    let mut preemptions = 0u64;
    let mut digests: Vec<(usize, RunDigest)> = Vec::new();
    for t in threads {
        println!("serve drill: daemon replay at {t} thread(s) ...");
        let digest = replay(&jobs, t);
        if !digest.protocol_ok {
            failed = true;
        }
        // Deterministic service counters must not depend on parallelism.
        let s = &digest.stats;
        if (
            s.accepted,
            s.completed,
            s.rejected,
            s.cancelled,
            s.deadline_exceeded,
            s.failed,
        ) != (jobs.len() as u64, jobs.len() as u64, 0, 0, 0, 0)
        {
            eprintln!(
                "FAIL[t{t}]: counters accepted={} completed={} rejected={} cancelled={} \
                 deadline_exceeded={} failed={} (want {}/{}/0/0/0/0)",
                s.accepted,
                s.completed,
                s.rejected,
                s.cancelled,
                s.deadline_exceeded,
                s.failed,
                jobs.len(),
                jobs.len()
            );
            failed = true;
        }
        // The pacing guarantees the campaign is in flight when the
        // queries land, so every replay must exercise the preemption
        // path at least once.
        if s.preemptions == 0 {
            eprintln!(
                "FAIL[t{t}]: no interactive job was run inline between campaign chunks \
                 (preemption path unexercised)"
            );
            failed = true;
        }
        interactive_ms.extend_from_slice(&s.latency_interactive_ms);
        bulk_ms.extend_from_slice(&s.latency_bulk_ms);
        queue_peak = queue_peak.max(s.queue_peak);
        preemptions += s.preemptions;
        digests.push((t, digest));
    }

    // Bit identity: every terminal payload equals the direct baseline's.
    let mut divergences = 0usize;
    for (t, digest) in &digests {
        for job in &jobs {
            let (Some(got), Some(want)) = (digest.terminals.get(&job.id), baseline.get(&job.id))
            else {
                continue; // already failed the drop gate above
            };
            if got != want {
                eprintln!(
                    "FAIL[t{t}]: {:?} diverges from direct Session\n  daemon: {got}\n  direct: {want}",
                    job.id
                );
                divergences += 1;
            }
        }
    }
    if divergences > 0 {
        failed = true;
    }

    let (deadline_exceeded, cancelled, queue_full, abort_ok) = abort_exercise();
    if !abort_ok {
        failed = true;
    }

    let p99 = percentile(&interactive_ms, 0.99);
    println!(
        "interactive latency over {} samples: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms \
         (gate {SERVE_P99_GATE_MS} ms); {} preemption(s), queue peak {}",
        interactive_ms.len(),
        percentile(&interactive_ms, 0.50),
        percentile(&interactive_ms, 0.95),
        p99,
        preemptions,
        queue_peak
    );
    if p99 > SERVE_P99_GATE_MS {
        eprintln!("FAIL: interactive p99 {p99:.1} ms exceeds the {SERVE_P99_GATE_MS} ms gate");
        failed = true;
    }

    // Archive histograms, queue stats, and cancellation counts.
    std::fs::create_dir_all("results").expect("create results/");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let class = |samples: &[f64]| {
        Json::Obj(BTreeMap::from([
            ("count".to_string(), Json::Num(samples.len() as f64)),
            ("p50_ms".to_string(), Json::Num(percentile(samples, 0.50))),
            ("p95_ms".to_string(), Json::Num(percentile(samples, 0.95))),
            ("p99_ms".to_string(), Json::Num(percentile(samples, 0.99))),
            ("buckets".to_string(), bucket_counts(samples)),
        ]))
    };
    let doc = Json::Obj(BTreeMap::from([
        (
            "threads".to_string(),
            Json::Arr(threads.iter().map(|&t| Json::Num(t as f64)).collect()),
        ),
        ("jobs".to_string(), Json::Num(jobs.len() as f64)),
        (
            "edges_ms".to_string(),
            Json::Arr(LATENCY_EDGES_MS.iter().map(|&e| Json::Num(e)).collect()),
        ),
        ("interactive".to_string(), class(&interactive_ms)),
        ("bulk".to_string(), class(&bulk_ms)),
        ("queue_peak".to_string(), Json::Num(queue_peak as f64)),
        ("preemptions".to_string(), Json::Num(preemptions as f64)),
        (
            "deadline_exceeded".to_string(),
            Json::Num(deadline_exceeded as f64),
        ),
        ("cancelled".to_string(), Json::Num(cancelled as f64)),
        ("queue_full".to_string(), Json::Num(queue_full as f64)),
        ("divergences".to_string(), Json::Num(divergences as f64)),
        ("p99_gate_ms".to_string(), Json::Num(SERVE_P99_GATE_MS)),
    ]));
    let archived = format!("results/SERVE_drill-{stamp}.json");
    std::fs::write(&archived, format!("{doc}\n"))
        .unwrap_or_else(|e| panic!("write {archived}: {e}"));
    println!("wrote {archived}");

    if failed {
        std::process::exit(1);
    }
    println!("serve drill: OK — bit-identical across threads {threads:?} and vs direct Session");
}
