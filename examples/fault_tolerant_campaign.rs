//! Fault-tolerant sweep campaigns: inject solver faults into a result-plane
//! sweep and watch the campaign degrade gracefully instead of aborting.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerant_campaign
//! ```

use dram_stress_opt::analysis::CampaignFaults;
use dram_stress_opt::defects::{BitLineSide, Defect};
use dram_stress_opt::dram::design::{ColumnDesign, OperatingPoint};
use dram_stress_opt::num::chaos::{FaultKind, FaultPlan};
use dram_stress_opt::num::interp::logspace;
use dram_stress_opt::spice::units::format_eng;
use dram_stress_opt::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::with_design(ColumnDesign::default());
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = logspace(1e4, 1e7, 10)?;

    // 1. A clean campaign: every point converges, confidence is full.
    let clean = session.planes(&defect, &op, &r_values, 2)?;
    println!("clean sweep:    {}", clean.report);
    println!("  confidence:   {}", clean.confidence);
    let b0 = clean.border_from_intersection()?.expect("border in sweep");
    println!("  border:       {}", format_eng(b0, "Ω"));

    // 2. Kill one sweep point outright (every solve at that point faults).
    //    The campaign records the failure, interpolates the gap from its
    //    converged neighbors, and still extracts the border.
    let faults = CampaignFaults::new().with_fault(1, FaultPlan::always(FaultKind::NanResidual));
    let partial = session.planes_faulted(&defect, &op, &r_values, 2, &faults)?;
    println!("partial sweep:  {}", partial.report);
    println!("  confidence:   {}", partial.confidence);
    for (lo, hi) in partial.gaps() {
        println!(
            "  gap:          {} .. {} (interpolated)",
            format_eng(*lo, "Ω"),
            format_eng(*hi, "Ω")
        );
    }
    if let Some(status) = partial.report.status_at(r_values[1]) {
        println!("  dead point:   {status}");
    }
    let b1 = partial
        .border_from_intersection()?
        .expect("border survives");
    println!(
        "  border:       {} (clean: {})",
        format_eng(b1, "Ω"),
        format_eng(b0, "Ω")
    );

    // 3. A transient fault: one NaN residual mid-transient. The recovery
    //    ladder (method fallback → timestep subdivision → gmin stepping)
    //    absorbs it; the point is merely flagged Recovered.
    let faults =
        CampaignFaults::new().with_fault(1, FaultPlan::new().inject_at(10, FaultKind::NanResidual));
    let recovered = session.planes_faulted(&defect, &op, &r_values, 2, &faults)?;
    println!("recovered sweep: {}", recovered.report);
    println!("  confidence:   {}", recovered.confidence);

    Ok(())
}
