//! # dram-stress-opt
//!
//! A reproduction of *Optimizing Stresses for Testing DRAM Cell Defects
//! Using Electrical Simulation* (Z. Al-Ars, A.J. van de Goor, J. Braun,
//! D. Richter — DATE 2003) as a Rust workspace.
//!
//! This umbrella crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`num`] — numerical kernel (LU, Newton, roots, curves).
//! * [`spice`] — SPICE-class electrical circuit simulator.
//! * [`dram`] — folded-bit-line DRAM column model and operation engine.
//! * [`defects`] — resistive defect taxonomy and injection.
//! * [`analysis`]/[`stress`] (from `dso-core`) — fault analysis (result
//!   planes, border resistance, detection conditions) and the stress
//!   optimizer that is the paper's contribution.
//! * [`march`] — march-test notation, engine, and fault coverage.
//! * [`shmoo`] — two-dimensional pass/fail stress sweeps.
//!
//! See the repository `README.md` for a quickstart, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-versus-measured
//! record of every figure and table.
//!
//! # Example
//!
//! Find the border resistance of a cell open and optimize the stress
//! combination against it:
//!
//! ```no_run
//! use dram_stress_opt::defects::{Defect, BitLineSide};
//! use dram_stress_opt::dram::ColumnDesign;
//! use dram_stress_opt::stress::{OperatingPoint, StressOptimizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = ColumnDesign::default();
//! let defect = Defect::cell_open(BitLineSide::True);
//! let optimizer = StressOptimizer::new(design);
//! let report = optimizer.optimize(&defect, &OperatingPoint::nominal())?;
//! // The stressed border resistance never exceeds the nominal one.
//! assert!(report.stressed.border() <= report.nominal.border());
//! # Ok(())
//! # }
//! ```

pub use dso_core::analysis;
pub use dso_core::bench;
pub use dso_core::eval;
pub use dso_core::exec;
pub use dso_core::service;
pub use dso_core::session;
pub use dso_core::session::{Session, SessionBuilder};
pub use dso_core::store;
pub use dso_core::stress;
pub use dso_defects as defects;
pub use dso_dram as dram;
pub use dso_march as march;
pub use dso_num as num;
pub use dso_obs as obs;
pub use dso_shmoo as shmoo;
pub use dso_spice as spice;
