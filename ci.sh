#!/bin/sh
# Offline-first CI gate. The workspace has zero third-party dependencies,
# so everything here must pass with no network access (--offline).
# dso-bench is excluded from the workspace (criterion/rand need a registry)
# and is NOT built here.
#
# Usage: ./ci.sh [lint|test]
#   lint — fmt check, clippy, rustdoc (the static stages)
#   test — build, tests, bench, resume drill, serve drill (the run stages)
# With no argument both groups run, in lint-first order. The GitHub
# workflow runs the two groups as parallel jobs.
set -eu

cd "$(dirname "$0")"

stage="${1:-all}"
case "$stage" in
lint | test | all) ;;
*)
    echo "usage: $0 [lint|test]" >&2
    exit 2
    ;;
esac

if [ "$stage" = "lint" ] || [ "$stage" = "all" ]; then
    echo "==> fmt (check only)"
    if cargo fmt --version >/dev/null 2>&1; then
        cargo fmt --all --check
    else
        echo "    rustfmt not installed; skipped"
    fi

    echo "==> clippy (offline, deny warnings)"
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy --workspace --all-targets -q --offline -- -D warnings
    else
        echo "    clippy not installed; skipped"
    fi

    echo "==> doc (offline, deny rustdoc warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q --offline
fi

if [ "$stage" = "test" ] || [ "$stage" = "all" ]; then
    echo "==> build (release, offline)"
    cargo build --release --workspace -q --offline

    echo "==> test (offline)"
    cargo test --workspace -q --offline

    echo "==> bench (release, emits BENCH_campaign.json + results/ copy)"
    # Times serial vs parallel campaigns and exits non-zero if the parallel
    # output diverges from serial, the warm-start saving regresses below 20%,
    # the cached repeat campaign is less than 5x faster than its cold run (the
    # evaluation-cache gate; hit rate and dedup count land in the JSON), the
    # batched lanes=8 campaign is slower than (or diverges from) the cold
    # scalar solver, the modified-Newton fast path is less than 1.5x the
    # legacy full-Newton throughput (or reuses fewer than half its LU
    # factorizations, or shifts the extracted border), the three-design
    # sweep shares no healthy-reference grid across its equal-plan designs
    # (the cross_design_dedup_rate figure), or a derived figure regresses
    # >25% vs the committed BENCH_baseline.json (including the
    # lower-is-better serve_p99_ms latency figure).
    # Refresh the baseline after an intentional perf change with:
    #   cargo run --release --example bench_campaign -- --write-baseline
    cargo run --release -q --offline --example bench_campaign

    echo "==> resume drill (kill-and-resume the persistent result store)"
    # Tears a result store mid-append with injected short writes, reopens it,
    # and resumes the campaign. Exits non-zero if recovery drops a clean
    # record, the resume re-simulates persisted work, or the resumed border
    # diverges. Recovery stats land in results/RESUME_drill-<stamp>.json.
    cargo run --release -q --offline --example resume_campaign

    echo "==> serve drill (mixed-workload soak of the service daemon)"
    # Replays a seeded interleave of interactive queries over a bulk
    # campaign against the embedded daemon at 1/2/4/8 workers. Exits
    # non-zero on any divergence from the direct Session results (the
    # service determinism contract), any dropped/duplicated response or
    # protocol error, an interactive-class p99 beyond the hard gate, or
    # broken abort semantics (deadline, cancel, queue_full backpressure).
    # Latency histograms, queue stats, and cancellation counts land in
    # results/SERVE_drill-<stamp>.json.
    cargo run --release -q --offline --example serve_drill
fi

echo "==> ci: OK ($stage)"
