//! A SPICE-class electrical circuit simulator.
//!
//! The paper this workspace reproduces ran its defect simulations on
//! *Titan*, a proprietary Siemens/Infineon SPICE simulator. This crate
//! rebuilds the required subset from scratch:
//!
//! * [`circuit::Circuit`] — a netlist of nodes and devices, built either
//!   programmatically or by parsing a SPICE deck ([`netlist`]); circuits
//!   serialize back to deck text via [`export::to_deck`].
//! * Device models ([`device`], [`mos`], [`diode`]): resistors, capacitors,
//!   independent voltage/current sources with [`waveform`]s, a level-1
//!   MOSFET with temperature-dependent mobility/threshold and subthreshold
//!   leakage, a junction diode, and a voltage-controlled switch.
//! * [`engine::Simulator`] — modified nodal analysis (MNA) with damped
//!   Newton–Raphson, DC operating point (with gmin stepping) and fixed-step
//!   transient analysis (backward Euler or trapezoidal), producing
//!   [`engine::TranResult`] waveforms.
//! * [`recovery`] — the bounded convergence-recovery ladder (method
//!   fallback, timestep subdivision, gmin stepping) that keeps long
//!   simulation campaigns alive through individual solver failures, with
//!   per-run [`recovery::RecoveryStats`] reporting.
//!
//! # Example
//!
//! An RC low-pass step response:
//!
//! ```
//! use dso_spice::circuit::Circuit;
//! use dso_spice::engine::{Simulator, TranOptions};
//! use dso_spice::waveform::Waveform;
//!
//! # fn main() -> Result<(), dso_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource("Vin", vin, Circuit::GROUND, Waveform::Dc(1.0))?;
//! ckt.add_resistor("R1", vin, vout, 1e3)?;
//! ckt.add_capacitor("C1", vout, Circuit::GROUND, 1e-6)?;
//!
//! let sim = Simulator::new(&ckt);
//! let result = sim.transient(&TranOptions::new(5e-3, 1e-5)?)?;
//! let v_end = result.voltage_at("out", 5e-3)?;
//! assert!((v_end - 1.0).abs() < 0.01); // fully charged after 5 tau
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod circuit;
pub mod device;
pub mod diode;
pub mod engine;
pub mod error;
pub mod export;
pub mod mos;
pub mod netlist;
pub mod recovery;
pub mod units;
pub mod waveform;

pub use circuit::{Circuit, NodeId};
pub use engine::{
    default_newton_options, transient_lockstep, Simulator, SolverTuning, TranOptions, TranResult,
};
pub use error::SpiceError;
pub use recovery::{RecoveryPolicy, RecoveryStats};

/// Absolute zero offset: converts Celsius to Kelvin.
pub const CELSIUS_TO_KELVIN: f64 = 273.15;

/// Boltzmann constant over electron charge, in V/K.
pub const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Thermal voltage `kT/q` at a temperature in Celsius.
///
/// # Example
///
/// ```
/// let vt = dso_spice::thermal_voltage(27.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temp_celsius: f64) -> f64 {
    K_OVER_Q * (temp_celsius + CELSIUS_TO_KELVIN)
}

#[cfg(test)]
mod tests {
    #[test]
    fn thermal_voltage_at_room_temp() {
        assert!((super::thermal_voltage(26.85) - 0.025852).abs() < 1e-5);
    }
}
