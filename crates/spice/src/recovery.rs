//! Convergence-recovery policy and reporting for transient analysis.
//!
//! A result-plane campaign runs hundreds of transients; a single Newton
//! divergence at one awkward defect resistance must not abort the whole
//! plane. [`RecoveryPolicy`] configures a bounded retry ladder that
//! [`crate::Simulator::transient`] climbs when a time step fails to
//! converge:
//!
//! 1. **Method fallback** — re-solve the step with backward Euler. The
//!    trapezoidal rule is not L-stable and can ring on stiff switching
//!    edges; backward Euler damps the ringing at the cost of accuracy on
//!    this one step.
//! 2. **Timestep subdivision** — split the step at its midpoint and solve
//!    the halves (recursively, up to [`RecoveryPolicy::max_subdivisions`]
//!    deep), each with backward Euler. Shorter steps strengthen the
//!    capacitor companion conductances and shrink the distance from the
//!    previous solution.
//! 3. **gmin stepping** — at the deepest subdivision, walk the same gmin
//!    homotopy ladder the DC operating-point solve uses: solve the step
//!    with a large minimum conductance, then re-solve with progressively
//!    smaller values, warm-starting each rung from the previous one, until
//!    the configured gmin is restored.
//!
//! Every action taken is tallied in [`RecoveryStats`], which rides on the
//! returned [`crate::TranResult`] so campaign layers can distinguish a
//! clean run from one that needed intervention (and downgrade confidence
//! accordingly).

/// Configuration of the transient convergence-recovery ladder.
///
/// The default policy enables every rung; [`RecoveryPolicy::strict`]
/// disables them all, restoring fail-fast behaviour for debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum recursive timestep-subdivision depth (each level halves the
    /// step, so `6` allows steps down to 1/64 of the nominal step).
    pub max_subdivisions: usize,
    /// Re-solve a failed trapezoidal step with backward Euler before
    /// subdividing.
    pub method_fallback: bool,
    /// At the deepest subdivision, attempt a gmin-stepping homotopy before
    /// surfacing the failure. Also gates the DC operating point's gmin
    /// ladder.
    pub gmin_stepping: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_subdivisions: 6,
            method_fallback: true,
            gmin_stepping: true,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: the first convergence failure is surfaced
    /// immediately. Useful to expose marginal circuits in tests.
    pub fn strict() -> Self {
        RecoveryPolicy {
            max_subdivisions: 0,
            method_fallback: false,
            gmin_stepping: false,
        }
    }

    /// Sets the maximum subdivision depth.
    pub fn with_max_subdivisions(mut self, depth: usize) -> Self {
        self.max_subdivisions = depth;
        self
    }

    /// Enables or disables the backward-Euler method fallback.
    pub fn with_method_fallback(mut self, enabled: bool) -> Self {
        self.method_fallback = enabled;
        self
    }

    /// Enables or disables gmin stepping.
    pub fn with_gmin_stepping(mut self, enabled: bool) -> Self {
        self.gmin_stepping = enabled;
        self
    }

    /// Folds the policy into a content fingerprint. The policy shapes
    /// which recovery ladder a marginal transient climbs — and therefore
    /// the result bits — so it is part of every cache key.
    pub fn fingerprint_into(&self, fp: &mut dso_num::fingerprint::Fingerprint) {
        fp.write_usize(self.max_subdivisions);
        fp.write_bool(self.method_fallback);
        fp.write_bool(self.gmin_stepping);
    }
}

/// Tally of recovery actions taken during one analysis run.
///
/// Attached to [`crate::TranResult`]; a campaign layer uses it to tell a
/// clean point from a recovered one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Newton solves attempted (including retries and homotopy rungs).
    pub solve_attempts: usize,
    /// Total Newton iterations spent across successful solves. Campaign
    /// layers use this to quantify warm-start savings.
    pub newton_iters: usize,
    /// Failed steps re-solved with backward Euler.
    pub method_fallbacks: usize,
    /// Timestep subdivisions performed.
    pub subdivisions: usize,
    /// Deepest subdivision level reached (0 = never subdivided).
    pub deepest_subdivision: usize,
    /// gmin-stepping homotopies attempted.
    pub gmin_retries: usize,
    /// Step advances that failed at least once and were subsequently
    /// recovered (sub-steps included).
    pub recovered_steps: usize,
    /// Newton iterations that assembled the Jacobian and refactored the
    /// LU (modified-Newton accounting; see
    /// [`dso_num::newton::NewtonStats`]).
    pub lu_refactors: usize,
    /// Newton iterations that reused the previous LU factorization
    /// (back-substitution only).
    pub lu_reuses: usize,
    /// Device model evaluations skipped because the terminal voltages
    /// moved less than the bypass tolerance.
    pub bypass_hits: usize,
    /// Device model evaluations performed (bypass misses).
    pub bypass_misses: usize,
}

impl RecoveryStats {
    /// `true` if the run needed no recovery action at all.
    pub fn is_clean(&self) -> bool {
        self.method_fallbacks == 0 && self.subdivisions == 0 && self.gmin_retries == 0
    }

    /// Total recovery actions (fallbacks + subdivisions + gmin retries).
    pub fn actions(&self) -> usize {
        self.method_fallbacks + self.subdivisions + self.gmin_retries
    }

    /// Accumulates another run's counters into this tally. Campaign layers
    /// use this to aggregate the many transients behind one sweep point.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.solve_attempts += other.solve_attempts;
        self.newton_iters += other.newton_iters;
        self.method_fallbacks += other.method_fallbacks;
        self.subdivisions += other.subdivisions;
        self.deepest_subdivision = self.deepest_subdivision.max(other.deepest_subdivision);
        self.gmin_retries += other.gmin_retries;
        self.recovered_steps += other.recovered_steps;
        self.lu_refactors += other.lu_refactors;
        self.lu_reuses += other.lu_reuses;
        self.bypass_hits += other.bypass_hits;
        self.bypass_misses += other.bypass_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_rungs() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_subdivisions, 6);
        assert!(p.method_fallback);
        assert!(p.gmin_stepping);
    }

    #[test]
    fn strict_disables_all_rungs() {
        let p = RecoveryPolicy::strict();
        assert_eq!(p.max_subdivisions, 0);
        assert!(!p.method_fallback);
        assert!(!p.gmin_stepping);
    }

    #[test]
    fn builders_compose() {
        let p = RecoveryPolicy::default()
            .with_max_subdivisions(2)
            .with_method_fallback(false)
            .with_gmin_stepping(false);
        assert_eq!(p.max_subdivisions, 2);
        assert!(!p.method_fallback && !p.gmin_stepping);
    }

    #[test]
    fn stats_cleanliness() {
        let mut s = RecoveryStats::default();
        assert!(s.is_clean());
        assert_eq!(s.actions(), 0);
        s.solve_attempts = 40; // solves alone do not dirty a run
        assert!(s.is_clean());
        s.method_fallbacks = 1;
        s.gmin_retries = 2;
        assert!(!s.is_clean());
        assert_eq!(s.actions(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RecoveryStats {
            solve_attempts: 10,
            newton_iters: 30,
            method_fallbacks: 1,
            subdivisions: 0,
            deepest_subdivision: 0,
            gmin_retries: 0,
            recovered_steps: 1,
            lu_refactors: 20,
            lu_reuses: 10,
            bypass_hits: 7,
            bypass_misses: 3,
        };
        let b = RecoveryStats {
            solve_attempts: 5,
            newton_iters: 12,
            method_fallbacks: 0,
            subdivisions: 2,
            deepest_subdivision: 2,
            gmin_retries: 1,
            recovered_steps: 1,
            lu_refactors: 4,
            lu_reuses: 8,
            bypass_hits: 2,
            bypass_misses: 1,
        };
        a.merge(&b);
        assert_eq!(a.solve_attempts, 15);
        assert_eq!(a.newton_iters, 42);
        assert_eq!(a.method_fallbacks, 1);
        assert_eq!(a.subdivisions, 2);
        assert_eq!(a.deepest_subdivision, 2);
        assert_eq!(a.gmin_retries, 1);
        assert_eq!(a.recovered_steps, 2);
        assert_eq!(a.lu_refactors, 24);
        assert_eq!(a.lu_reuses, 18);
        assert_eq!(a.bypass_hits, 9);
        assert_eq!(a.bypass_misses, 4);
    }
}
