//! Junction diode model.
//!
//! Used for junction-leakage modelling of storage nodes and as a simple
//! nonlinear test device for the solver. The exponential is linearized
//! above a critical voltage so Newton iterations cannot overflow.

use crate::{thermal_voltage, SpiceError, CELSIUS_TO_KELVIN};

/// Diode model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeModel {
    /// Saturation current `IS` at `tnom`, in amperes.
    pub is_sat: f64,
    /// Emission coefficient `N`.
    pub n: f64,
    /// Nominal temperature in °C.
    pub tnom: f64,
    /// Saturation-current temperature exponent `XTI` (≈ 3 for silicon).
    pub xti: f64,
    /// Energy gap `EG` in eV, drives the temperature dependence of `IS`.
    pub eg: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel {
            is_sat: 1e-14,
            n: 1.0,
            tnom: 27.0,
            xti: 3.0,
            eg: 1.11,
        }
    }
}

impl DiodeModel {
    /// Validates physical parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadParameter`] for non-positive `is_sat` or
    /// `n`, or non-finite fields.
    pub fn validate(&self, device: &str) -> Result<(), SpiceError> {
        let bad = |reason: String| {
            Err(SpiceError::BadParameter {
                device: device.to_string(),
                reason,
            })
        };
        for (name, v) in [
            ("is_sat", self.is_sat),
            ("n", self.n),
            ("tnom", self.tnom),
            ("xti", self.xti),
            ("eg", self.eg),
        ] {
            if !v.is_finite() {
                return bad(format!("{name} must be finite"));
            }
        }
        if self.is_sat <= 0.0 {
            return bad("saturation current must be positive".into());
        }
        if self.n < 1.0 {
            return bad("emission coefficient must be >= 1".into());
        }
        Ok(())
    }

    /// Temperature-adjusted saturation current.
    pub fn is_at(&self, temp: f64) -> f64 {
        let t = temp + CELSIUS_TO_KELVIN;
        let tn = self.tnom + CELSIUS_TO_KELVIN;
        let vt = thermal_voltage(temp);
        let ratio = t / tn;
        self.is_sat
            * ratio.powf(self.xti / self.n)
            * ((self.eg / (self.n * vt)) * (1.0 - tn / t)).exp()
    }

    /// Evaluates `(current, conductance)` at junction voltage `vd` and
    /// `temp` °C. The exponential is linearized above `vcrit ≈ n·vt·ln(...)`
    /// so large trial voltages during Newton iterations stay finite.
    pub fn evaluate(&self, vd: f64, temp: f64) -> (f64, f64) {
        let vt = self.n * thermal_voltage(temp);
        let is_t = self.is_at(temp);
        // Linearize above ~40 thermal voltages.
        let vmax = 40.0 * vt;
        if vd <= vmax {
            let e = (vd / vt).exp();
            let i = is_t * (e - 1.0);
            let g = (is_t * e / vt).max(1e-15);
            (i, g)
        } else {
            let e = (vmax / vt).exp();
            let g = is_t * e / vt;
            let i = is_t * (e - 1.0) + g * (vd - vmax);
            (i, g)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_bias_saturates() {
        let d = DiodeModel::default();
        let (i, g) = d.evaluate(-5.0, 27.0);
        assert!((i + d.is_sat).abs() < 1e-15);
        assert!(g > 0.0);
    }

    #[test]
    fn forward_bias_exponential() {
        let d = DiodeModel::default();
        let (i1, _) = d.evaluate(0.6, 27.0);
        let (i2, _) = d.evaluate(0.66, 27.0);
        // 60 mV ≈ one decade for n = 1.
        let ratio = i2 / i1;
        assert!((ratio.log10() - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn linearization_keeps_current_finite() {
        let d = DiodeModel::default();
        let (i, g) = d.evaluate(100.0, 27.0);
        assert!(i.is_finite() && g.is_finite());
        // Continuity at the switch-over point.
        let vt = thermal_voltage(27.0);
        let vmax = 40.0 * vt;
        let (ia, _) = d.evaluate(vmax - 1e-9, 27.0);
        let (ib, _) = d.evaluate(vmax + 1e-9, 27.0);
        assert!((ia - ib).abs() / ia < 1e-6);
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let d = DiodeModel::default();
        assert!(d.is_at(87.0) > 100.0 * d.is_at(27.0));
        assert!(d.is_at(-33.0) < d.is_at(27.0) / 100.0);
    }

    #[test]
    fn conductance_matches_finite_difference() {
        let d = DiodeModel::default();
        let h = 1e-7;
        for vd in [-1.0, 0.3, 0.6, 0.8] {
            let (_, g) = d.evaluate(vd, 27.0);
            let (ip, _) = d.evaluate(vd + h, 27.0);
            let (im, _) = d.evaluate(vd - h, 27.0);
            let g_fd: f64 = (ip - im) / (2.0 * h);
            assert!(
                (g - g_fd).abs() / g_fd.abs().max(1e-15) < 1e-3 || g_fd.abs() < 1e-12,
                "vd={vd}: {g} vs {g_fd}"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(DiodeModel::default().validate("D1").is_ok());
        let d = DiodeModel {
            is_sat: 0.0,
            ..DiodeModel::default()
        };
        assert!(d.validate("D1").is_err());
        let d = DiodeModel {
            n: 0.5,
            ..DiodeModel::default()
        };
        assert!(d.validate("D1").is_err());
    }
}
