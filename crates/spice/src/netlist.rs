//! SPICE-deck parser.
//!
//! Parses a practical subset of the classic SPICE netlist format — enough to
//! express the DRAM column and the defect-injection test benches as text:
//!
//! ```text
//! * defective cell bench
//! Vdd vdd 0 DC 2.4
//! Vwl wl 0 PULSE(0 3.6 5n 1n 1n 30n 60n)
//! Rop cell inner 200k
//! Cs inner 0 30f IC=2.4
//! M1 bl wl cell 0 NACC W=1u L=0.3u
//! .model NACC NMOS (VTO=0.55 KP=120u LAMBDA=0.03 GAMMA=0.4 PHI=0.7)
//! .tran 0.1n 60n UIC
//! .ic V(inner)=2.4
//! .temp 27
//! .end
//! ```
//!
//! Supported elements: `R`, `C` (with `IC=`), `V`/`I` (DC, `PULSE`, `PWL`,
//! `SIN`), `M` (with `.model NMOS`/`PMOS` cards), `D`, `S` (switch with
//! inline `RON=`/`ROFF=`/`VT=`), and hierarchical `X` subcircuit
//! instances. Supported directives: `.model`, `.subckt`/`.ends`, `.tran`,
//! `.ic`, `.temp`, `.end`; `*` comments and `+` continuation lines.
//!
//! Subcircuits are flattened at parse time: internal nodes and device
//! names of an instance `Xcell` are prefixed `xcell.`, ports are spliced
//! onto the instance's outer nodes, and nested instances expand
//! recursively (depth-limited to catch recursion).

use crate::circuit::Circuit;
use crate::diode::DiodeModel;
use crate::mos::{MosGeometry, MosModel, MosPolarity};
use crate::units::parse_value;
use crate::waveform::{Exp, Pulse, Waveform};
use crate::SpiceError;
use std::collections::HashMap;

/// A parsed deck: the circuit plus its analysis directives.
#[derive(Debug, Clone)]
pub struct Deck {
    /// Deck title (first line).
    pub title: String,
    /// The parsed circuit.
    pub circuit: Circuit,
    /// `.tran step stop [UIC]`, if present.
    pub tran: Option<TranDirective>,
    /// `.dc SOURCE start stop step`, if present.
    pub dc: Option<DcDirective>,
    /// `.ic V(node)=value` entries.
    pub initial_conditions: Vec<(String, f64)>,
    /// `.temp` in °C, if present.
    pub temperature: Option<f64>,
}

/// The `.tran` directive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranDirective {
    /// Output time step.
    pub step: f64,
    /// Stop time.
    pub stop: f64,
    /// `true` if `UIC` was given (skip the DC operating point).
    pub uic: bool,
}

/// The `.dc SOURCE start stop step` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct DcDirective {
    /// Swept voltage-source name.
    pub source: String,
    /// Sweep start value.
    pub start: f64,
    /// Sweep stop value.
    pub stop: f64,
    /// Sweep increment (positive).
    pub step: f64,
}

impl DcDirective {
    /// The sweep values, inclusive of both ends.
    pub fn values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut v = self.start;
        if self.stop >= self.start {
            while v <= self.stop + 1e-12 * self.step {
                out.push(v);
                v += self.step;
            }
        } else {
            while v >= self.stop - 1e-12 * self.step {
                out.push(v);
                v -= self.step;
            }
        }
        out
    }
}

/// A subcircuit definition collected during the first pass.
#[derive(Debug, Clone)]
struct SubcktDef {
    ports: Vec<String>,
    /// Body element lines with their original line numbers.
    body: Vec<(usize, String)>,
}

/// Node/name mapping for one level of subcircuit expansion.
#[derive(Debug, Clone, Default)]
struct ExpandCtx {
    /// Device-name prefix, e.g. `"xcell."` (empty at top level).
    prefix: String,
    /// Port token → outer node name.
    port_map: HashMap<String, String>,
}

impl ExpandCtx {
    fn map_node(&self, token: &str) -> String {
        let lower = token.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return token.to_string(); // ground is global
        }
        if let Some(outer) = self.port_map.get(&lower) {
            return outer.clone();
        }
        format!("{}{token}", self.prefix)
    }

    fn map_device(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }
}

/// Maximum subcircuit nesting depth (guards against recursion).
const MAX_SUBCKT_DEPTH: usize = 8;

/// Parses a SPICE deck.
///
/// # Errors
///
/// Returns [`SpiceError::Parse`] with a line number for syntax errors, and
/// the underlying builder errors (duplicate devices, bad parameters) for
/// semantic ones.
///
/// # Example
///
/// ```
/// let deck = dso_spice::netlist::parse(
///     "rc bench\n\
///      V1 in 0 DC 1\n\
///      R1 in out 1k\n\
///      C1 out 0 1n\n\
///      .tran 10n 5u\n\
///      .end\n",
/// )?;
/// assert_eq!(deck.circuit.device_count(), 3);
/// assert!((deck.tran.unwrap().stop - 5e-6).abs() < 1e-12);
/// # Ok::<(), dso_spice::SpiceError>(())
/// ```
pub fn parse(text: &str) -> Result<Deck, SpiceError> {
    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if let Some(cont) = line.strip_prefix('+') {
            match logical.last_mut() {
                Some((_, prev)) => {
                    prev.push(' ');
                    prev.push_str(cont.trim());
                }
                None => {
                    return Err(SpiceError::Parse {
                        line: i + 1,
                        reason: "continuation line with nothing to continue".into(),
                    })
                }
            }
        } else {
            logical.push((i + 1, line.to_string()));
        }
    }

    let title = logical
        .first()
        .map(|(_, l)| l.trim().to_string())
        .unwrap_or_default();

    // First pass: collect .model cards (usable from anywhere) and
    // .subckt definitions (their body lines are excluded from the main
    // pass).
    let mut mos_models: HashMap<String, MosModel> = HashMap::new();
    let mut diode_models: HashMap<String, DiodeModel> = HashMap::new();
    let mut subckts: HashMap<String, SubcktDef> = HashMap::new();
    let mut in_subckt: Option<(String, SubcktDef)> = None;
    let mut subckt_lines: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (line_no, line) in logical.iter().skip(1) {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with(".model") {
            parse_model(trimmed, *line_no, &mut mos_models, &mut diode_models)?;
            continue;
        }
        if lower.starts_with(".subckt") {
            if in_subckt.is_some() {
                return Err(SpiceError::Parse {
                    line: *line_no,
                    reason: "nested .subckt definitions are not supported".into(),
                });
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() < 3 {
                return Err(SpiceError::Parse {
                    line: *line_no,
                    reason: ".subckt expects `.subckt name port1 [port2 …]`".into(),
                });
            }
            let name = fields[1].to_ascii_lowercase();
            let ports = fields[2..].iter().map(|p| p.to_ascii_lowercase()).collect();
            in_subckt = Some((
                name,
                SubcktDef {
                    ports,
                    body: Vec::new(),
                },
            ));
            subckt_lines.insert(*line_no);
            continue;
        }
        if lower.starts_with(".ends") {
            match in_subckt.take() {
                Some((name, def)) => {
                    subckts.insert(name, def);
                }
                None => {
                    return Err(SpiceError::Parse {
                        line: *line_no,
                        reason: ".ends without matching .subckt".into(),
                    })
                }
            }
            subckt_lines.insert(*line_no);
            continue;
        }
        if let Some((_, def)) = in_subckt.as_mut() {
            subckt_lines.insert(*line_no);
            if !trimmed.is_empty() && !trimmed.starts_with('*') {
                def.body.push((*line_no, trimmed.to_string()));
            }
        }
    }
    if let Some((name, _)) = in_subckt {
        return Err(SpiceError::Parse {
            line: 0,
            reason: format!(".subckt `{name}` is never closed with .ends"),
        });
    }

    let mut circuit = Circuit::new();
    let mut tran = None;
    let mut dc = None;
    let mut ics = Vec::new();
    let mut temperature = None;

    for (line_no, line) in logical.iter().skip(1) {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') || subckt_lines.contains(line_no) {
            continue;
        }
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with('.') {
            if lower.starts_with(".model") {
                continue; // handled in first pass
            } else if lower.starts_with(".tran") {
                tran = Some(parse_tran(trimmed, *line_no)?);
            } else if lower.starts_with(".dc") {
                let fields: Vec<&str> = trimmed.split_whitespace().collect();
                if fields.len() != 5 {
                    return Err(SpiceError::Parse {
                        line: *line_no,
                        reason: ".dc expects `.dc SOURCE start stop step`".into(),
                    });
                }
                let step = parse_field(fields[4], *line_no)?;
                if step <= 0.0 {
                    return Err(SpiceError::Parse {
                        line: *line_no,
                        reason: ".dc step must be positive".into(),
                    });
                }
                dc = Some(DcDirective {
                    source: fields[1].to_string(),
                    start: parse_field(fields[2], *line_no)?,
                    stop: parse_field(fields[3], *line_no)?,
                    step,
                });
            } else if lower.starts_with(".ic") {
                parse_ic(trimmed, *line_no, &mut ics)?;
            } else if lower.starts_with(".temp") {
                let fields: Vec<&str> = trimmed.split_whitespace().collect();
                if fields.len() != 2 {
                    return Err(SpiceError::Parse {
                        line: *line_no,
                        reason: ".temp expects one value".into(),
                    });
                }
                temperature = Some(parse_field(fields[1], *line_no)?);
            } else if lower.starts_with(".end") {
                break;
            } else {
                return Err(SpiceError::Parse {
                    line: *line_no,
                    reason: format!("unsupported directive `{trimmed}`"),
                });
            }
            continue;
        }
        parse_element(
            trimmed,
            *line_no,
            &mut circuit,
            &mos_models,
            &diode_models,
            &subckts,
            &ExpandCtx::default(),
            0,
        )?;
    }

    Ok(Deck {
        title,
        circuit,
        tran,
        dc,
        initial_conditions: ics,
        temperature,
    })
}

fn parse_field(text: &str, line: usize) -> Result<f64, SpiceError> {
    parse_value(text).map_err(|_| SpiceError::Parse {
        line,
        reason: format!("cannot parse `{text}` as a number"),
    })
}

fn parse_tran(line_text: &str, line: usize) -> Result<TranDirective, SpiceError> {
    let fields: Vec<&str> = line_text.split_whitespace().collect();
    if fields.len() < 3 {
        return Err(SpiceError::Parse {
            line,
            reason: ".tran expects `.tran step stop [UIC]`".into(),
        });
    }
    let step = parse_field(fields[1], line)?;
    let stop = parse_field(fields[2], line)?;
    let uic = fields
        .get(3)
        .map(|f| f.eq_ignore_ascii_case("uic"))
        .unwrap_or(false);
    Ok(TranDirective { step, stop, uic })
}

fn parse_ic(line_text: &str, line: usize, out: &mut Vec<(String, f64)>) -> Result<(), SpiceError> {
    // .ic V(node)=value V(node2)=value2 …
    for field in line_text.split_whitespace().skip(1) {
        let lower = field.to_ascii_lowercase();
        let inner = lower
            .strip_prefix("v(")
            .and_then(|rest| rest.split_once(")="))
            .ok_or_else(|| SpiceError::Parse {
                line,
                reason: format!(".ic entries look like V(node)=value, got `{field}`"),
            })?;
        let (node, value) = inner;
        out.push((node.to_string(), parse_field(value, line)?));
    }
    Ok(())
}

fn parse_model(
    line_text: &str,
    line: usize,
    mos: &mut HashMap<String, MosModel>,
    diodes: &mut HashMap<String, DiodeModel>,
) -> Result<(), SpiceError> {
    // .model NAME TYPE (KEY=VAL …) — parens optional.
    let cleaned = line_text.replace(['(', ')'], " ");
    let fields: Vec<&str> = cleaned.split_whitespace().collect();
    if fields.len() < 3 {
        return Err(SpiceError::Parse {
            line,
            reason: ".model expects `.model name type (params)`".into(),
        });
    }
    let name = fields[1].to_ascii_lowercase();
    let kind = fields[2].to_ascii_lowercase();
    let params = parse_kv(&fields[3..], line)?;
    match kind.as_str() {
        "nmos" | "pmos" => {
            let mut m = if kind == "nmos" {
                MosModel::default()
            } else {
                MosModel::default_pmos()
            };
            m.polarity = if kind == "nmos" {
                MosPolarity::Nmos
            } else {
                MosPolarity::Pmos
            };
            for (k, v) in &params {
                match k.as_str() {
                    "vto" => m.vto = *v,
                    "kp" => m.kp = *v,
                    "lambda" => m.lambda = *v,
                    "gamma" => m.gamma = *v,
                    "phi" => m.phi = *v,
                    "bex" => m.bex = *v,
                    "tcv" => m.tcv = *v,
                    "n" => m.n_sub = *v,
                    "tnom" => m.tnom = *v,
                    "cox" => m.cox = *v,
                    other => {
                        return Err(SpiceError::Parse {
                            line,
                            reason: format!("unknown MOS model parameter `{other}`"),
                        })
                    }
                }
            }
            mos.insert(name, m);
        }
        "d" => {
            let mut d = DiodeModel::default();
            for (k, v) in &params {
                match k.as_str() {
                    "is" => d.is_sat = *v,
                    "n" => d.n = *v,
                    "tnom" => d.tnom = *v,
                    "xti" => d.xti = *v,
                    "eg" => d.eg = *v,
                    other => {
                        return Err(SpiceError::Parse {
                            line,
                            reason: format!("unknown diode model parameter `{other}`"),
                        })
                    }
                }
            }
            diodes.insert(name, d);
        }
        other => {
            return Err(SpiceError::Parse {
                line,
                reason: format!("unsupported model type `{other}`"),
            })
        }
    }
    Ok(())
}

fn parse_kv(fields: &[&str], line: usize) -> Result<Vec<(String, f64)>, SpiceError> {
    let mut out = Vec::new();
    for field in fields {
        let (k, v) = field.split_once('=').ok_or_else(|| SpiceError::Parse {
            line,
            reason: format!("expected KEY=VALUE, got `{field}`"),
        })?;
        out.push((k.to_ascii_lowercase(), parse_field(v, line)?));
    }
    Ok(out)
}

fn parse_waveform(fields: &[&str], line: usize) -> Result<Waveform, SpiceError> {
    if fields.is_empty() {
        return Err(SpiceError::Parse {
            line,
            reason: "source needs a value or waveform".into(),
        });
    }
    let joined = fields.join(" ");
    let lower = joined.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("dc") {
        return Ok(Waveform::Dc(parse_field(rest.trim(), line)?));
    }
    if lower.starts_with("pulse") {
        let args = waveform_args(&joined, line)?;
        if args.len() != 7 {
            return Err(SpiceError::Parse {
                line,
                reason: format!("PULSE expects 7 arguments, got {}", args.len()),
            });
        }
        return Ok(Waveform::Pulse(Pulse {
            v1: args[0],
            v2: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
            period: args[6],
        }));
    }
    if lower.starts_with("pwl") {
        let args = waveform_args(&joined, line)?;
        if args.len() < 2 || args.len() % 2 != 0 {
            return Err(SpiceError::Parse {
                line,
                reason: "PWL expects an even number of arguments (t v pairs)".into(),
            });
        }
        let points = args.chunks(2).map(|c| (c[0], c[1])).collect();
        return Ok(Waveform::Pwl(points));
    }
    if lower.starts_with("exp") {
        let args = waveform_args(&joined, line)?;
        if args.len() != 6 {
            return Err(SpiceError::Parse {
                line,
                reason: format!("EXP expects 6 arguments, got {}", args.len()),
            });
        }
        return Ok(Waveform::Exp(Exp {
            v1: args[0],
            v2: args[1],
            rise_delay: args[2],
            rise_tau: args[3],
            fall_delay: args[4],
            fall_tau: args[5],
        }));
    }
    if lower.starts_with("sin") {
        let args = waveform_args(&joined, line)?;
        if args.len() < 3 {
            return Err(SpiceError::Parse {
                line,
                reason: "SIN expects at least (offset amplitude freq)".into(),
            });
        }
        return Ok(Waveform::Sine {
            offset: args[0],
            amplitude: args[1],
            frequency: args[2],
            delay: args.get(3).copied().unwrap_or(0.0),
        });
    }
    // Bare number: DC.
    if fields.len() == 1 {
        return Ok(Waveform::Dc(parse_field(fields[0], line)?));
    }
    Err(SpiceError::Parse {
        line,
        reason: format!("cannot parse source specification `{joined}`"),
    })
}

/// Extracts the numeric arguments of `NAME(a b c)` or `NAME a b c`.
fn waveform_args(text: &str, line: usize) -> Result<Vec<f64>, SpiceError> {
    let inner = match (text.find('('), text.rfind(')')) {
        (Some(open), Some(close)) if close > open => &text[open + 1..close],
        _ => text
            .split_once(char::is_whitespace)
            .map(|(_, rest)| rest)
            .unwrap_or(""),
    };
    inner
        .split([' ', ','])
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_field(s.trim(), line))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn parse_element(
    line_text: &str,
    line: usize,
    circuit: &mut Circuit,
    mos_models: &HashMap<String, MosModel>,
    diode_models: &HashMap<String, DiodeModel>,
    subckts: &HashMap<String, SubcktDef>,
    ctx: &ExpandCtx,
    depth: usize,
) -> Result<(), SpiceError> {
    let fields: Vec<&str> = line_text.split_whitespace().collect();
    let name = &ctx.map_device(fields[0]);
    let kind = fields[0]
        .chars()
        .next()
        .expect("non-empty line")
        .to_ascii_uppercase();
    let need = |count: usize| -> Result<(), SpiceError> {
        if fields.len() < count {
            Err(SpiceError::Parse {
                line,
                reason: format!("`{name}` expects at least {} fields", count - 1),
            })
        } else {
            Ok(())
        }
    };
    match kind {
        'R' => {
            need(4)?;
            let p = circuit.node(&ctx.map_node(fields[1]));
            let n = circuit.node(&ctx.map_node(fields[2]));
            circuit.add_resistor(name, p, n, parse_field(fields[3], line)?)
        }
        'C' => {
            need(4)?;
            let p = circuit.node(&ctx.map_node(fields[1]));
            let n = circuit.node(&ctx.map_node(fields[2]));
            let value = parse_field(fields[3], line)?;
            let mut ic = None;
            for extra in &fields[4..] {
                let lower = extra.to_ascii_lowercase();
                if let Some(v) = lower.strip_prefix("ic=") {
                    ic = Some(parse_field(v, line)?);
                } else {
                    return Err(SpiceError::Parse {
                        line,
                        reason: format!("unknown capacitor option `{extra}`"),
                    });
                }
            }
            circuit.add_capacitor_ic(name, p, n, value, ic)
        }
        'V' | 'I' => {
            need(4)?;
            let p = circuit.node(&ctx.map_node(fields[1]));
            let n = circuit.node(&ctx.map_node(fields[2]));
            let waveform = parse_waveform(&fields[3..], line)?;
            if kind == 'V' {
                circuit.add_vsource(name, p, n, waveform)
            } else {
                circuit.add_isource(name, p, n, waveform)
            }
        }
        'M' => {
            need(6)?;
            let d = circuit.node(&ctx.map_node(fields[1]));
            let g = circuit.node(&ctx.map_node(fields[2]));
            let s = circuit.node(&ctx.map_node(fields[3]));
            let b = circuit.node(&ctx.map_node(fields[4]));
            let model_name = fields[5].to_ascii_lowercase();
            let model = mos_models
                .get(&model_name)
                .cloned()
                .ok_or_else(|| SpiceError::Parse {
                    line,
                    reason: format!("unknown MOS model `{}`", fields[5]),
                })?;
            let params = parse_kv(&fields[6..], line)?;
            let mut w = 1e-6;
            let mut l = 1e-6;
            for (k, v) in &params {
                match k.as_str() {
                    "w" => w = *v,
                    "l" => l = *v,
                    other => {
                        return Err(SpiceError::Parse {
                            line,
                            reason: format!("unknown MOSFET instance parameter `{other}`"),
                        })
                    }
                }
            }
            circuit.add_mosfet(name, d, g, s, b, model, MosGeometry::new(w, l)?)
        }
        'D' => {
            need(4)?;
            let p = circuit.node(&ctx.map_node(fields[1]));
            let n = circuit.node(&ctx.map_node(fields[2]));
            let model_name = fields[3].to_ascii_lowercase();
            let model =
                diode_models
                    .get(&model_name)
                    .copied()
                    .ok_or_else(|| SpiceError::Parse {
                        line,
                        reason: format!("unknown diode model `{}`", fields[3]),
                    })?;
            circuit.add_diode(name, p, n, model)
        }
        'S' => {
            need(6)?;
            let p = circuit.node(&ctx.map_node(fields[1]));
            let n = circuit.node(&ctx.map_node(fields[2]));
            let cp = circuit.node(&ctx.map_node(fields[3]));
            let cn = circuit.node(&ctx.map_node(fields[4]));
            let params = parse_kv(&fields[5..], line)?;
            let mut ron = 1.0;
            let mut roff = 1e9;
            let mut vt = 0.5;
            for (k, v) in &params {
                match k.as_str() {
                    "ron" => ron = *v,
                    "roff" => roff = *v,
                    "vt" => vt = *v,
                    other => {
                        return Err(SpiceError::Parse {
                            line,
                            reason: format!("unknown switch parameter `{other}`"),
                        })
                    }
                }
            }
            circuit.add_vswitch(name, p, n, cp, cn, ron, roff, vt)
        }
        'X' => {
            // Xname node1 node2 ... SUBNAME
            need(3)?;
            if depth >= MAX_SUBCKT_DEPTH {
                return Err(SpiceError::Parse {
                    line,
                    reason: format!(
                        "subcircuit nesting deeper than {MAX_SUBCKT_DEPTH} (recursive definition?)"
                    ),
                });
            }
            let sub_name = fields[fields.len() - 1].to_ascii_lowercase();
            let def = subckts.get(&sub_name).ok_or_else(|| SpiceError::Parse {
                line,
                reason: format!("unknown subcircuit `{}`", fields[fields.len() - 1]),
            })?;
            let outer_nodes = &fields[1..fields.len() - 1];
            if outer_nodes.len() != def.ports.len() {
                return Err(SpiceError::Parse {
                    line,
                    reason: format!(
                        "subcircuit `{sub_name}` has {} ports, instance gives {} nodes",
                        def.ports.len(),
                        outer_nodes.len()
                    ),
                });
            }
            let mut port_map = HashMap::new();
            for (port, outer) in def.ports.iter().zip(outer_nodes) {
                port_map.insert(port.clone(), ctx.map_node(outer));
            }
            let inner_ctx = ExpandCtx {
                prefix: format!("{}.", name.to_ascii_lowercase()),
                port_map,
            };
            for (body_line, body_text) in &def.body {
                parse_element(
                    body_text,
                    *body_line,
                    circuit,
                    mos_models,
                    diode_models,
                    subckts,
                    &inner_ctx,
                    depth + 1,
                )?;
            }
            Ok(())
        }
        other => Err(SpiceError::Parse {
            line,
            reason: format!("unsupported element type `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulator, StartMode, TranOptions};

    #[test]
    fn parse_rc_deck_and_simulate() {
        let deck = parse(
            "rc bench\n\
             V1 in 0 DC 1\n\
             R1 in out 1k\n\
             C1 out 0 1n\n\
             .tran 10n 5u\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.title, "rc bench");
        let tran = deck.tran.unwrap();
        assert!(!tran.uic);
        let opts = TranOptions::new(tran.stop, tran.step).unwrap();
        let result = Simulator::new(&deck.circuit).transient(&opts).unwrap();
        assert!((result.final_voltage("out").unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn parse_pulse_and_pwl_sources() {
        let deck = parse(
            "sources\n\
             V1 a 0 PULSE(0 3.6 5n 1n 1n 30n 60n)\n\
             V2 b 0 PWL(0 0 1n 1 2n 0)\n\
             V3 c 0 SIN(1 0.5 1meg)\n\
             R1 a 0 1k\n\
             R2 b 0 1k\n\
             R3 c 0 1k\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.device_count(), 6);
    }

    #[test]
    fn parse_mosfet_with_model() {
        let deck = parse(
            "mos bench\n\
             Vd d 0 DC 2.4\n\
             Vg g 0 DC 2.4\n\
             M1 d g 0 0 NACC W=1u L=0.3u\n\
             .model NACC NMOS (VTO=0.55 KP=120u LAMBDA=0.03)\n\
             .end\n",
        )
        .unwrap();
        // M + 2 gate caps + 2 sources.
        assert_eq!(deck.circuit.device_count(), 5);
        let op = Simulator::new(&deck.circuit).dc_operating_point().unwrap();
        let i = op.current("Vd").unwrap();
        assert!(i.abs() > 1e-5, "transistor should conduct: {i}");
    }

    #[test]
    fn model_card_order_independent() {
        // Model defined after the device referencing it.
        let deck = parse(
            "order\n\
             M1 d g 0 0 NX W=1u L=1u\n\
             Rd d 0 1k\n\
             Rg g 0 1k\n\
             .model NX NMOS (VTO=0.5)\n\
             .end\n",
        )
        .unwrap();
        assert!(deck.circuit.find_device("M1").is_ok());
    }

    #[test]
    fn parse_ic_and_uic() {
        let deck = parse(
            "ic bench\n\
             R1 cell 0 1meg\n\
             C1 cell 0 30f IC=2.4\n\
             .ic V(cell)=2.4\n\
             .tran 0.1n 10n UIC\n\
             .temp 87\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.initial_conditions, vec![("cell".to_string(), 2.4)]);
        assert_eq!(deck.temperature, Some(87.0));
        let tran = deck.tran.unwrap();
        assert!(tran.uic);
        let opts = TranOptions {
            t_stop: tran.stop,
            dt: tran.step,
            method: Default::default(),
            start: StartMode::UseIc(deck.initial_conditions.clone()),
            adaptive: None,
        };
        let result = Simulator::new(&deck.circuit)
            .with_temperature(deck.temperature.unwrap())
            .transient(&opts)
            .unwrap();
        assert!((result.voltage_at("cell", 0.0).unwrap() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn continuation_lines() {
        let deck = parse(
            "cont\n\
             V1 a 0 PULSE(0 1\n\
             + 5n 1n 1n\n\
             + 30n 60n)\n\
             R1 a 0 1k\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.device_count(), 2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let deck = parse(
            "title\n\
             * a comment\n\
             \n\
             R1 a 0 1k\n\
             V1 a 0 1\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.device_count(), 2);
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let err = parse("title\nR1 a 0 tenk\n.end\n").unwrap_err();
        match err {
            SpiceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = parse("title\nX1 a b c\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        let err = parse("title\nM1 d g s b NOPE W=1u L=1u\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        let err = parse("title\n.bogus 1 2\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        let err = parse("+ dangling\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { line: 1, .. }));
    }

    #[test]
    fn switch_and_diode_elements() {
        let deck = parse(
            "sw\n\
             V1 in 0 1\n\
             Vc ctl 0 1\n\
             S1 in out ctl 0 RON=10 ROFF=1g VT=0.5\n\
             D1 out 0 DX\n\
             .model DX D (IS=1e-14 N=1)\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.device_count(), 4);
        let op = Simulator::new(&deck.circuit).dc_operating_point().unwrap();
        let v = op.voltage("out").unwrap();
        assert!((0.4..0.9).contains(&v), "diode clamp at {v}");
    }

    #[test]
    fn tran_directive_variants() {
        assert!(parse("t\nR1 a 0 1k\n.tran 1n\n.end\n").is_err());
        let deck = parse("t\nR1 a 0 1k\n.tran 1n 10n uic\n.end\n").unwrap();
        assert!(deck.tran.unwrap().uic);
    }

    #[test]
    fn exp_source_and_dc_directive() {
        let deck = parse(
            "exp/dc
             V1 in 0 EXP(0 1 1n 2n 10n 2n)
             Vs sw 0 DC 0
             R1 in out 1k
             R2 out sw 1k
             .dc Vs 0 1 0.25
             .end
",
        )
        .unwrap();
        let dc = deck.dc.expect(".dc parsed");
        assert_eq!(dc.source, "Vs");
        assert_eq!(dc.values(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let sweep = Simulator::new(&deck.circuit)
            .dc_sweep(&dc.source, &dc.values())
            .unwrap();
        assert_eq!(sweep.len(), 5);
        // Descending sweeps work too.
        let down = DcDirective {
            source: "Vs".into(),
            start: 1.0,
            stop: 0.0,
            step: 0.5,
        };
        assert_eq!(down.values(), vec![1.0, 0.5, 0.0]);
        // Malformed directives error with a line number.
        assert!(parse(
            "t
R1 a 0 1k
.dc Vs 0 1
.end
"
        )
        .is_err());
        assert!(parse(
            "t
R1 a 0 1k
.dc Vs 0 1 -0.1
.end
"
        )
        .is_err());
        assert!(parse(
            "t
V1 a 0 EXP(0 1 1n)
R1 a 0 1k
.end
"
        )
        .is_err());
    }

    #[test]
    fn subcircuit_flattening() {
        // A divider packaged as a subcircuit, instantiated twice.
        let deck = parse(
            "subckt bench\n\
             .subckt div in out\n\
             R1 in out 1k\n\
             R2 out 0 1k\n\
             .ends\n\
             V1 top 0 DC 2\n\
             Xa top mid div\n\
             Xb mid bot div\n\
             .end\n",
        )
        .unwrap();
        // 1 source + 2 instances x 2 resistors.
        assert_eq!(deck.circuit.device_count(), 5);
        assert!(deck.circuit.find_device("xa.R1").is_ok());
        assert!(deck.circuit.find_device("xb.R2").is_ok());
        let op = Simulator::new(&deck.circuit).dc_operating_point().unwrap();
        // Internal port nodes splice onto the outer ones; voltages are
        // ordered down the ladder.
        let v_mid = op.voltage("mid").unwrap();
        let v_bot = op.voltage("bot").unwrap();
        assert!(v_mid > v_bot && v_bot > 0.0, "mid {v_mid}, bot {v_bot}");
        assert!(deck.circuit.find_node("xa.out").is_err(), "ports splice");
    }

    #[test]
    fn nested_subcircuit_instances() {
        // A subcircuit that instantiates another one.
        let deck = parse(
            "nested\n\
             .subckt leaf a b\n\
             R1 a b 1k\n\
             .ends\n\
             .subckt pair a c\n\
             Xl a m leaf\n\
             Xr m c leaf\n\
             .ends\n\
             V1 in 0 DC 1\n\
             Xp in 0 pair\n\
             .end\n",
        )
        .unwrap();
        // V1 + 2 leaf resistors.
        assert_eq!(deck.circuit.device_count(), 3);
        assert!(deck.circuit.find_device("xp.xl.R1").is_ok());
        // The internal midpoint is prefixed with the instance path.
        assert!(deck.circuit.find_node("xp.m").is_ok());
        let op = Simulator::new(&deck.circuit).dc_operating_point().unwrap();
        assert!((op.voltage("xp.m").unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn subcircuit_ground_is_global() {
        let deck = parse(
            "gnd\n\
             .subckt tie a\n\
             R1 a 0 1k\n\
             .ends\n\
             V1 n 0 DC 1\n\
             Xt n tie\n\
             .end\n",
        )
        .unwrap();
        let op = Simulator::new(&deck.circuit).dc_operating_point().unwrap();
        let i = op.current("V1").unwrap().abs();
        assert!((i - 1e-3).abs() < 1e-8, "ground must not be prefixed: {i}");
    }

    #[test]
    fn subcircuit_errors() {
        // Unknown subcircuit.
        let err = parse("t\nV1 a 0 1\nXa a nope\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        // Port-count mismatch.
        let err =
            parse("t\n.subckt s a b\nR1 a b 1k\n.ends\nV1 x 0 1\nXa x s\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        // Unclosed definition.
        let err = parse("t\n.subckt s a b\nR1 a b 1k\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        // .ends without .subckt.
        let err = parse("t\nR1 a 0 1k\n.ends\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        // Nested definitions are rejected.
        let err = parse("t\n.subckt a x\n.subckt b y\n.ends\n.ends\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
        // Recursive instantiation hits the depth cap.
        let err =
            parse("t\n.subckt loop a\nXl a loop\n.ends\nV1 n 0 1\nXa n loop\n.end\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { .. }));
    }
}
