//! Circuit devices and their MNA stamps.
//!
//! Every device knows how to *stamp* itself into the modified-nodal-analysis
//! residual and Jacobian for the current Newton iterate. Linear devices
//! contribute constant conductances; nonlinear devices (MOSFET, diode,
//! switch) contribute their linearization at the iterate.

use crate::circuit::NodeId;
use crate::diode::DiodeModel;
use crate::mos::{MosGeometry, MosModel};
use crate::waveform::Waveform;

/// A device instance in a circuit.
///
/// Constructed through the `Circuit::add_*` builder methods, which validate
/// parameters; the fields are read-only outside the crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor between `p` and `n`.
    Resistor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Resistance in ohms (positive).
        resistance: f64,
    },
    /// Linear capacitor between `p` and `n`.
    Capacitor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Capacitance in farads (non-negative).
        capacitance: f64,
        /// Optional initial voltage across the capacitor (`v(p) − v(n)`).
        initial_voltage: Option<f64>,
    },
    /// Independent voltage source; adds one branch-current unknown.
    VSource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// Independent current source, current flowing `p → n` externally
    /// (i.e. out of `p` into the circuit and back into `n`).
    ISource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        waveform: Waveform,
    },
    /// Level-1 MOSFET.
    Mosfet {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Bulk terminal.
        b: NodeId,
        /// Model card.
        model: MosModel,
        /// Instance geometry.
        geometry: MosGeometry,
    },
    /// Junction diode, anode `p`, cathode `n`.
    Diode {
        /// Anode.
        p: NodeId,
        /// Cathode.
        n: NodeId,
        /// Model card.
        model: DiodeModel,
    },
    /// Voltage-controlled switch: conductance between `p`/`n` interpolated
    /// smoothly between `1/roff` and `1/ron` as `v(cp) − v(cn)` crosses
    /// `threshold ± transition/2`.
    VSwitch {
        /// Positive switched terminal.
        p: NodeId,
        /// Negative switched terminal.
        n: NodeId,
        /// Positive control terminal.
        cp: NodeId,
        /// Negative control terminal.
        cn: NodeId,
        /// On-resistance in ohms.
        ron: f64,
        /// Off-resistance in ohms.
        roff: f64,
        /// Control-voltage threshold in volts.
        threshold: f64,
        /// Width of the smooth transition band in volts.
        transition: f64,
    },
}

impl Device {
    /// Terminals of the device, for connectivity checks.
    pub fn terminals(&self) -> Vec<NodeId> {
        match self {
            Device::Resistor { p, n, .. }
            | Device::Capacitor { p, n, .. }
            | Device::VSource { p, n, .. }
            | Device::ISource { p, n, .. }
            | Device::Diode { p, n, .. } => vec![*p, *n],
            Device::Mosfet { d, g, s, b, .. } => vec![*d, *g, *s, *b],
            Device::VSwitch { p, n, cp, cn, .. } => vec![*p, *n, *cp, *cn],
        }
    }

    /// `true` for devices that add a branch-current unknown to the MNA
    /// system (voltage sources).
    pub fn has_branch_current(&self) -> bool {
        matches!(self, Device::VSource { .. })
    }

    /// `true` for devices whose stamp depends on the iterate (needs Newton).
    pub fn is_nonlinear(&self) -> bool {
        matches!(
            self,
            Device::Mosfet { .. } | Device::Diode { .. } | Device::VSwitch { .. }
        )
    }
}

/// Smoothstep interpolation used by the voltage-controlled switch:
/// returns `(value, derivative)` of the 0→1 smooth transition of `x` over
/// `[0, 1]`.
pub(crate) fn smoothstep(x: f64) -> (f64, f64) {
    if x <= 0.0 {
        (0.0, 0.0)
    } else if x >= 1.0 {
        (1.0, 0.0)
    } else {
        (x * x * (3.0 - 2.0 * x), 6.0 * x * (1.0 - x))
    }
}

/// Switch conductance and its derivative with respect to the control
/// voltage.
pub(crate) fn switch_conductance(
    vc: f64,
    ron: f64,
    roff: f64,
    threshold: f64,
    transition: f64,
) -> (f64, f64) {
    let g_on = 1.0 / ron;
    let g_off = 1.0 / roff;
    let half = 0.5 * transition.max(1e-9);
    let x = (vc - (threshold - half)) / (2.0 * half);
    let (s, ds_dx) = smoothstep(x);
    let g = g_off + (g_on - g_off) * s;
    let dg_dvc = (g_on - g_off) * ds_dx / (2.0 * half);
    (g, dg_dvc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn terminals_and_flags() {
        let r = Device::Resistor {
            p: NodeId(1),
            n: NodeId(0),
            resistance: 1e3,
        };
        assert_eq!(r.terminals(), vec![NodeId(1), NodeId(0)]);
        assert!(!r.has_branch_current());
        assert!(!r.is_nonlinear());

        let v = Device::VSource {
            p: NodeId(1),
            n: NodeId(0),
            waveform: Waveform::Dc(1.0),
        };
        assert!(v.has_branch_current());

        let m = Device::Mosfet {
            d: NodeId(1),
            g: NodeId(2),
            s: NodeId(0),
            b: NodeId(0),
            model: MosModel::default(),
            geometry: MosGeometry::new(1e-6, 1e-6).unwrap(),
        };
        assert!(m.is_nonlinear());
        assert_eq!(m.terminals().len(), 4);
        let _ = Circuit::GROUND; // silence unused-import lint paranoia
    }

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(-1.0), (0.0, 0.0));
        assert_eq!(smoothstep(2.0), (1.0, 0.0));
        let (v, d) = smoothstep(0.5);
        assert!((v - 0.5).abs() < 1e-12);
        assert!((d - 1.5).abs() < 1e-12);
    }

    #[test]
    fn switch_conductance_limits() {
        let (g_off, _) = switch_conductance(-10.0, 1.0, 1e9, 0.5, 0.1);
        assert!((g_off - 1e-9).abs() < 1e-15);
        let (g_on, _) = switch_conductance(10.0, 1.0, 1e9, 0.5, 0.1);
        assert!((g_on - 1.0).abs() < 1e-12);
        // Midpoint: halfway between conductances.
        let (g_mid, dg) = switch_conductance(0.5, 1.0, 1e9, 0.5, 0.1);
        assert!((g_mid - 0.5).abs() < 1e-9);
        assert!(dg > 0.0);
    }
}
