//! Error type for the circuit simulator.

use dso_num::NumError;
use std::fmt;

/// Errors produced while building, parsing, or simulating circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A numerical failure (singular matrix, Newton divergence, …).
    Numerical(NumError),
    /// A device with the same name already exists in the circuit.
    DuplicateDevice(String),
    /// A referenced device does not exist.
    UnknownDevice(String),
    /// A referenced node name does not exist.
    UnknownNode(String),
    /// A device parameter is out of its physical domain.
    BadParameter {
        /// Device name.
        device: String,
        /// Explanation of the violation.
        reason: String,
    },
    /// The netlist failed structural validation (e.g. a node with a single
    /// connection, or no ground reference anywhere).
    BadTopology(String),
    /// A SPICE deck failed to parse.
    Parse {
        /// 1-based line number in the deck.
        line: usize,
        /// Explanation of the failure.
        reason: String,
    },
    /// The requested analysis is mis-configured (bad time step, missing
    /// signal, out-of-range sample time, …).
    BadAnalysis(String),
    /// The transient/DC solve failed to converge. Carries the time point at
    /// which convergence was lost (`None` for DC) and the number of solve
    /// attempts spent before giving up (retries included).
    Convergence {
        /// Simulation time at the failure, if transient.
        time: Option<f64>,
        /// Newton solve attempts made before surfacing the failure.
        attempts: usize,
        /// Underlying numerical error.
        source: NumError,
    },
    /// A waveform sample was requested outside the simulated time window.
    SampleOutOfRange {
        /// Requested sample time in seconds.
        t: f64,
        /// First simulated time point.
        t_start: f64,
        /// Last simulated time point.
        t_end: f64,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Numerical(e) => write!(f, "numerical error: {e}"),
            SpiceError::DuplicateDevice(name) => write!(f, "duplicate device name `{name}`"),
            SpiceError::UnknownDevice(name) => write!(f, "unknown device `{name}`"),
            SpiceError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            SpiceError::BadParameter { device, reason } => {
                write!(f, "bad parameter on `{device}`: {reason}")
            }
            SpiceError::BadTopology(msg) => write!(f, "bad topology: {msg}"),
            SpiceError::Parse { line, reason } => {
                write!(f, "netlist parse error at line {line}: {reason}")
            }
            SpiceError::BadAnalysis(msg) => write!(f, "bad analysis request: {msg}"),
            SpiceError::Convergence {
                time,
                attempts,
                source,
            } => match time {
                Some(t) => write!(
                    f,
                    "convergence failure at t = {t:.4e} s after {attempts} attempt(s): {source}"
                ),
                None => write!(
                    f,
                    "DC convergence failure after {attempts} attempt(s): {source}"
                ),
            },
            SpiceError::SampleOutOfRange { t, t_start, t_end } => write!(
                f,
                "sample time {t:.4e} s outside simulated window [{t_start:.4e}, {t_end:.4e}] s"
            ),
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Numerical(e) | SpiceError::Convergence { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for SpiceError {
    fn from(e: NumError) -> Self {
        SpiceError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SpiceError::DuplicateDevice("R1".into())
            .to_string()
            .contains("R1"));
        assert!(SpiceError::Parse {
            line: 12,
            reason: "bad token".into()
        }
        .to_string()
        .contains("line 12"));
        let conv = SpiceError::Convergence {
            time: Some(1e-9),
            attempts: 3,
            source: NumError::NoConvergence {
                iterations: 10,
                residual: 1.0,
            },
        };
        assert!(conv.to_string().contains("1.0000e-9"));
        assert!(conv.to_string().contains("3 attempt"));
        let oor = SpiceError::SampleOutOfRange {
            t: 2e-6,
            t_start: 0.0,
            t_end: 1e-6,
        };
        let msg = oor.to_string();
        assert!(
            msg.contains("2.0000e-6") && msg.contains("1.0000e-6"),
            "{msg}"
        );
    }

    #[test]
    fn from_num_error() {
        let e: SpiceError = NumError::InvalidArgument("x".into()).into();
        assert!(matches!(e, SpiceError::Numerical(_)));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = SpiceError::Numerical(NumError::InvalidArgument("x".into()));
        assert!(e.source().is_some());
        assert!(SpiceError::UnknownNode("n".into()).source().is_none());
    }
}
