//! Level-1 MOSFET model with temperature dependence and subthreshold
//! leakage.
//!
//! The stress-optimization methodology hinges on three temperature
//! mechanisms the paper names explicitly (Section 4.2):
//!
//! 1. carrier mobility falls with temperature → drain current falls
//!    (`KP(T) = KP·(T/Tnom)^BEX`, `BEX ≈ −1.5`),
//! 2. the threshold voltage falls with temperature
//!    (`VTO(T) = VTO − TCV·(T − Tnom)`),
//! 3. subthreshold leakage rises with temperature (exponential in
//!    `1/(n·kT/q)` with a falling threshold).
//!
//! All three are modelled here so the non-monotonic sense-amplifier
//! behaviour of Figure 4 can emerge from the electrics rather than being
//! hard-coded.

use crate::{thermal_voltage, SpiceError, CELSIUS_TO_KELVIN};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosPolarity {
    /// +1 for NMOS, −1 for PMOS: the sign applied to terminal voltages so
    /// both polarities share the N-channel equations.
    pub fn sign(&self) -> f64 {
        match self {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        }
    }
}

/// Level-1 model card parameters (shared between devices referencing the
/// same `.model`).
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage `VTO` in volts (positive for NMOS,
    /// negative values are accepted for depletion devices).
    pub vto: f64,
    /// Transconductance parameter `KP = µ·Cox` in A/V².
    pub kp: f64,
    /// Channel-length modulation `LAMBDA` in 1/V.
    pub lambda: f64,
    /// Body-effect coefficient `GAMMA` in √V.
    pub gamma: f64,
    /// Surface potential `PHI` in volts.
    pub phi: f64,
    /// Mobility temperature exponent `BEX` (typically −1.5).
    pub bex: f64,
    /// Threshold temperature coefficient `TCV` in V/K (VTO drops by
    /// `tcv·ΔT`; typically ≈ 2 mV/K).
    pub tcv: f64,
    /// Subthreshold slope factor `N` (≥ 1).
    pub n_sub: f64,
    /// Nominal temperature of the parameter extraction, °C.
    pub tnom: f64,
    /// Gate-oxide capacitance per area, F/m², used for the intrinsic
    /// gate capacitances.
    pub cox: f64,
}

impl Default for MosModel {
    /// A generic quarter-micron-era NMOS card suited to the 2.4 V DRAM
    /// process the paper's memory implies.
    fn default() -> Self {
        MosModel {
            polarity: MosPolarity::Nmos,
            vto: 0.55,
            kp: 120e-6,
            lambda: 0.03,
            gamma: 0.4,
            phi: 0.7,
            bex: -1.5,
            tcv: 2.0e-3,
            n_sub: 1.5,
            tnom: 27.0,
            cox: 5e-3,
        }
    }
}

impl MosModel {
    /// A default P-channel card complementary to [`MosModel::default`].
    pub fn default_pmos() -> Self {
        MosModel {
            polarity: MosPolarity::Pmos,
            vto: -0.55,
            kp: 50e-6,
            ..MosModel::default()
        }
    }

    /// Validates physical parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadParameter`] for non-positive `kp`, `phi`,
    /// `n_sub < 1`, negative `gamma`, or non-finite entries.
    pub fn validate(&self, device: &str) -> Result<(), SpiceError> {
        let bad = |reason: String| {
            Err(SpiceError::BadParameter {
                device: device.to_string(),
                reason,
            })
        };
        let fields = [
            ("vto", self.vto),
            ("kp", self.kp),
            ("lambda", self.lambda),
            ("gamma", self.gamma),
            ("phi", self.phi),
            ("bex", self.bex),
            ("tcv", self.tcv),
            ("n_sub", self.n_sub),
            ("tnom", self.tnom),
            ("cox", self.cox),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                return bad(format!("{name} must be finite"));
            }
        }
        if self.kp <= 0.0 {
            return bad("kp must be positive".into());
        }
        if self.phi <= 0.0 {
            return bad("phi must be positive".into());
        }
        if self.n_sub < 1.0 {
            return bad("subthreshold slope factor must be >= 1".into());
        }
        if self.gamma < 0.0 {
            return bad("gamma must be non-negative".into());
        }
        if self.lambda < 0.0 {
            return bad("lambda must be non-negative".into());
        }
        Ok(())
    }

    /// Transconductance parameter at `temp` °C (mobility scaling).
    pub fn kp_at(&self, temp: f64) -> f64 {
        let t = temp + CELSIUS_TO_KELVIN;
        let tn = self.tnom + CELSIUS_TO_KELVIN;
        self.kp * (t / tn).powf(self.bex)
    }

    /// Magnitude of the zero-bias threshold at `temp` °C.
    pub fn vth0_at(&self, temp: f64) -> f64 {
        self.vto.abs() - self.tcv * (temp - self.tnom)
    }

    /// Folds every model-card parameter into a content fingerprint.
    pub fn fingerprint_into(&self, fp: &mut dso_num::fingerprint::Fingerprint) {
        fp.write_u8(match self.polarity {
            MosPolarity::Nmos => 0,
            MosPolarity::Pmos => 1,
        });
        for v in [
            self.vto,
            self.kp,
            self.lambda,
            self.gamma,
            self.phi,
            self.bex,
            self.tcv,
            self.n_sub,
            self.tnom,
            self.cox,
        ] {
            fp.write_f64(v);
        }
    }
}

/// Geometry of one MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosGeometry {
    /// Channel width in meters.
    pub w: f64,
    /// Channel length in meters.
    pub l: f64,
}

impl MosGeometry {
    /// Creates a geometry, validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadParameter`] if `w` or `l` is not positive
    /// and finite.
    pub fn new(w: f64, l: f64) -> Result<Self, SpiceError> {
        if !(w > 0.0 && w.is_finite() && l > 0.0 && l.is_finite()) {
            return Err(SpiceError::BadParameter {
                device: "MOSFET".into(),
                reason: format!("W and L must be positive, got W={w}, L={l}"),
            });
        }
        Ok(MosGeometry { w, l })
    }

    /// Aspect ratio W/L.
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }

    /// Total intrinsic gate capacitance `Cox·W·L`.
    pub fn gate_capacitance(&self, model: &MosModel) -> f64 {
        model.cox * self.w * self.l
    }
}

/// Operating-point evaluation of the drain current and its derivatives.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosEval {
    /// Drain current, positive flowing drain → source (N-channel sign
    /// convention; already sign-corrected for PMOS).
    pub ids: f64,
    /// `∂ids/∂vgs`.
    pub gm: f64,
    /// `∂ids/∂vds`.
    pub gds: f64,
    /// `∂ids/∂vbs`.
    pub gmbs: f64,
}

/// Evaluates the level-1 drain current at terminal voltages `(vgs, vds,
/// vbs)` measured in actual circuit polarity, at `temp` °C.
///
/// Handles drain/source inversion (vds < 0) by symmetry, includes channel
/// length modulation, the body effect, and a continuous subthreshold region
/// that meets the square-law at `vgs = vth`.
pub fn evaluate(
    model: &MosModel,
    geometry: MosGeometry,
    vgs: f64,
    vds: f64,
    vbs: f64,
    temp: f64,
) -> MosEval {
    let sign = model.polarity.sign();
    // Map to N-channel frame.
    let (vgs_n, vds_n, vbs_n) = (sign * vgs, sign * vds, sign * vbs);
    let eval = if vds_n >= 0.0 {
        evaluate_nchannel(model, geometry, vgs_n, vds_n, vbs_n, temp)
    } else {
        // Source and drain swap: vgd becomes the controlling voltage.
        let swapped = evaluate_nchannel(
            model,
            geometry,
            vgs_n - vds_n, // vgd
            -vds_n,
            vbs_n - vds_n, // vbd
            temp,
        );
        // Current direction reverses; translate derivatives back to the
        // original terminal frame via the chain rule:
        //   ids = -S(vgd, -vds, vbd), vgd = vgs - vds, vbd = vbs - vds.
        MosEval {
            ids: -swapped.ids,
            gm: -swapped.gm,
            gds: swapped.gm + swapped.gds + swapped.gmbs,
            gmbs: -swapped.gmbs,
        }
    };
    // PMOS sign mapping: ids flips; conductances stay positive because both
    // numerator and denominator flip.
    MosEval {
        ids: sign * eval.ids,
        gm: eval.gm,
        gds: eval.gds,
        gmbs: eval.gmbs,
    }
}

fn evaluate_nchannel(
    model: &MosModel,
    geometry: MosGeometry,
    vgs: f64,
    vds: f64,
    vbs: f64,
    temp: f64,
) -> MosEval {
    debug_assert!(vds >= 0.0);
    let kp = model.kp_at(temp);
    let beta = kp * geometry.aspect();
    let vt = thermal_voltage(temp);

    // Threshold with body effect. vbs > 0 (forward body bias) is clamped to
    // keep the square root real; dvth/dvbs from the chain rule.
    let vbs_lim = vbs.min(0.5 * model.phi);
    let sqrt_arg = (model.phi - vbs_lim).max(1e-12);
    let sqrt_term = sqrt_arg.sqrt();
    let vth = model.vth0_at(temp) + model.gamma * (sqrt_term - model.phi.sqrt());
    let dvth_dvbs = if vbs < 0.5 * model.phi {
        -0.5 * model.gamma / sqrt_term
    } else {
        0.0
    };

    let vov = vgs - vth;
    let nvt = model.n_sub * vt;

    // EKV-style smooth effective overdrive:
    //   veff = 2·n·vt · ln(1 + exp(vov / (2·n·vt)))
    // tends to vov in strong inversion and to an exponential in weak
    // inversion, whose square gives the correct exp(vov / n·vt)
    // subthreshold slope. `sigma = dveff/dvov` is the logistic function.
    let u = vov / (2.0 * nvt);
    let (veff, sigma) = if u > 40.0 {
        (vov, 1.0)
    } else if u < -40.0 {
        // Deep cutoff: keep a tiny floor to avoid a hard zero.
        let e = u.exp();
        (2.0 * nvt * e, e / (1.0 + e))
    } else {
        let e = u.exp();
        (2.0 * nvt * e.ln_1p(), e / (1.0 + e))
    };

    let clm = 1.0 + model.lambda * vds;
    let (ids, gm, gds) = if vds < veff {
        // Triode: ids = beta·(veff·vds − vds²/2)·clm, continuous with the
        // saturation branch at vds = veff.
        let core = veff * vds - 0.5 * vds * vds;
        (
            beta * core * clm,
            beta * vds * clm * sigma,
            beta * ((veff - vds) * clm + core * model.lambda),
        )
    } else {
        // Saturation: ids = beta/2·veff²·clm.
        (
            0.5 * beta * veff * veff * clm,
            beta * veff * clm * sigma,
            0.5 * beta * veff * veff * model.lambda,
        )
    };
    let gm = gm.max(0.0);
    MosEval {
        ids,
        gm,
        gds: gds.max(1e-15),
        gmbs: gm * (-dvth_dvbs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> (MosModel, MosGeometry) {
        (
            MosModel::default(),
            MosGeometry::new(1e-6, 0.25e-6).unwrap(),
        )
    }

    #[test]
    fn cutoff_leakage_is_small_but_positive() {
        let (m, g) = nmos();
        let e = evaluate(&m, g, 0.0, 1.0, 0.0, 27.0);
        assert!(e.ids > 0.0);
        assert!(e.ids < 1e-6, "leakage should be well below µA: {}", e.ids);
    }

    #[test]
    fn saturation_square_law() {
        let (m, g) = nmos();
        let e1 = evaluate(&m, g, m.vto + 0.5, 2.0, 0.0, 27.0);
        let e2 = evaluate(&m, g, m.vto + 1.0, 2.0, 0.0, 27.0);
        // Doubling the overdrive roughly quadruples the current.
        let ratio = e2.ids / e1.ids;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn triode_region_resistive() {
        let (m, g) = nmos();
        let e = evaluate(&m, g, 2.4, 0.05, 0.0, 27.0);
        // Small vds: approximately ohmic, ids ≈ beta*vov*vds.
        let beta = m.kp_at(27.0) * g.aspect();
        let expect = beta * (2.4 - m.vto) * 0.05;
        assert!(
            (e.ids - expect).abs() / expect < 0.05,
            "{} vs {expect}",
            e.ids
        );
        assert!(e.gds > 0.0);
    }

    #[test]
    fn current_continuous_across_regions() {
        let (m, g) = nmos();
        // Scan vgs through the threshold; current must be monotone and
        // without jumps bigger than the local scale.
        let mut prev = 0.0;
        let mut vgs = 0.0;
        while vgs < 2.0 {
            let e = evaluate(&m, g, vgs, 1.5, 0.0, 27.0);
            assert!(e.ids >= prev - 1e-12, "non-monotone at vgs={vgs}");
            if prev > 0.0 {
                assert!(e.ids / prev < 1e3, "jump at vgs={vgs}");
            }
            prev = e.ids;
            vgs += 0.01;
        }
    }

    #[test]
    fn reverse_vds_symmetric() {
        let (m, g) = nmos();
        // With source and drain swapped and gate referenced correctly, the
        // current must be equal and opposite.
        let fwd = evaluate(&m, g, 2.0, 1.0, 0.0, 27.0);
        let rev = evaluate(&m, g, 1.0, -1.0, -1.0, 27.0);
        assert!(
            (fwd.ids + rev.ids).abs() / fwd.ids < 1e-9,
            "fwd {} rev {}",
            fwd.ids,
            rev.ids
        );
    }

    #[test]
    fn mobility_falls_with_temperature() {
        let (m, g) = nmos();
        let cold = evaluate(&m, g, 2.4, 2.0, 0.0, -33.0);
        let hot = evaluate(&m, g, 2.4, 2.0, 0.0, 87.0);
        // Strong inversion, large overdrive: mobility dominates.
        assert!(
            cold.ids > hot.ids,
            "cold {} should exceed hot {}",
            cold.ids,
            hot.ids
        );
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let (m, g) = nmos();
        let cold = evaluate(&m, g, 0.0, 1.0, 0.0, -33.0);
        let hot = evaluate(&m, g, 0.0, 1.0, 0.0, 87.0);
        assert!(
            hot.ids > 10.0 * cold.ids,
            "hot leakage {} should dwarf cold {}",
            hot.ids,
            cold.ids
        );
    }

    #[test]
    fn threshold_falls_with_temperature() {
        let m = MosModel::default();
        assert!(m.vth0_at(87.0) < m.vth0_at(27.0));
        assert!(m.vth0_at(-33.0) > m.vth0_at(27.0));
    }

    #[test]
    fn body_effect_raises_threshold() {
        let (m, g) = nmos();
        let no_bias = evaluate(&m, g, 1.0, 2.0, 0.0, 27.0);
        let reverse = evaluate(&m, g, 1.0, 2.0, -1.0, 27.0);
        assert!(reverse.ids < no_bias.ids);
        assert!(reverse.gmbs > 0.0);
    }

    #[test]
    fn pmos_mirror_of_nmos() {
        let nm = MosModel::default();
        let pm = MosModel {
            polarity: MosPolarity::Pmos,
            vto: -nm.vto,
            ..nm.clone()
        };
        let g = MosGeometry::new(1e-6, 0.25e-6).unwrap();
        let n = evaluate(&nm, g, 2.0, 1.5, 0.0, 27.0);
        let p = evaluate(&pm, g, -2.0, -1.5, 0.0, 27.0);
        assert!((n.ids + p.ids).abs() / n.ids < 1e-9);
        assert!(p.gm > 0.0 && p.gds > 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (m, g) = nmos();
        let h = 1e-7;
        for (vgs, vds, vbs) in [
            (1.2, 0.3, 0.0),   // triode
            (1.2, 2.0, 0.0),   // saturation
            (0.3, 1.0, 0.0),   // subthreshold
            (1.2, 2.0, -0.5),  // body bias
            (1.2, -0.3, -0.3), // reverse conduction (source/drain swap)
            (0.8, -1.0, -1.0), // reverse, near threshold
        ] {
            let e = evaluate(&m, g, vgs, vds, vbs, 27.0);
            let gm_fd = (evaluate(&m, g, vgs + h, vds, vbs, 27.0).ids
                - evaluate(&m, g, vgs - h, vds, vbs, 27.0).ids)
                / (2.0 * h);
            let gds_fd = (evaluate(&m, g, vgs, vds + h, vbs, 27.0).ids
                - evaluate(&m, g, vgs, vds - h, vbs, 27.0).ids)
                / (2.0 * h);
            let scale = e.gm.abs().max(1e-9);
            assert!(
                (e.gm - gm_fd).abs() / scale < 1e-3,
                "gm mismatch at ({vgs},{vds},{vbs}): {} vs {gm_fd}",
                e.gm
            );
            let scale = e.gds.abs().max(1e-9);
            assert!(
                (e.gds - gds_fd).abs() / scale < 1e-2,
                "gds mismatch at ({vgs},{vds},{vbs}): {} vs {gds_fd}",
                e.gds
            );
        }
    }

    #[test]
    fn model_validation() {
        let mut m = MosModel::default();
        assert!(m.validate("M1").is_ok());
        m.kp = -1.0;
        assert!(m.validate("M1").is_err());
        let m = MosModel {
            n_sub: 0.5,
            ..MosModel::default()
        };
        assert!(m.validate("M1").is_err());
        let m = MosModel {
            phi: f64::NAN,
            ..MosModel::default()
        };
        assert!(m.validate("M1").is_err());
    }

    #[test]
    fn geometry_validation() {
        assert!(MosGeometry::new(1e-6, 0.25e-6).is_ok());
        assert!(MosGeometry::new(0.0, 1e-6).is_err());
        assert!(MosGeometry::new(1e-6, -1.0).is_err());
        let g = MosGeometry::new(2e-6, 1e-6).unwrap();
        assert_eq!(g.aspect(), 2.0);
        assert!(g.gate_capacitance(&MosModel::default()) > 0.0);
    }
}
