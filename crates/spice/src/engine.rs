//! Modified nodal analysis: DC operating point and transient simulation.
//!
//! The unknown vector is `[v(node 1) … v(node N), i(V-source 1) …]` — every
//! non-ground node voltage followed by one branch current per voltage
//! source. Each Newton iteration stamps all devices into the residual
//! (Kirchhoff current sums plus source branch equations) and the Jacobian
//! (conductances).

use crate::circuit::{Circuit, NodeId};
use crate::device::{switch_conductance, Device};
use crate::mos;
use crate::recovery::{RecoveryPolicy, RecoveryStats};
use crate::waveform::Waveform;
use crate::SpiceError;
use dso_num::batch::BatchBackend;
use dso_num::chaos::{ChaosSystem, FaultPlan};
use dso_num::integrate::{Companion, Method};
use dso_num::matrix::DMatrix;
use dso_num::newton::{NewtonOptions, NewtonSolver, NewtonStats, NonlinearSystem};
use dso_num::NumError;

/// The starting state every transient path shares (see
/// [`Simulator::transient_init`]): the assembled MNA system, the initial
/// unknown vector, and the per-capacitor integration states.
type TransientInit<'a> = (MnaSystem<'a>, Vec<f64>, Vec<Option<CapState>>);

/// How a transient analysis obtains its initial state.
#[derive(Debug, Clone, PartialEq)]
pub enum StartMode {
    /// Solve the DC operating point at `t = 0` first (sources at their
    /// initial values, capacitors open).
    DcOperatingPoint,
    /// Skip the DC solve (`UIC` in SPICE): nodes start at 0 V except those
    /// listed here, and capacitors with explicit initial voltages seed
    /// their terminals.
    UseIc(Vec<(String, f64)>),
}

/// Local-truncation-error control for adaptive time stepping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Acceptable per-step error estimate (volts). The estimate is the
    /// infinity-norm difference between the trapezoidal and the
    /// backward-Euler solution of the same step, which is proportional to
    /// the local truncation error.
    pub lte_tol: f64,
    /// Smallest step the controller may take.
    pub dt_min: f64,
    /// Largest step the controller may take.
    pub dt_max: f64,
}

impl AdaptiveOptions {
    /// Validates the control parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadAnalysis`] unless
    /// `0 < dt_min <= dt_max` and `lte_tol > 0`.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if !(self.lte_tol > 0.0 && self.dt_min > 0.0 && self.dt_min <= self.dt_max) {
            return Err(SpiceError::BadAnalysis(format!(
                "adaptive options need lte_tol > 0 and 0 < dt_min <= dt_max, got {self:?}"
            )));
        }
        Ok(())
    }
}

/// Configuration of a transient analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// Stop time in seconds.
    pub t_stop: f64,
    /// Fixed output time step in seconds (the *initial* step when
    /// `adaptive` is set).
    pub dt: f64,
    /// Integration method (default trapezoidal; the first step and retry
    /// sub-steps always use backward Euler).
    pub method: Method,
    /// Initial-state policy.
    pub start: StartMode,
    /// When set, the step size is controlled by the local truncation
    /// error instead of being fixed: steps shrink at sharp transitions
    /// and stretch over smooth tails. Costs one extra (backward-Euler)
    /// solve per step for the error estimate.
    pub adaptive: Option<AdaptiveOptions>,
}

impl TranOptions {
    /// Creates options with the default method and a DC start.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadAnalysis`] unless `0 < dt <= t_stop`.
    pub fn new(t_stop: f64, dt: f64) -> Result<Self, SpiceError> {
        if !(dt > 0.0 && dt.is_finite() && t_stop >= dt && t_stop.is_finite()) {
            return Err(SpiceError::BadAnalysis(format!(
                "need 0 < dt <= t_stop, got dt={dt}, t_stop={t_stop}"
            )));
        }
        Ok(TranOptions {
            t_stop,
            dt,
            method: Method::default(),
            start: StartMode::DcOperatingPoint,
            adaptive: None,
        })
    }

    /// Sets the integration method.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Starts from the given node initial conditions instead of a DC solve.
    pub fn with_ic<I>(mut self, ics: I) -> Self
    where
        I: IntoIterator<Item = (String, f64)>,
    {
        self.start = StartMode::UseIc(ics.into_iter().collect());
        self
    }

    /// Enables local-truncation-error controlled time stepping.
    pub fn with_adaptive(mut self, adaptive: AdaptiveOptions) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

/// A DC solution: node voltages and source branch currents.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    node_names: Vec<String>,
    vsource_names: Vec<String>,
    x: Vec<f64>,
}

impl Solution {
    /// Voltage of a named node (ground returns 0).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the node does not exist.
    pub fn voltage(&self, node: &str) -> Result<f64, SpiceError> {
        if node == "0" || node == "gnd" {
            return Ok(0.0);
        }
        let idx = self
            .node_names
            .iter()
            .position(|n| n == node)
            .ok_or_else(|| SpiceError::UnknownNode(node.to_string()))?;
        // node_names includes ground at index 0; unknowns start at node 1.
        Ok(self.x[idx - 1])
    }

    /// Branch current of a named voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if the source does not exist.
    pub fn current(&self, vsource: &str) -> Result<f64, SpiceError> {
        let idx = self
            .vsource_names
            .iter()
            .position(|n| n == vsource)
            .ok_or_else(|| SpiceError::UnknownDevice(vsource.to_string()))?;
        Ok(self.x[self.node_names.len() - 1 + idx])
    }

    /// The raw unknown vector (node voltages then branch currents).
    pub fn as_slice(&self) -> &[f64] {
        &self.x
    }
}

/// Result of a transient analysis: the full unknown vector at every output
/// time point.
#[derive(Debug, Clone, PartialEq)]
pub struct TranResult {
    node_names: Vec<String>,
    vsource_names: Vec<String>,
    times: Vec<f64>,
    /// One unknown vector per time point.
    samples: Vec<Vec<f64>>,
    /// Recovery actions the run needed (empty for a clean run).
    recovery: RecoveryStats,
}

impl TranResult {
    /// The sampled time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Recovery actions taken during the run. A clean run reports
    /// [`RecoveryStats::is_clean`].
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Number of recorded time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    fn node_var(&self, node: &str) -> Result<Option<usize>, SpiceError> {
        if node == "0" || node == "gnd" {
            return Ok(None);
        }
        let idx = self
            .node_names
            .iter()
            .position(|n| n == node)
            .ok_or_else(|| SpiceError::UnknownNode(node.to_string()))?;
        Ok(Some(idx - 1))
    }

    /// The voltage waveform of a named node.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the node does not exist.
    pub fn voltage(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        match self.node_var(node)? {
            None => Ok(vec![0.0; self.times.len()]),
            Some(var) => Ok(self.samples.iter().map(|s| s[var]).collect()),
        }
    }

    /// The node voltage at time `t`, linearly interpolated between samples.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::UnknownNode`] if the node does not exist.
    /// * [`SpiceError::SampleOutOfRange`] if `t` lies outside the simulated
    ///   window (the error carries the valid `[t_start, t_end]` range).
    /// * [`SpiceError::BadAnalysis`] if the result holds no samples at all.
    pub fn voltage_at(&self, node: &str, t: f64) -> Result<f64, SpiceError> {
        let var = self.node_var(node)?;
        let (t0, t1) = match (self.times.first(), self.times.last()) {
            (Some(&t0), Some(&t1)) => (t0, t1),
            _ => {
                return Err(SpiceError::BadAnalysis(
                    "transient produced no samples".into(),
                ))
            }
        };
        if t < t0 || t > t1 {
            return Err(SpiceError::SampleOutOfRange {
                t,
                t_start: t0,
                t_end: t1,
            });
        }
        let var = match var {
            None => return Ok(0.0),
            Some(v) => v,
        };
        let idx = self.times.partition_point(|&tv| tv <= t);
        if idx == 0 {
            return Ok(self.samples[0][var]);
        }
        if idx >= self.times.len() {
            return Ok(self.samples[self.times.len() - 1][var]);
        }
        let (ta, tb) = (self.times[idx - 1], self.times[idx]);
        let (va, vb) = (self.samples[idx - 1][var], self.samples[idx][var]);
        Ok(va + (vb - va) * (t - ta) / (tb - ta))
    }

    /// The node voltage at the final time point.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the node does not exist.
    pub fn final_voltage(&self, node: &str) -> Result<f64, SpiceError> {
        match self.node_var(node)? {
            None => Ok(0.0),
            Some(var) => Ok(self
                .samples
                .last()
                .map(|s| s[var])
                .ok_or_else(|| SpiceError::BadAnalysis("no samples".into()))?),
        }
    }

    /// The full unknown vector recorded at time `t`, if this result holds a
    /// sample of dimension `n` at (bitwise) that exact time point.
    ///
    /// Used by [`crate::Simulator::transient_seeded`] to warm-start Newton
    /// iterations from a neighboring run on the same time base; a run with
    /// a different time grid simply never matches and the caller falls back
    /// to its cold guess.
    pub fn guess_at(&self, t: f64, n: usize) -> Option<&[f64]> {
        let idx = self
            .times
            .binary_search_by(|tv| tv.partial_cmp(&t).unwrap_or(std::cmp::Ordering::Less))
            .ok()?;
        let sample = &self.samples[idx];
        (sample.len() == n).then_some(sample.as_slice())
    }

    /// The branch-current waveform of a named voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if the source does not exist.
    pub fn current(&self, vsource: &str) -> Result<Vec<f64>, SpiceError> {
        let idx = self
            .vsource_names
            .iter()
            .position(|n| n == vsource)
            .ok_or_else(|| SpiceError::UnknownDevice(vsource.to_string()))?;
        let var = self.node_names.len() - 1 + idx;
        Ok(self.samples.iter().map(|s| s[var]).collect())
    }
}

/// Per-capacitor transient state.
#[derive(Debug, Clone, Copy)]
struct CapState {
    /// Voltage across the capacitor at the last accepted time point.
    v_prev: f64,
    /// Capacitor current at the last accepted time point.
    i_prev: f64,
}

/// The simulator: binds a circuit to an ambient temperature and solver
/// policy.
#[derive(Debug, Clone)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    temp: f64,
    gmin: f64,
    newton: NewtonOptions,
    recovery: RecoveryPolicy,
    fault_plan: Option<FaultPlan>,
    tuning: SolverTuning,
}

/// The Newton iteration policy every [`Simulator`] is created with. The
/// only per-simulator override is [`SolverTuning::lu_reuse`], folded in by
/// [`Simulator::with_tuning`]. A [`BatchBackend`] intended to drive
/// [`transient_lockstep`] lanes bit-identically should be built from the
/// lane's [`Simulator::newton_options`], e.g.
/// `backend_with_lanes(lanes, sim.newton_options().clone())`.
pub fn default_newton_options() -> NewtonOptions {
    NewtonOptions {
        max_iterations: 200,
        residual_tol: 1e-9,
        step_tol: 1e-12,
        max_step: 1.0,
        damping: 0.5,
        lu_reuse: true,
    }
}

/// Hot-path solver tuning: modified-Newton LU reuse and SPICE3-style
/// device-evaluation bypass.
///
/// Both knobs trade redundant work for bookkeeping without changing what
/// convergence *means*: LU reuse still refactors the moment the residual
/// reduction stalls or damping engages, and a bypassed device's residual
/// is always re-checked exactly at acceptance (see
/// [`dso_num::newton::NonlinearSystem::residual_exact`]). The
/// [`SolverTuning::legacy`] point — reuse off, tolerance zero — reproduces
/// the untuned solver bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverTuning {
    /// Keep the current LU factorization across Newton iterations and
    /// back-substitute only, refactoring when convergence stalls (maps to
    /// [`NewtonOptions::lu_reuse`]).
    pub lu_reuse: bool,
    /// Device bypass tolerance in volts: a MOSFET or diode whose terminal
    /// voltages all moved less than this since its last evaluation reuses
    /// the cached (linearized) stamp instead of re-evaluating the model.
    /// `0.0` disables the bypass *and* the incremental-assembly fast path,
    /// restoring the legacy stamp-everything loop exactly. Forced to `0.0`
    /// whenever a fault plan is armed, so injected faults are never masked
    /// by a stale cache.
    pub bypass_tol: f64,
}

impl Default for SolverTuning {
    fn default() -> Self {
        SolverTuning {
            lu_reuse: true,
            // 100 µV: an order of magnitude tighter than the classic
            // SPICE3 bypass window (reltol·|v| + vntol ≈ 1 mV at DRAM
            // rail voltages), and every acceptance is still re-checked
            // against the exact residual.
            bypass_tol: 1e-4,
        }
    }
}

impl SolverTuning {
    /// The pre-tuning solver: every iteration refactors, every device is
    /// evaluated at every stamp. Bit-identical to the solver before these
    /// knobs existed.
    pub fn legacy() -> Self {
        SolverTuning {
            lu_reuse: false,
            bypass_tol: 0.0,
        }
    }

    /// The Newton options a [`Simulator`] built with this tuning solves
    /// with (the defaults plus this tuning's `lu_reuse`).
    pub fn newton_options(&self) -> NewtonOptions {
        NewtonOptions {
            lu_reuse: self.lu_reuse,
            ..default_newton_options()
        }
    }

    /// Folds the tuning into a content fingerprint. The knobs change the
    /// floating-point path a solve takes — different iteration counts,
    /// different summation order — so cached results are only valid for
    /// the exact tuning that produced them.
    pub fn fingerprint_into(&self, fp: &mut dso_num::fingerprint::Fingerprint) {
        fp.write_bool(self.lu_reuse);
        fp.write_f64(self.bypass_tol);
    }
}

impl<'c> Simulator<'c> {
    /// Creates a simulator at the nominal temperature (+27 °C).
    pub fn new(circuit: &'c Circuit) -> Self {
        Simulator {
            circuit,
            temp: 27.0,
            gmin: 1e-12,
            newton: default_newton_options(),
            recovery: RecoveryPolicy::default(),
            fault_plan: None,
            tuning: SolverTuning::default(),
        }
    }

    /// Sets the ambient temperature in °C (a test *stress*).
    pub fn with_temperature(mut self, temp_celsius: f64) -> Self {
        self.temp = temp_celsius;
        self
    }

    /// Sets the minimum node-to-ground conductance (default 1 pS).
    pub fn with_gmin(mut self, gmin: f64) -> Self {
        self.gmin = gmin;
        self
    }

    /// Sets the convergence-recovery policy (default: all rungs enabled).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Arms a deterministic fault-injection plan: every Newton solve this
    /// simulator performs consumes one ordinal from the plan and is
    /// corrupted when the plan schedules a fault there. Test-only in
    /// spirit, but available unconditionally so campaign layers can thread
    /// plans through without feature gymnastics.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the hot-path solver tuning (default: LU reuse on, 100 µV device
    /// bypass). `SolverTuning::legacy()` restores the untuned solver
    /// bit-for-bit.
    pub fn with_tuning(mut self, tuning: SolverTuning) -> Self {
        self.tuning = tuning;
        self.newton.lu_reuse = tuning.lu_reuse;
        self
    }

    /// Ambient temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// The recovery policy in force.
    pub fn recovery_policy(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// The hot-path solver tuning in force.
    pub fn tuning(&self) -> &SolverTuning {
        &self.tuning
    }

    /// Builds an MNA system for `circuit` with this simulator's
    /// temperature, gmin, and bypass tolerance. Fault-armed simulators get
    /// a zero bypass tolerance: an injected fault must never be masked by
    /// a device cache, and the plan's solve ordinals must count exactly
    /// the evaluations the untuned path performs.
    fn make_system<'x>(&self, circuit: &'x Circuit) -> MnaSystem<'x> {
        let mut system = MnaSystem::new(circuit, self.temp, self.gmin);
        system.bypass_tol = if self.fault_plan.is_some() {
            0.0
        } else {
            self.tuning.bypass_tol
        };
        system
    }

    /// The Newton iteration policy this simulator solves with. A
    /// [`BatchBackend`] driving [`transient_lockstep`] must be built with
    /// exactly these options for its lanes to stay bit-identical to the
    /// scalar path.
    pub fn newton_options(&self) -> &NewtonOptions {
        &self.newton
    }

    /// Runs one Newton solve, routing it through the armed fault plan (if
    /// any) and counting the attempt. `reuse` lets the solve start from
    /// the solver's previous LU factorization instead of refactoring at
    /// iteration zero (see [`NewtonSolver::solve_reusing`]) — only pass it
    /// when the previous solve factored the *same* system a short step
    /// away in state.
    fn run_solve(
        &self,
        solver: &mut NewtonSolver,
        system: &mut MnaSystem<'_>,
        x: &mut [f64],
        stats: &mut RecoveryStats,
        reuse: bool,
    ) -> Result<NewtonStats, NumError> {
        stats.solve_attempts += 1;
        dso_obs::counter!("spice.solve_attempts").incr();
        let out = match &self.fault_plan {
            Some(plan) => {
                let mut chaos = ChaosSystem::arm(system, plan);
                if reuse {
                    solver.solve_reusing(&mut chaos, x)
                } else {
                    solver.solve(&mut chaos, x)
                }
            }
            None if reuse => solver.solve_reusing(system, x),
            None => solver.solve(system, x),
        };
        if let Ok(s) = &out {
            stats.newton_iters += s.iterations;
            stats.lu_refactors += s.lu_refactors;
            stats.lu_reuses += s.lu_reuses;
        }
        out
    }

    fn vsource_names(&self) -> Vec<String> {
        self.circuit
            .devices()
            .iter()
            .zip(self.circuit.device_names())
            .filter(|(d, _)| d.has_branch_current())
            .map(|(_, n)| n.clone())
            .collect()
    }

    /// Solves the DC operating point with sources at their `t = 0` values.
    ///
    /// Uses gmin stepping as a homotopy when the direct solve fails.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadTopology`] if the circuit fails validation.
    /// * [`SpiceError::Convergence`] if no operating point is found.
    pub fn dc_operating_point(&self) -> Result<Solution, SpiceError> {
        let _span = dso_obs::span("spice.dc_op");
        self.circuit.validate()?;
        let mut system = self.make_system(self.circuit);
        system.time = 0.0;
        let mut solver = NewtonSolver::new(self.newton.clone());
        let mut x = vec![0.0; system.unknowns()];
        let mut stats = RecoveryStats::default();
        // Direct attempt, then gmin homotopy.
        match self.run_solve(&mut solver, &mut system, &mut x, &mut stats, false) {
            Ok(_) => {}
            Err(first_err) => {
                if !self.recovery.gmin_stepping {
                    return Err(SpiceError::Convergence {
                        time: None,
                        attempts: stats.solve_attempts,
                        source: first_err,
                    });
                }
                x.iter_mut().for_each(|v| *v = 0.0);
                let gmin_ladder = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, self.gmin];
                for &g in &gmin_ladder {
                    dso_obs::counter!("spice.dc_gmin_steps").incr();
                    system.set_gmin(g.max(self.gmin));
                    self.run_solve(&mut solver, &mut system, &mut x, &mut stats, false)
                        .map_err(|e| SpiceError::Convergence {
                            time: None,
                            attempts: stats.solve_attempts,
                            source: e,
                        })?;
                }
            }
        }
        Ok(Solution {
            node_names: self.circuit.node_names().to_vec(),
            vsource_names: self.vsource_names(),
            x,
        })
    }

    /// Sweeps the DC value of a voltage source and solves the operating
    /// point at each step, warm-starting each solve from the previous one
    /// (the classic `.dc` analysis, used for device I–V characterization
    /// and transfer curves).
    ///
    /// The source's waveform is temporarily replaced; the circuit is not
    /// modified (the sweep works on an internal copy).
    ///
    /// # Errors
    ///
    /// * [`SpiceError::UnknownDevice`]/[`SpiceError::BadParameter`] if
    ///   `source` is not a voltage source.
    /// * [`SpiceError::BadAnalysis`] for an empty sweep.
    /// * [`SpiceError::Convergence`] if any point fails to solve.
    pub fn dc_sweep(&self, source: &str, values: &[f64]) -> Result<Vec<Solution>, SpiceError> {
        if values.is_empty() {
            return Err(SpiceError::BadAnalysis("dc sweep needs values".into()));
        }
        self.circuit.validate()?;
        let mut ckt = self.circuit.clone();
        // Verify the device is a vsource up front for a clean error.
        ckt.set_waveform(source, Waveform::Dc(values[0]))?;

        let mut out = Vec::with_capacity(values.len());
        let mut guess: Option<Vec<f64>> = None;
        let node_names = ckt.node_names().to_vec();
        let vsource_names = self.vsource_names();
        // One solver for the whole sweep: its factorization and scratch
        // buffers are sized once and reused at every point.
        let mut solver = NewtonSolver::new(self.newton.clone());
        for &v in values {
            ckt.set_waveform(source, Waveform::Dc(v))?;
            let mut system = self.make_system(&ckt);
            system.time = 0.0;
            let mut stats = RecoveryStats::default();
            let mut x = guess
                .clone()
                .unwrap_or_else(|| vec![0.0; system.unknowns()]);
            self.run_solve(&mut solver, &mut system, &mut x, &mut stats, false)
                .map_err(|e| SpiceError::Convergence {
                    time: None,
                    attempts: stats.solve_attempts,
                    source: e,
                })?;
            guess = Some(x.clone());
            out.push(Solution {
                node_names: node_names.clone(),
                vsource_names: vsource_names.clone(),
                x,
            });
        }
        Ok(out)
    }

    /// Runs a fixed-step transient analysis.
    ///
    /// The first step (and any convergence-retry sub-step) uses backward
    /// Euler; subsequent steps use the configured method. When a time step
    /// fails to converge, the configured [`RecoveryPolicy`] ladder is
    /// climbed (method fallback → timestep subdivision → gmin stepping)
    /// before the error is surfaced; actions taken are reported in the
    /// result's [`TranResult::recovery`] stats.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadTopology`] if the circuit fails validation.
    /// * [`SpiceError::UnknownNode`] if an initial condition names a
    ///   missing node.
    /// * [`SpiceError::Convergence`] if a time step cannot be solved even
    ///   after recovery.
    pub fn transient(&self, options: &TranOptions) -> Result<TranResult, SpiceError> {
        self.transient_seeded(options, None)
    }

    /// Runs a transient analysis like [`Simulator::transient`], but seeds
    /// each time step's Newton iteration from `seed` — the result of a
    /// neighboring run on the same time grid (e.g. the adjacent defect
    /// resistance of a sweep) — when a sample at the step's exact time
    /// point is available.
    ///
    /// Seeding only changes the *initial guess* of the first solve attempt
    /// of each step; recovery-ladder retries always restart from the
    /// previous committed state, so [`RecoveryPolicy`] semantics are
    /// unchanged and a misleading seed degrades to the cold-start path. A
    /// seed with a different time grid or unknown count is ignored
    /// entirely.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::transient`].
    pub fn transient_seeded(
        &self,
        options: &TranOptions,
        seed: Option<&TranResult>,
    ) -> Result<TranResult, SpiceError> {
        let _span = dso_obs::span("spice.transient");
        dso_obs::counter!("spice.transients").incr();
        let (mut system, mut x, mut cap_states) = self.transient_init(options)?;
        let n = system.unknowns();
        let n_node_vars = self.circuit.node_count() - 1;
        let mut solver = NewtonSolver::new(self.newton.clone());

        let steps = (options.t_stop / options.dt).round() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut samples = Vec::with_capacity(steps + 1);
        times.push(0.0);
        samples.push(x.clone());
        let mut stats = RecoveryStats::default();
        // One trial vector reused by every step attempt of the run.
        let mut trial = vec![0.0; n];
        let vsource_names = self.vsource_names();

        if let Some(adaptive) = options.adaptive {
            adaptive.validate()?;
            // LTE-controlled stepping: each step is solved with both the
            // trapezoidal and the backward-Euler method from the same
            // state; their difference is proportional to the local
            // truncation error and drives the step size.
            let mut t = 0.0_f64;
            let mut dt = options.dt.clamp(adaptive.dt_min, adaptive.dt_max);
            let mut first_step = true;
            while t < options.t_stop - 1e-18 {
                let dt_eff = dt.min(options.t_stop - t);
                let t_next = t + dt_eff;
                let trial_method = if first_step {
                    Method::BackwardEuler
                } else {
                    Method::Trapezoidal
                };

                let mut x_tr = x.clone();
                let mut cs_tr = cap_states.clone();
                self.advance(
                    &mut system,
                    &mut solver,
                    &mut x_tr,
                    &mut cs_tr,
                    &mut trial,
                    None,
                    false,
                    t,
                    t_next,
                    trial_method,
                    0,
                    &mut stats,
                )?;
                // The backward-Euler error-estimate solve lands within the
                // truncation error of the trial solution it just computed,
                // so warm-start it from `x_tr` and let it reuse the trial
                // solve's LU factorization — on smooth stretches the
                // estimate converges in back-substitutions alone, halving
                // the cost of adaptive stepping.
                let mut x_be = x.clone();
                let mut cs_be = cap_states.clone();
                self.advance(
                    &mut system,
                    &mut solver,
                    &mut x_be,
                    &mut cs_be,
                    &mut trial,
                    Some(&x_tr),
                    true,
                    t,
                    t_next,
                    Method::BackwardEuler,
                    0,
                    &mut stats,
                )?;
                let err = x_tr
                    .iter()
                    .zip(&x_be)
                    .take(n_node_vars)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0_f64, f64::max);

                if err > adaptive.lte_tol && dt_eff > adaptive.dt_min * 1.000_001 {
                    dt = (0.5 * dt_eff).max(adaptive.dt_min);
                    continue;
                }
                x.copy_from_slice(&x_tr);
                cap_states = cs_tr;
                t = t_next;
                times.push(t);
                samples.push(x.clone());
                first_step = false;
                if err < 0.25 * adaptive.lte_tol {
                    dt = (2.0 * dt_eff).min(adaptive.dt_max);
                } else {
                    dt = dt_eff;
                }
            }
            debug_assert_eq!(n_node_vars + vsource_names.len(), n);
            system.fold_bypass_counters(&mut stats);
            return Ok(TranResult {
                node_names: self.circuit.node_names().to_vec(),
                vsource_names,
                times,
                samples,
                recovery: stats,
            });
        }

        let mut first_step = true;
        // Predictor buffer for warm-started steps (reused across the run).
        let mut warm_buf = vec![0.0; n];
        for step in 1..=steps {
            let t_target = if step == steps {
                options.t_stop
            } else {
                step as f64 * options.dt
            };
            let t_prev = times[times.len() - 1];
            // Warm-start predictor: add the seed trajectory's step
            // increment to our own committed state. On smooth stretches
            // the increment is ~0 and the guess degenerates to plain
            // continuation; across switching edges it injects the edge
            // jump the seed has already resolved. Both samples must sit on
            // the same (bitwise) time grid or the seed is ignored.
            let mut have_warm = false;
            if let Some(s) = seed {
                if let (Some(cur), Some(prev)) = (s.guess_at(t_target, n), s.guess_at(t_prev, n)) {
                    for (b, ((xi, c), p)) in warm_buf.iter_mut().zip(x.iter().zip(cur).zip(prev)) {
                        *b = xi + (c - p);
                    }
                    have_warm = true;
                }
            }
            let warm = if have_warm {
                Some(warm_buf.as_slice())
            } else {
                None
            };
            // The first attempt of every step starts from the solver's
            // retained LU (modified-Newton across time steps: the
            // Jacobian drifts slowly along a fixed-step transient). Step
            // one has nothing retained and degenerates to a full solve;
            // recovery rungs always refactor. Like device bypass, the
            // reuse is off while a fault plan is armed: injected faults
            // hook residual/Jacobian evaluations, and a solve that never
            // stamps would silently consume its fault ordinal.
            self.advance(
                &mut system,
                &mut solver,
                &mut x,
                &mut cap_states,
                &mut trial,
                warm,
                self.fault_plan.is_none(),
                t_prev,
                t_target,
                if first_step {
                    Method::BackwardEuler
                } else {
                    options.method
                },
                0,
                &mut stats,
            )?;
            first_step = false;
            times.push(t_target);
            samples.push(x.clone());
        }
        debug_assert_eq!(n_node_vars + vsource_names.len(), n);
        system.fold_bypass_counters(&mut stats);
        Ok(TranResult {
            node_names: self.circuit.node_names().to_vec(),
            vsource_names,
            times,
            samples,
            recovery: stats,
        })
    }

    /// Builds the pieces every transient starts from: the MNA system, the
    /// initial unknown vector (DC solve or `UIC` initial conditions), and
    /// the per-capacitor states. Shared by [`Simulator::transient_seeded`]
    /// and [`transient_lockstep`] so both paths start from bit-identical
    /// state.
    fn transient_init(&self, options: &TranOptions) -> Result<TransientInit<'_>, SpiceError> {
        self.circuit.validate()?;
        let system = self.make_system(self.circuit);
        let n = system.unknowns();

        // --- Initial state ---------------------------------------------
        let mut x = vec![0.0; n];
        match &options.start {
            StartMode::DcOperatingPoint => {
                let op = self.dc_operating_point()?;
                x.copy_from_slice(op.as_slice());
            }
            StartMode::UseIc(ics) => {
                // Capacitor initial voltages seed their positive terminal
                // relative to the negative one (two passes so chains of
                // caps referenced to ground settle).
                for _ in 0..2 {
                    for device in self.circuit.devices() {
                        if let Device::Capacitor {
                            p,
                            n: neg,
                            initial_voltage: Some(v0),
                            ..
                        } = device
                        {
                            if !p.is_ground() {
                                let vn = if neg.is_ground() { 0.0 } else { x[neg.0 - 1] };
                                x[p.0 - 1] = vn + v0;
                            }
                        }
                    }
                }
                for (name, v) in ics {
                    let node = self.circuit.find_node(name)?;
                    if !node.is_ground() {
                        x[node.0 - 1] = *v;
                    }
                }
            }
        }

        // Capacitor states from the initial node voltages.
        let cap_states: Vec<Option<CapState>> = self
            .circuit
            .devices()
            .iter()
            .map(|d| match d {
                Device::Capacitor { p, n, .. } => {
                    let vp = if p.is_ground() { 0.0 } else { x[p.0 - 1] };
                    let vn = if n.is_ground() { 0.0 } else { x[n.0 - 1] };
                    Some(CapState {
                        v_prev: vp - vn,
                        i_prev: 0.0,
                    })
                }
                _ => None,
            })
            .collect();
        Ok((system, x, cap_states))
    }

    /// Installs the capacitor companion models for one step into `system`
    /// and stamps the step's target time. Shared by the scalar
    /// [`Simulator::try_step`] and the lockstep path.
    fn install_companions(
        &self,
        system: &mut MnaSystem<'_>,
        cap_states: &[Option<CapState>],
        t_prev: f64,
        t_target: f64,
        method: Method,
    ) -> Result<(), SpiceError> {
        let dt = t_target - t_prev;
        system.time = t_target;
        system.base_dirty = true;
        system.companions.clear();
        system.companions.resize(self.circuit.device_count(), None);
        for (idx, device) in self.circuit.devices().iter().enumerate() {
            if let Device::Capacitor { capacitance, .. } = device {
                let state = cap_states[idx].ok_or_else(|| {
                    SpiceError::BadAnalysis("capacitor state not initialized".into())
                })?;
                if *capacitance > 0.0 {
                    // A companion-model failure is a configuration error
                    // (non-positive dt), not a convergence failure — it is
                    // surfaced immediately and never retried.
                    let comp = method
                        .companion(*capacitance, dt, state.v_prev, state.i_prev)
                        .map_err(SpiceError::Numerical)?;
                    system.companions[idx] = Some(comp);
                }
            }
        }
        Ok(())
    }

    /// Prepares the companion models for one step and solves it from
    /// `guess`, leaving the trial solution in `trial` (reused across steps
    /// so the steady-state path stays allocation-free). Does **not**
    /// commit: `x` and capacitor states are untouched, so a failed attempt
    /// can be retried with a different method, step, or gmin.
    ///
    /// `alt`, when present, is a competing initial guess (a warm-start
    /// seed): after the step's companions are installed, both candidates'
    /// residual norms are probed and the iteration starts from the better
    /// one. Continuation from the previous state usually wins on smooth
    /// stretches; the neighbor's sample wins across switching edges, where
    /// the continuation guess is far from the post-edge solution.
    #[allow(clippy::too_many_arguments)]
    fn try_step(
        &self,
        system: &mut MnaSystem<'_>,
        solver: &mut NewtonSolver,
        guess: &[f64],
        alt: Option<&[f64]>,
        cap_states: &[Option<CapState>],
        trial: &mut Vec<f64>,
        t_prev: f64,
        t_target: f64,
        method: Method,
        stats: &mut RecoveryStats,
        reuse: bool,
    ) -> Result<(), SpiceError> {
        self.install_companions(system, cap_states, t_prev, t_target, method)?;
        let mut start = guess;
        if let Some(alt) = alt {
            // A failed probe (non-finite residual) disqualifies only that
            // candidate; the solve itself decides whether the step fails.
            let g = solver.residual_norm(system, guess).unwrap_or(f64::INFINITY);
            let a = solver.residual_norm(system, alt).unwrap_or(f64::INFINITY);
            if a.is_finite() && a < g {
                start = alt;
            }
        }
        trial.clear();
        trial.extend_from_slice(start);
        self.run_solve(solver, system, trial, stats, reuse)
            .map_err(|e| SpiceError::Convergence {
                time: Some(t_target),
                attempts: stats.solve_attempts,
                source: e,
            })?;
        Ok(())
    }

    /// Commits an accepted trial solution: updates capacitor states from
    /// the companions currently installed in `system` and copies the
    /// solution into `x`.
    fn commit_step(
        &self,
        system: &MnaSystem<'_>,
        x: &mut [f64],
        cap_states: &mut [Option<CapState>],
        trial: &[f64],
        method: Method,
    ) {
        for (idx, device) in self.circuit.devices().iter().enumerate() {
            if let Device::Capacitor { p, n, .. } = device {
                let vp = if p.is_ground() { 0.0 } else { trial[p.0 - 1] };
                let vn = if n.is_ground() { 0.0 } else { trial[n.0 - 1] };
                let v_new = vp - vn;
                if let Some(state) = cap_states[idx].as_mut() {
                    if let Some(comp) = system.companions[idx] {
                        state.i_prev = method.current(comp, v_new);
                    } else {
                        state.i_prev = 0.0;
                    }
                    state.v_prev = v_new;
                }
            }
        }
        x.copy_from_slice(trial);
    }

    /// gmin-stepping homotopy for one stubborn time step: solves the step
    /// repeatedly while relaxing the minimum conductance from 10 mS back
    /// down to the configured gmin, warm-starting each rung from the
    /// previous solution. All rungs use backward Euler. Restores
    /// `system.gmin` on every exit path.
    #[allow(clippy::too_many_arguments)]
    fn gmin_step(
        &self,
        system: &mut MnaSystem<'_>,
        solver: &mut NewtonSolver,
        x: &[f64],
        cap_states: &[Option<CapState>],
        trial: &mut Vec<f64>,
        t_prev: f64,
        t_target: f64,
        stats: &mut RecoveryStats,
    ) -> Result<(), SpiceError> {
        stats.gmin_retries += 1;
        dso_obs::counter!("recovery.gmin_retries").incr();
        let base = self.gmin;
        let ladder = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, base];
        // This is the rarely-taken deepest recovery rung; one scratch guess
        // per homotopy is fine.
        let mut guess = x.to_vec();
        for &g in &ladder {
            system.set_gmin(g.max(base));
            match self.try_step(
                system,
                solver,
                &guess,
                None,
                cap_states,
                trial,
                t_prev,
                t_target,
                Method::BackwardEuler,
                stats,
                false,
            ) {
                Ok(()) => guess.copy_from_slice(trial),
                Err(e) => {
                    system.set_gmin(base);
                    return Err(e);
                }
            }
        }
        system.set_gmin(base);
        Ok(())
    }

    /// Advances the state from `t_prev` to `t_target`, climbing the
    /// recovery ladder on convergence failure:
    ///
    /// 1. the requested integration method;
    /// 2. backward Euler on the same step (`method_fallback`);
    /// 3. recursive midpoint subdivision, backward Euler, down to
    ///    `max_subdivisions` levels;
    /// 4. at the deepest level, gmin stepping (`gmin_stepping`).
    ///
    /// `warm`, when present, competes with the previous committed state
    /// for the *initial guess* of the first solve attempt only (the lower
    /// residual norm wins — a warm-start seed from a neighboring run);
    /// every retry rung restarts from `x`, so a bad seed degrades to
    /// exactly the cold-start recovery behaviour. `reuse_first` likewise
    /// applies only to the first attempt: it lets that solve start from
    /// the solver's previous LU factorization; every recovery rung
    /// refactors from scratch.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        system: &mut MnaSystem<'_>,
        solver: &mut NewtonSolver,
        x: &mut [f64],
        cap_states: &mut [Option<CapState>],
        trial: &mut Vec<f64>,
        warm: Option<&[f64]>,
        reuse_first: bool,
        t_prev: f64,
        t_target: f64,
        method: Method,
        depth: usize,
        stats: &mut RecoveryStats,
    ) -> Result<(), SpiceError> {
        let first_err = match self.try_step(
            system,
            solver,
            x,
            warm,
            cap_states,
            trial,
            t_prev,
            t_target,
            method,
            stats,
            reuse_first,
        ) {
            Ok(()) => {
                self.commit_step(system, x, cap_states, trial, method);
                return Ok(());
            }
            Err(e @ SpiceError::Convergence { .. }) => e,
            // Anything other than a convergence failure (bad companion,
            // inconsistent state) is not recoverable by retrying.
            Err(e) => return Err(e),
        };

        // Rung 1: same step, backward Euler.
        if self.recovery.method_fallback && method != Method::BackwardEuler {
            stats.method_fallbacks += 1;
            dso_obs::counter!("recovery.method_fallbacks").incr();
            if self
                .try_step(
                    system,
                    solver,
                    x,
                    None,
                    cap_states,
                    trial,
                    t_prev,
                    t_target,
                    Method::BackwardEuler,
                    stats,
                    false,
                )
                .is_ok()
            {
                self.commit_step(system, x, cap_states, trial, Method::BackwardEuler);
                stats.recovered_steps += 1;
                dso_obs::counter!("recovery.recovered_steps").incr();
                return Ok(());
            }
        }

        // Rung 2: subdivide at the midpoint, both halves backward Euler.
        // Deeper failures climb their own ladder; the deepest level falls
        // through to gmin stepping below.
        if depth < self.recovery.max_subdivisions {
            stats.subdivisions += 1;
            stats.deepest_subdivision = stats.deepest_subdivision.max(depth + 1);
            dso_obs::counter!("recovery.subdivisions").incr();
            dso_obs::histogram!("recovery.subdivision_depth", &[1.0, 2.0, 3.0, 4.0, 6.0])
                .observe((depth + 1) as f64);
            let t_mid = 0.5 * (t_prev + t_target);
            self.advance(
                system,
                solver,
                x,
                cap_states,
                trial,
                None,
                false,
                t_prev,
                t_mid,
                Method::BackwardEuler,
                depth + 1,
                stats,
            )?;
            self.advance(
                system,
                solver,
                x,
                cap_states,
                trial,
                None,
                false,
                t_mid,
                t_target,
                Method::BackwardEuler,
                depth + 1,
                stats,
            )?;
            stats.recovered_steps += 1;
            dso_obs::counter!("recovery.recovered_steps").incr();
            return Ok(());
        }

        // Rung 3 (deepest subdivision only): gmin stepping.
        if self.recovery.gmin_stepping
            && self
                .gmin_step(
                    system, solver, x, cap_states, trial, t_prev, t_target, stats,
                )
                .is_ok()
        {
            self.commit_step(system, x, cap_states, trial, Method::BackwardEuler);
            stats.recovered_steps += 1;
            dso_obs::counter!("recovery.recovered_steps").incr();
            return Ok(());
        }

        // Ladder exhausted: surface the original failure, with the total
        // attempt count spent on this run.
        match first_err {
            SpiceError::Convergence { time, source, .. } => Err(SpiceError::Convergence {
                time,
                attempts: stats.solve_attempts,
                source,
            }),
            e => Err(e),
        }
    }
}

/// Runs one fixed-step transient per lane in lockstep: all lanes advance
/// one time step at a time, and every step's Newton solve runs through
/// `backend`, so the LU factorization and triangular solves batch across
/// the lane (see [`dso_num::batch`]).
///
/// Lane independence is exact — SoA batching only interleaves *storage* —
/// so every lane's result is **bit-identical** to
/// [`Simulator::transient`] of the same lane alone. Lanes the lockstep
/// path cannot serve bit-identically run the plain scalar transient
/// instead:
///
/// * adaptive time stepping (its step sequence is data-dependent),
/// * an armed fault plan (fault ordinals count per scalar solve),
/// * a `backend` whose [`BatchBackend::options`] differ from the lane's
///   [`Simulator::newton_options`],
/// * any lane that leaves the happy path — a failed initialization, a
///   companion-model error, or a step that does not converge. Such a lane
///   is dropped from the lockstep and the *whole* lane reruns scalar,
///   reproducing the identical trajectory up to the failure and then
///   climbing the ordinary [`RecoveryPolicy`] ladder — recovery semantics
///   and [`RecoveryStats`] accounting are exactly the scalar path's.
///
/// [`SolverTuning`] needs no special handling here: each lane owns its MNA
/// system (and therefore its device-bypass caches), and the batch solver
/// issues every lane the same residual/Jacobian call sequence as the
/// scalar solver, so the caches — and the per-lane modified-Newton
/// refactor decisions — evolve bit-identically to the lane's scalar run.
pub fn transient_lockstep<B: BatchBackend>(
    backend: &mut B,
    sims: &[Simulator<'_>],
    options: &[TranOptions],
) -> Vec<Result<TranResult, SpiceError>> {
    assert_eq!(sims.len(), options.len(), "one TranOptions per lane");
    let span = dso_obs::span("spice.transient_lockstep");
    span.note("lanes", sims.len() as f64);
    let m = sims.len();
    let mut results: Vec<Option<Result<TranResult, SpiceError>>> = (0..m).map(|_| None).collect();

    /// Per-lane lockstep run state (the lockstep analogue of
    /// `transient_seeded`'s locals).
    struct LaneRun {
        lane: usize,
        x: Vec<f64>,
        cap_states: Vec<Option<CapState>>,
        times: Vec<f64>,
        samples: Vec<Vec<f64>>,
        stats: RecoveryStats,
        steps: usize,
    }

    let mut systems: Vec<MnaSystem<'_>> = Vec::new();
    let mut runs: Vec<LaneRun> = Vec::new();
    let mut scalar: Vec<usize> = Vec::new();
    for lane in 0..m {
        let sim = &sims[lane];
        let opts = &options[lane];
        if opts.adaptive.is_some() || sim.fault_plan.is_some() || sim.newton != *backend.options() {
            scalar.push(lane);
            continue;
        }
        match sim.transient_init(opts) {
            Ok((system, x, cap_states)) => {
                dso_obs::counter!("spice.transients").incr();
                let steps = (opts.t_stop / opts.dt).round() as usize;
                let mut times = Vec::with_capacity(steps + 1);
                let mut samples = Vec::with_capacity(steps + 1);
                times.push(0.0);
                samples.push(x.clone());
                systems.push(system);
                runs.push(LaneRun {
                    lane,
                    x,
                    cap_states,
                    times,
                    samples,
                    stats: RecoveryStats::default(),
                    steps,
                });
            }
            // Initialization failures (bad topology, missing IC node, a
            // failed DC solve) rerun scalar to reproduce the exact error.
            Err(_) => scalar.push(lane),
        }
    }

    // Fresh-run boundary for cross-solve LU retention: the scalar path
    // builds a fresh `NewtonSolver` per transient, so no lane may start
    // this run reusing a factorization retained from a previous one.
    backend.begin_run();
    let mut trials: Vec<Vec<f64>> = runs.iter().map(|r| r.x.clone()).collect();
    let mut dead = vec![false; runs.len()];
    let mut active = vec![false; runs.len()];
    let mut t_targets = vec![0.0; runs.len()];
    let mut methods = vec![Method::BackwardEuler; runs.len()];
    let total_steps = runs.iter().map(|r| r.steps).max().unwrap_or(0);
    for step in 1..=total_steps {
        for p in 0..runs.len() {
            active[p] = false;
            if dead[p] || step > runs[p].steps {
                continue;
            }
            let run = &mut runs[p];
            let opts = &options[run.lane];
            t_targets[p] = if step == run.steps {
                opts.t_stop
            } else {
                step as f64 * opts.dt
            };
            // The first step always integrates backward Euler, as scalar.
            methods[p] = if step == 1 {
                Method::BackwardEuler
            } else {
                opts.method
            };
            let t_prev = run.times[run.times.len() - 1];
            match sims[run.lane].install_companions(
                &mut systems[p],
                &run.cap_states,
                t_prev,
                t_targets[p],
                methods[p],
            ) {
                Ok(()) => {
                    run.stats.solve_attempts += 1;
                    dso_obs::counter!("spice.solve_attempts").incr();
                    trials[p].clear();
                    trials[p].extend_from_slice(&run.x);
                    active[p] = true;
                }
                // A companion/state error is not recoverable by retrying;
                // the scalar rerun surfaces the identical error.
                Err(_) => dead[p] = true,
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }
        let outcomes = backend.solve_lockstep(&mut systems, &mut trials, &active);
        for p in 0..runs.len() {
            if !active[p] {
                continue;
            }
            match &outcomes[p] {
                Some(Ok(newton)) => {
                    let run = &mut runs[p];
                    run.stats.newton_iters += newton.iterations;
                    run.stats.lu_refactors += newton.lu_refactors;
                    run.stats.lu_reuses += newton.lu_reuses;
                    sims[run.lane].commit_step(
                        &systems[p],
                        &mut run.x,
                        &mut run.cap_states,
                        &trials[p],
                        methods[p],
                    );
                    run.times.push(t_targets[p]);
                    run.samples.push(run.x.clone());
                }
                // The lane left the happy path: drop it from the lockstep
                // and let the scalar rerun reproduce the failure and climb
                // the recovery ladder.
                _ => dead[p] = true,
            }
        }
    }

    for (p, mut run) in runs.into_iter().enumerate() {
        if dead[p] {
            scalar.push(run.lane);
            continue;
        }
        systems[p].fold_bypass_counters(&mut run.stats);
        results[run.lane] = Some(Ok(TranResult {
            node_names: sims[run.lane].circuit.node_names().to_vec(),
            vsource_names: sims[run.lane].vsource_names(),
            times: run.times,
            samples: run.samples,
            recovery: run.stats,
        }));
    }
    for lane in scalar {
        results[lane] = Some(sims[lane].transient_seeded(&options[lane], None));
    }
    results
        .into_iter()
        .map(|r| r.expect("every lane resolved"))
        .collect()
}

/// Bypass anchor for one MOSFET: the terminal voltages of its last model
/// evaluation and the evaluation itself.
#[derive(Debug, Clone, Copy)]
struct MosBypass {
    vgs: f64,
    vds: f64,
    vbs: f64,
    eval: mos::MosEval,
}

/// Bypass anchor for one diode: junction voltage, current, conductance.
#[derive(Debug, Clone, Copy)]
struct DiodeBypass {
    vd: f64,
    i: f64,
    g: f64,
}

/// The MNA nonlinear system for one time point (or the DC operating point
/// when no companion models are installed).
///
/// When `bypass_tol > 0` the system assembles incrementally: everything
/// linear in `x` (gmin leak, resistors, capacitor companions, source
/// patterns) is stamped once per `(time, companions, gmin)` configuration
/// into `lin_jac`/`lin_rhs`, and each residual/Jacobian evaluation is a
/// matrix-vector product (or memcpy) plus the nonlinear device stamps —
/// with MOSFETs and diodes bypassed when their terminal voltages have not
/// moved. `bypass_tol == 0` routes every evaluation through the legacy
/// [`MnaSystem::stamp`] loop, bit-for-bit.
struct MnaSystem<'a> {
    circuit: &'a Circuit,
    temp: f64,
    gmin: f64,
    time: f64,
    /// Companion model per device index (capacitors only, transient only).
    companions: Vec<Option<Companion>>,
    /// Branch-current variable index per device index (voltage sources).
    branch_var: Vec<Option<usize>>,
    n_unknowns: usize,
    /// Device bypass tolerance in volts; `0` disables the incremental
    /// fast path entirely (see [`SolverTuning::bypass_tol`]).
    bypass_tol: f64,
    /// `true` when `lin_jac`/`lin_rhs` no longer match the current
    /// `(time, companions, gmin)` configuration.
    base_dirty: bool,
    /// Constant (in `x`) part of the Jacobian.
    lin_jac: DMatrix,
    /// Constant (in `x`) part of the residual.
    lin_rhs: Vec<f64>,
    /// Per-device bypass anchors (index-aligned with the device list).
    mos_cache: Vec<Option<MosBypass>>,
    diode_cache: Vec<Option<DiodeBypass>>,
    bypass_hits: usize,
    bypass_misses: usize,
}

impl<'a> MnaSystem<'a> {
    fn new(circuit: &'a Circuit, temp: f64, gmin: f64) -> Self {
        let n_nodes = circuit.node_count() - 1;
        let mut branch_var = vec![None; circuit.device_count()];
        let mut next = n_nodes;
        for (idx, device) in circuit.devices().iter().enumerate() {
            if device.has_branch_current() {
                branch_var[idx] = Some(next);
                next += 1;
            }
        }
        MnaSystem {
            circuit,
            temp,
            gmin,
            time: 0.0,
            companions: vec![None; circuit.device_count()],
            branch_var,
            n_unknowns: next,
            bypass_tol: 0.0,
            base_dirty: true,
            lin_jac: DMatrix::zeros(next, next),
            lin_rhs: vec![0.0; next],
            mos_cache: vec![None; circuit.device_count()],
            diode_cache: vec![None; circuit.device_count()],
            bypass_hits: 0,
            bypass_misses: 0,
        }
    }

    /// Changes the minimum conductance, invalidating the linear base (the
    /// gmin leak lives on its diagonal). Homotopy ladders must use this
    /// instead of writing the field.
    fn set_gmin(&mut self, gmin: f64) {
        if self.gmin != gmin {
            self.gmin = gmin;
            self.base_dirty = true;
        }
    }

    /// Drains the bypass counters into a stats tally (and the process-wide
    /// metrics), leaving them zeroed so a system shared across phases
    /// never double-counts.
    fn fold_bypass_counters(&mut self, stats: &mut RecoveryStats) {
        if self.bypass_hits > 0 {
            dso_obs::counter!("spice.bypass_hits").add(self.bypass_hits as u64);
        }
        if self.bypass_misses > 0 {
            dso_obs::counter!("spice.bypass_misses").add(self.bypass_misses as u64);
        }
        stats.bypass_hits += self.bypass_hits;
        stats.bypass_misses += self.bypass_misses;
        self.bypass_hits = 0;
        self.bypass_misses = 0;
    }

    /// Rebuilds the linear base if the step configuration changed since it
    /// was last stamped. Everything whose contribution is affine in `x` —
    /// gmin leak, resistors, capacitor companions, source values, voltage
    /// source patterns — lands here once; per-iteration evaluations then
    /// start from a matvec/memcpy of it instead of re-stamping.
    fn ensure_base(&mut self) {
        if !self.base_dirty {
            return;
        }
        let n_nodes = self.circuit.node_count() - 1;
        self.lin_jac.clear();
        self.lin_rhs.iter_mut().for_each(|r| *r = 0.0);
        for i in 0..n_nodes {
            self.lin_jac[(i, i)] += self.gmin;
        }
        for (idx, device) in self.circuit.devices().iter().enumerate() {
            match device {
                Device::Resistor { p, n, resistance } => {
                    let g = 1.0 / resistance;
                    Self::base_conductance(&mut self.lin_jac, *p, *n, g);
                }
                Device::Capacitor { p, n, .. } => {
                    if let Some(comp) = self.companions[idx] {
                        Self::base_conductance(&mut self.lin_jac, *p, *n, comp.geq);
                        if !p.is_ground() {
                            self.lin_rhs[p.0 - 1] -= comp.ieq;
                        }
                        if !n.is_ground() {
                            self.lin_rhs[n.0 - 1] += comp.ieq;
                        }
                    }
                }
                Device::VSource { p, n, waveform } => {
                    let br = self.branch_var[idx].expect("vsource has branch");
                    if !p.is_ground() {
                        self.lin_jac[(p.0 - 1, br)] += 1.0;
                        self.lin_jac[(br, p.0 - 1)] += 1.0;
                    }
                    if !n.is_ground() {
                        self.lin_jac[(n.0 - 1, br)] -= 1.0;
                        self.lin_jac[(br, n.0 - 1)] -= 1.0;
                    }
                    self.lin_rhs[br] -= waveform.eval(self.time);
                }
                Device::ISource { p, n, waveform } => {
                    let i = waveform.eval(self.time);
                    if !p.is_ground() {
                        self.lin_rhs[p.0 - 1] += i;
                    }
                    if !n.is_ground() {
                        self.lin_rhs[n.0 - 1] -= i;
                    }
                }
                // Nonlinear devices are stamped per evaluation.
                Device::Mosfet { .. } | Device::Diode { .. } | Device::VSwitch { .. } => {}
            }
        }
        self.base_dirty = false;
    }

    /// Stamps a two-terminal conductance pattern into a matrix.
    fn base_conductance(jac: &mut DMatrix, p: NodeId, n: NodeId, g: f64) {
        if !p.is_ground() {
            jac[(p.0 - 1, p.0 - 1)] += g;
        }
        if !n.is_ground() {
            jac[(n.0 - 1, n.0 - 1)] += g;
        }
        if !p.is_ground() && !n.is_ground() {
            jac[(p.0 - 1, n.0 - 1)] -= g;
            jac[(n.0 - 1, p.0 - 1)] -= g;
        }
    }

    /// Stamps the nonlinear devices (MOSFETs, diodes, switches) on top of
    /// the linear base, bypassing a device's model evaluation when every
    /// terminal voltage sits within `bypass_tol` of its anchor — the
    /// cached current is then corrected to first order along the cached
    /// conductances, so a hit is exact to O(Δv²). `force_eval` (the exact
    /// residual) evaluates everything and refreshes the anchors.
    fn stamp_nonlinear(
        &mut self,
        x: &[f64],
        mut res: Option<&mut [f64]>,
        mut jac: Option<&mut DMatrix>,
        force_eval: bool,
    ) {
        let tol = self.bypass_tol;
        let temp = self.temp;
        let add_res = |res: &mut Option<&mut [f64]>, node: NodeId, current: f64| {
            if let Some(res) = res.as_deref_mut() {
                if !node.is_ground() {
                    res[node.0 - 1] += current;
                }
            }
        };
        let add_jac = |jac: &mut Option<&mut DMatrix>, row: NodeId, col: NodeId, g: f64| {
            if let Some(jac) = jac.as_deref_mut() {
                if !row.is_ground() && !col.is_ground() {
                    jac[(row.0 - 1, col.0 - 1)] += g;
                }
            }
        };
        let circuit = self.circuit;
        for (idx, device) in circuit.devices().iter().enumerate() {
            match device {
                Device::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    geometry,
                } => {
                    let vgs = Self::volt(x, *g) - Self::volt(x, *s);
                    let vds = Self::volt(x, *d) - Self::volt(x, *s);
                    let vbs = Self::volt(x, *b) - Self::volt(x, *s);
                    let hit = if force_eval {
                        None
                    } else {
                        self.mos_cache[idx].filter(|c| {
                            (vgs - c.vgs).abs() <= tol
                                && (vds - c.vds).abs() <= tol
                                && (vbs - c.vbs).abs() <= tol
                        })
                    };
                    let (e, ids) = match hit {
                        Some(c) => {
                            self.bypass_hits += 1;
                            let ids = c.eval.ids
                                + c.eval.gm * (vgs - c.vgs)
                                + c.eval.gds * (vds - c.vds)
                                + c.eval.gmbs * (vbs - c.vbs);
                            (c.eval, ids)
                        }
                        None => {
                            self.bypass_misses += 1;
                            let e = mos::evaluate(model, *geometry, vgs, vds, vbs, temp);
                            self.mos_cache[idx] = Some(MosBypass {
                                vgs,
                                vds,
                                vbs,
                                eval: e,
                            });
                            (e, e.ids)
                        }
                    };
                    add_res(&mut res, *d, ids);
                    add_res(&mut res, *s, -ids);
                    let gsum = e.gm + e.gds + e.gmbs;
                    add_jac(&mut jac, *d, *d, e.gds);
                    add_jac(&mut jac, *d, *g, e.gm);
                    add_jac(&mut jac, *d, *b, e.gmbs);
                    add_jac(&mut jac, *d, *s, -gsum);
                    add_jac(&mut jac, *s, *d, -e.gds);
                    add_jac(&mut jac, *s, *g, -e.gm);
                    add_jac(&mut jac, *s, *b, -e.gmbs);
                    add_jac(&mut jac, *s, *s, gsum);
                }
                Device::Diode { p, n, model } => {
                    let vd = Self::volt(x, *p) - Self::volt(x, *n);
                    let hit = if force_eval {
                        None
                    } else {
                        self.diode_cache[idx].filter(|c| (vd - c.vd).abs() <= tol)
                    };
                    let (i, g) = match hit {
                        Some(c) => {
                            self.bypass_hits += 1;
                            (c.i + c.g * (vd - c.vd), c.g)
                        }
                        None => {
                            self.bypass_misses += 1;
                            let (i, g) = model.evaluate(vd, temp);
                            self.diode_cache[idx] = Some(DiodeBypass { vd, i, g });
                            (i, g)
                        }
                    };
                    add_res(&mut res, *p, i);
                    add_res(&mut res, *n, -i);
                    add_jac(&mut jac, *p, *p, g);
                    add_jac(&mut jac, *p, *n, -g);
                    add_jac(&mut jac, *n, *p, -g);
                    add_jac(&mut jac, *n, *n, g);
                }
                // Switches transition over tens of millivolts and sit on
                // the circuits' critical timing paths — never bypassed.
                Device::VSwitch {
                    p,
                    n,
                    cp,
                    cn,
                    ron,
                    roff,
                    threshold,
                    transition,
                } => {
                    let vc = Self::volt(x, *cp) - Self::volt(x, *cn);
                    let (g, dg_dvc) = switch_conductance(vc, *ron, *roff, *threshold, *transition);
                    let v = Self::volt(x, *p) - Self::volt(x, *n);
                    let i = g * v;
                    add_res(&mut res, *p, i);
                    add_res(&mut res, *n, -i);
                    add_jac(&mut jac, *p, *p, g);
                    add_jac(&mut jac, *p, *n, -g);
                    add_jac(&mut jac, *n, *p, -g);
                    add_jac(&mut jac, *n, *n, g);
                    let gc = dg_dvc * v;
                    add_jac(&mut jac, *p, *cp, gc);
                    add_jac(&mut jac, *p, *cn, -gc);
                    add_jac(&mut jac, *n, *cp, -gc);
                    add_jac(&mut jac, *n, *cn, gc);
                }
                _ => {}
            }
        }
    }

    /// The incremental residual: linear base matvec plus nonlinear stamps.
    fn fast_residual(&mut self, x: &[f64], out: &mut [f64], force_eval: bool) {
        self.ensure_base();
        self.lin_jac.mul_vec_into(x, out);
        for (o, r) in out.iter_mut().zip(&self.lin_rhs) {
            *o += *r;
        }
        self.stamp_nonlinear(x, Some(out), None, force_eval);
    }

    #[inline]
    fn volt(x: &[f64], node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            x[node.0 - 1]
        }
    }

    /// Stamps every device into the residual and/or Jacobian.
    fn stamp(
        &self,
        x: &[f64],
        mut res: Option<&mut [f64]>,
        mut jac: Option<&mut DMatrix>,
    ) -> Result<(), NumError> {
        let n_nodes = self.circuit.node_count() - 1;
        // gmin leak from every node to ground.
        if let Some(res) = res.as_deref_mut() {
            for (i, r) in res.iter_mut().enumerate().take(n_nodes) {
                *r = self.gmin * x[i];
            }
            for r in res.iter_mut().skip(n_nodes) {
                *r = 0.0;
            }
        }
        if let Some(jac) = jac.as_deref_mut() {
            for i in 0..n_nodes {
                jac[(i, i)] += self.gmin;
            }
        }

        // Helper closures for KCL stamping.
        let add_res = |res: &mut Option<&mut [f64]>, node: NodeId, current: f64| {
            if let Some(res) = res.as_deref_mut() {
                if !node.is_ground() {
                    res[node.0 - 1] += current;
                }
            }
        };
        let add_jac = |jac: &mut Option<&mut DMatrix>, row: NodeId, col: NodeId, g: f64| {
            if let Some(jac) = jac.as_deref_mut() {
                if !row.is_ground() && !col.is_ground() {
                    jac[(row.0 - 1, col.0 - 1)] += g;
                }
            }
        };

        for (idx, device) in self.circuit.devices().iter().enumerate() {
            match device {
                Device::Resistor { p, n, resistance } => {
                    let g = 1.0 / resistance;
                    let i = g * (Self::volt(x, *p) - Self::volt(x, *n));
                    add_res(&mut res, *p, i);
                    add_res(&mut res, *n, -i);
                    add_jac(&mut jac, *p, *p, g);
                    add_jac(&mut jac, *p, *n, -g);
                    add_jac(&mut jac, *n, *p, -g);
                    add_jac(&mut jac, *n, *n, g);
                }
                Device::Capacitor { p, n, .. } => {
                    if let Some(comp) = self.companions[idx] {
                        let v = Self::volt(x, *p) - Self::volt(x, *n);
                        let i = comp.geq * v - comp.ieq;
                        add_res(&mut res, *p, i);
                        add_res(&mut res, *n, -i);
                        add_jac(&mut jac, *p, *p, comp.geq);
                        add_jac(&mut jac, *p, *n, -comp.geq);
                        add_jac(&mut jac, *n, *p, -comp.geq);
                        add_jac(&mut jac, *n, *n, comp.geq);
                    }
                    // DC: capacitor is open — no stamp.
                }
                Device::VSource { p, n, waveform } => {
                    let br = self.branch_var[idx].expect("vsource has branch");
                    let i_br = x[br];
                    add_res(&mut res, *p, i_br);
                    add_res(&mut res, *n, -i_br);
                    if let Some(res) = res.as_deref_mut() {
                        res[br] = Self::volt(x, *p) - Self::volt(x, *n) - waveform.eval(self.time);
                    }
                    if let Some(jac) = jac.as_deref_mut() {
                        if !p.is_ground() {
                            jac[(p.0 - 1, br)] += 1.0;
                            jac[(br, p.0 - 1)] += 1.0;
                        }
                        if !n.is_ground() {
                            jac[(n.0 - 1, br)] -= 1.0;
                            jac[(br, n.0 - 1)] -= 1.0;
                        }
                    }
                }
                Device::ISource { p, n, waveform } => {
                    let i = waveform.eval(self.time);
                    add_res(&mut res, *p, i);
                    add_res(&mut res, *n, -i);
                }
                Device::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    geometry,
                } => {
                    let vgs = Self::volt(x, *g) - Self::volt(x, *s);
                    let vds = Self::volt(x, *d) - Self::volt(x, *s);
                    let vbs = Self::volt(x, *b) - Self::volt(x, *s);
                    let e = mos::evaluate(model, *geometry, vgs, vds, vbs, self.temp);
                    add_res(&mut res, *d, e.ids);
                    add_res(&mut res, *s, -e.ids);
                    let gsum = e.gm + e.gds + e.gmbs;
                    add_jac(&mut jac, *d, *d, e.gds);
                    add_jac(&mut jac, *d, *g, e.gm);
                    add_jac(&mut jac, *d, *b, e.gmbs);
                    add_jac(&mut jac, *d, *s, -gsum);
                    add_jac(&mut jac, *s, *d, -e.gds);
                    add_jac(&mut jac, *s, *g, -e.gm);
                    add_jac(&mut jac, *s, *b, -e.gmbs);
                    add_jac(&mut jac, *s, *s, gsum);
                }
                Device::Diode { p, n, model } => {
                    let vd = Self::volt(x, *p) - Self::volt(x, *n);
                    let (i, g) = model.evaluate(vd, self.temp);
                    add_res(&mut res, *p, i);
                    add_res(&mut res, *n, -i);
                    add_jac(&mut jac, *p, *p, g);
                    add_jac(&mut jac, *p, *n, -g);
                    add_jac(&mut jac, *n, *p, -g);
                    add_jac(&mut jac, *n, *n, g);
                }
                Device::VSwitch {
                    p,
                    n,
                    cp,
                    cn,
                    ron,
                    roff,
                    threshold,
                    transition,
                } => {
                    let vc = Self::volt(x, *cp) - Self::volt(x, *cn);
                    let (g, dg_dvc) = switch_conductance(vc, *ron, *roff, *threshold, *transition);
                    let v = Self::volt(x, *p) - Self::volt(x, *n);
                    let i = g * v;
                    add_res(&mut res, *p, i);
                    add_res(&mut res, *n, -i);
                    add_jac(&mut jac, *p, *p, g);
                    add_jac(&mut jac, *p, *n, -g);
                    add_jac(&mut jac, *n, *p, -g);
                    add_jac(&mut jac, *n, *n, g);
                    // Control coupling.
                    let gc = dg_dvc * v;
                    add_jac(&mut jac, *p, *cp, gc);
                    add_jac(&mut jac, *p, *cn, -gc);
                    add_jac(&mut jac, *n, *cp, -gc);
                    add_jac(&mut jac, *n, *cn, gc);
                }
            }
        }
        Ok(())
    }
}

impl NonlinearSystem for MnaSystem<'_> {
    fn unknowns(&self) -> usize {
        self.n_unknowns
    }

    fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        if self.bypass_tol > 0.0 {
            self.fast_residual(x, out, false);
            Ok(())
        } else {
            self.stamp(x, Some(out), None)
        }
    }

    fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
        if self.bypass_tol > 0.0 {
            self.ensure_base();
            jac.copy_from(&self.lin_jac);
            self.stamp_nonlinear(x, None, Some(jac), false);
            Ok(())
        } else {
            self.stamp(x, None, Some(jac))
        }
    }

    fn residual_is_approximate(&self) -> bool {
        self.bypass_tol > 0.0
    }

    fn residual_exact(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        if self.bypass_tol > 0.0 {
            // Evaluate every device and refresh the anchors: acceptance is
            // always judged on the true residual, and the refreshed caches
            // make the verdict the next iteration's starting point.
            self.fast_residual(x, out, true);
            Ok(())
        } else {
            self.stamp(x, Some(out), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mos::{MosGeometry, MosModel};
    use crate::waveform::{step, Pulse, Waveform};

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", vin, mid, 1e3).unwrap();
        ckt.add_resistor("R2", mid, Circuit::GROUND, 1e3).unwrap();
        ckt
    }

    #[test]
    fn dc_divider() {
        let ckt = divider();
        let op = Simulator::new(&ckt).dc_operating_point().unwrap();
        assert!((op.voltage("mid").unwrap() - 1.0).abs() < 1e-6);
        assert!((op.voltage("in").unwrap() - 2.0).abs() < 1e-9);
        assert!((op.voltage("0").unwrap()).abs() < 1e-12);
        // Current through the source: 2 V across 2 kΩ = 1 mA into the
        // divider, so the branch current (p → source → n) is −1 mA... the
        // sign follows the stamping convention: i flows out of `p` into
        // the external circuit means negative branch current here.
        let i = op.current("V1").unwrap();
        assert!((i.abs() - 1e-3).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn dc_diode_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let k = ckt.node("k");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::Dc(5.0))
            .unwrap();
        ckt.add_resistor("R1", a, k, 1e3).unwrap();
        ckt.add_diode(
            "D1",
            k,
            Circuit::GROUND,
            crate::diode::DiodeModel::default(),
        )
        .unwrap();
        let op = Simulator::new(&ckt).dc_operating_point().unwrap();
        let vd = op.voltage("k").unwrap();
        assert!((0.5..0.8).contains(&vd), "diode drop {vd}");
    }

    #[test]
    fn rc_charge_matches_analytic() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-9).unwrap();
        let tau = 1e3 * 1e-9;
        let opts = TranOptions::new(5.0 * tau, tau / 100.0)
            .unwrap()
            .with_ic(vec![("out".to_string(), 0.0)]);
        let result = Simulator::new(&ckt).transient(&opts).unwrap();
        for &frac in &[0.5, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let v = result.voltage_at("out", t).unwrap();
            let exact = 1.0 - (-frac).exp();
            assert!((v - exact).abs() < 2e-3, "t={frac} tau: {v} vs {exact}");
        }
    }

    #[test]
    fn rc_discharge_with_cap_ic() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor_ic("C1", out, Circuit::GROUND, 1e-9, Some(2.4))
            .unwrap();
        let tau = 1e-6;
        let opts = TranOptions::new(3.0 * tau, tau / 200.0)
            .unwrap()
            .with_ic(Vec::new());
        let result = Simulator::new(&ckt).transient(&opts).unwrap();
        assert!((result.voltage_at("out", 0.0).unwrap() - 2.4).abs() < 1e-9);
        let v = result.final_voltage("out").unwrap();
        let exact = 2.4 * (-3.0_f64).exp();
        assert!((v - exact).abs() < 2e-3, "{v} vs {exact}");
    }

    #[test]
    fn trapezoidal_beats_backward_euler() {
        let run = |method: Method| {
            let mut ckt = Circuit::new();
            let out = ckt.node("out");
            ckt.add_resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
            ckt.add_capacitor_ic("C1", out, Circuit::GROUND, 1e-9, Some(1.0))
                .unwrap();
            let opts = TranOptions::new(2e-6, 5e-8)
                .unwrap()
                .with_method(method)
                .with_ic(Vec::new());
            Simulator::new(&ckt)
                .transient(&opts)
                .unwrap()
                .final_voltage("out")
                .unwrap()
        };
        let exact = (-2.0_f64).exp();
        let be_err = (run(Method::BackwardEuler) - exact).abs();
        let tr_err = (run(Method::Trapezoidal) - exact).abs();
        assert!(tr_err < be_err, "tr {tr_err} vs be {be_err}");
    }

    #[test]
    fn pulse_through_rc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Pulse(Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period: f64::INFINITY,
            }),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-10)
            .unwrap();
        let opts = TranOptions::new(8e-6, 2e-8).unwrap();
        let result = Simulator::new(&ckt).transient(&opts).unwrap();
        // Before the pulse: 0. During the plateau: ~1. After: decaying.
        assert!(result.voltage_at("out", 0.5e-6).unwrap().abs() < 1e-3);
        assert!((result.voltage_at("out", 4.5e-6).unwrap() - 1.0).abs() < 1e-2);
        assert!(result.voltage_at("out", 7.9e-6).unwrap() < 0.1);
    }

    #[test]
    fn nmos_inverter_transfer() {
        // NMOS with resistive pull-up: out high when gate low, low when
        // gate high.
        let build = |vg: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let gate = ckt.node("g");
            let out = ckt.node("out");
            ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::Dc(2.4))
                .unwrap();
            ckt.add_vsource("Vg", gate, Circuit::GROUND, Waveform::Dc(vg))
                .unwrap();
            ckt.add_resistor("Rl", vdd, out, 20e3).unwrap();
            ckt.add_mosfet(
                "M1",
                out,
                gate,
                Circuit::GROUND,
                Circuit::GROUND,
                MosModel::default(),
                MosGeometry::new(2e-6, 0.25e-6).unwrap(),
            )
            .unwrap();
            ckt
        };
        let low_in = build(0.0);
        let op = Simulator::new(&low_in).dc_operating_point().unwrap();
        assert!(op.voltage("out").unwrap() > 2.3);

        let high_in = build(2.4);
        let op = Simulator::new(&high_in).dc_operating_point().unwrap();
        assert!(op.voltage("out").unwrap() < 0.3);
    }

    #[test]
    fn vswitch_transient() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let ctl = ckt.node("ctl");
        let out = ckt.node("out");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_vsource("Vc", ctl, Circuit::GROUND, step(0.0, 1.0, 5e-7, 1e-8))
            .unwrap();
        ckt.add_vswitch("S1", vin, out, ctl, Circuit::GROUND, 10.0, 1e9, 0.5)
            .unwrap();
        ckt.add_resistor("Rl", out, Circuit::GROUND, 1e4).unwrap();
        let opts = TranOptions::new(1e-6, 1e-8).unwrap();
        let result = Simulator::new(&ckt).transient(&opts).unwrap();
        assert!(result.voltage_at("out", 4e-7).unwrap() < 0.01);
        assert!(result.voltage_at("out", 9e-7).unwrap() > 0.95);
    }

    #[test]
    fn temperature_changes_mosfet_current() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::Dc(2.4))
            .unwrap();
        ckt.add_resistor("Rl", vdd, out, 10e3).unwrap();
        ckt.add_mosfet(
            "M1",
            out,
            vdd, // gate tied high
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::default(),
            MosGeometry::new(1e-6, 0.25e-6).unwrap(),
        )
        .unwrap();
        let v_cold = Simulator::new(&ckt)
            .with_temperature(-33.0)
            .dc_operating_point()
            .unwrap()
            .voltage("out")
            .unwrap();
        let v_hot = Simulator::new(&ckt)
            .with_temperature(87.0)
            .dc_operating_point()
            .unwrap()
            .voltage("out")
            .unwrap();
        // Hot device conducts less (mobility), so out sits higher.
        assert!(v_hot > v_cold, "hot {v_hot} vs cold {v_cold}");
    }

    #[test]
    fn adaptive_stepping_matches_analytic_with_fewer_steps() {
        // RC discharge over 10 tau: the adaptive controller stretches the
        // step along the smooth tail, using far fewer steps than the fixed
        // grid while keeping the early transient accurate.
        let build = || {
            let mut ckt = Circuit::new();
            let out = ckt.node("out");
            ckt.add_resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
            ckt.add_capacitor_ic("C1", out, Circuit::GROUND, 1e-9, Some(2.0))
                .unwrap();
            ckt
        };
        let tau = 1e-6;
        let ckt = build();
        let fixed = Simulator::new(&ckt)
            .transient(
                &TranOptions::new(10.0 * tau, tau / 200.0)
                    .unwrap()
                    .with_ic(Vec::new()),
            )
            .unwrap();
        let adaptive = Simulator::new(&ckt)
            .transient(
                &TranOptions::new(10.0 * tau, tau / 200.0)
                    .unwrap()
                    .with_ic(Vec::new())
                    .with_adaptive(AdaptiveOptions {
                        lte_tol: 2e-4,
                        dt_min: tau / 1000.0,
                        dt_max: tau,
                    }),
            )
            .unwrap();
        assert!(
            adaptive.len() * 3 < fixed.len(),
            "adaptive {} samples vs fixed {}",
            adaptive.len(),
            fixed.len()
        );
        for &frac in &[0.5, 1.0, 3.0, 8.0] {
            let t = frac * tau;
            let got = adaptive.voltage_at("out", t).unwrap();
            let exact = 2.0 * (-frac).exp();
            assert!(
                (got - exact).abs() < 5e-3,
                "at {frac} tau: {got} vs {exact}"
            );
        }
        // The final time point lands exactly on t_stop.
        assert!((adaptive.times().last().unwrap() - 10.0 * tau).abs() < 1e-18);
    }

    #[test]
    fn adaptive_refines_sharp_edges() {
        // A pulse through an RC: steps must be small around the edges and
        // large on the plateaus.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Pulse(Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 2e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 2e-6,
                period: f64::INFINITY,
            }),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-10)
            .unwrap();
        let result = Simulator::new(&ckt)
            .transient(
                &TranOptions::new(6e-6, 5e-8)
                    .unwrap()
                    .with_adaptive(AdaptiveOptions {
                        lte_tol: 1e-3,
                        dt_min: 1e-9,
                        dt_max: 5e-7,
                    }),
            )
            .unwrap();
        // Smallest accepted step near the rising edge is far below the
        // largest step on the quiet pre-pulse plateau.
        let times = result.times();
        let min_step = times
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        let max_step = times
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0_f64, f64::max);
        assert!(
            max_step > 20.0 * min_step,
            "expected strong step-size contrast: {min_step:e} .. {max_step:e}"
        );
        // And the waveform is still right.
        assert!((result.voltage_at("out", 3.9e-6).unwrap() - 1.0).abs() < 0.01);
        assert!(result.voltage_at("out", 1.9e-6).unwrap().abs() < 1e-3);
    }

    #[test]
    fn adaptive_options_validated() {
        let bad = AdaptiveOptions {
            lte_tol: 0.0,
            dt_min: 1e-9,
            dt_max: 1e-8,
        };
        assert!(bad.validate().is_err());
        let bad = AdaptiveOptions {
            lte_tol: 1e-3,
            dt_min: 1e-8,
            dt_max: 1e-9,
        };
        assert!(bad.validate().is_err());
        let ckt = divider();
        let opts = TranOptions::new(1e-6, 1e-8).unwrap().with_adaptive(bad);
        assert!(Simulator::new(&ckt).transient(&opts).is_err());
    }

    #[test]
    fn dc_sweep_nmos_output_characteristic() {
        // Ids versus Vds at fixed Vgs: monotone rising, flattening in
        // saturation.
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_vsource("Vd", d, Circuit::GROUND, Waveform::Dc(0.0))
            .unwrap();
        ckt.add_vsource("Vg", g, Circuit::GROUND, Waveform::Dc(1.5))
            .unwrap();
        ckt.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::default(),
            MosGeometry::new(1e-6, 0.25e-6).unwrap(),
        )
        .unwrap();
        let vds: Vec<f64> = (0..=12).map(|i| i as f64 * 0.2).collect();
        let sweep = Simulator::new(&ckt).dc_sweep("Vd", &vds).unwrap();
        let ids: Vec<f64> = sweep.iter().map(|s| -s.current("Vd").unwrap()).collect();
        // Monotone non-decreasing drain current.
        assert!(
            ids.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "non-monotone: {ids:?}"
        );
        // Saturation: the last increment is much smaller than the first.
        let first_step = ids[1] - ids[0];
        let last_step = ids[12] - ids[11];
        assert!(
            last_step < 0.2 * first_step,
            "no saturation: first {first_step:e}, last {last_step:e}"
        );
    }

    #[test]
    fn dc_sweep_validates_inputs() {
        let ckt = divider();
        let sim = Simulator::new(&ckt);
        assert!(sim.dc_sweep("V1", &[]).is_err());
        assert!(sim.dc_sweep("R1", &[1.0]).is_err());
        assert!(sim.dc_sweep("Vx", &[1.0]).is_err());
        // A valid sweep returns one solution per value.
        let sweep = sim.dc_sweep("V1", &[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(sweep.len(), 3);
        assert!((sweep[2].voltage("mid").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_tran_options() {
        assert!(TranOptions::new(0.0, 1e-9).is_err());
        assert!(TranOptions::new(1e-6, -1.0).is_err());
        assert!(TranOptions::new(1e-9, 1e-6).is_err());
    }

    #[test]
    fn unknown_node_in_results() {
        let ckt = divider();
        let op = Simulator::new(&ckt).dc_operating_point().unwrap();
        assert!(matches!(
            op.voltage("nope"),
            Err(SpiceError::UnknownNode(_))
        ));
        let result = Simulator::new(&ckt)
            .transient(&TranOptions::new(1e-6, 1e-8).unwrap())
            .unwrap();
        assert!(result.voltage("nope").is_err());
        assert!(result.voltage_at("mid", 2e-6).is_err()); // out of range
        assert!(result.current("Vx").is_err());
    }

    #[test]
    fn conflicting_parallel_sources_fail_cleanly() {
        // Two ideal voltage sources fighting over the same node: the MNA
        // matrix is singular. The error must be typed, never a panic.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_vsource("V2", a, Circuit::GROUND, Waveform::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let err = Simulator::new(&ckt).dc_operating_point().unwrap_err();
        assert!(
            matches!(
                err,
                SpiceError::Convergence { .. } | SpiceError::Numerical(_)
            ),
            "got {err}"
        );
        let err = Simulator::new(&ckt)
            .transient(&TranOptions::new(1e-8, 1e-9).unwrap().with_ic(Vec::new()))
            .unwrap_err();
        assert!(
            matches!(
                err,
                SpiceError::Convergence { .. } | SpiceError::Numerical(_)
            ),
            "got {err}"
        );
    }

    #[test]
    fn invalid_topology_surfaces() {
        let mut ckt = Circuit::new();
        ckt.node("only");
        let err = Simulator::new(&ckt).dc_operating_point().unwrap_err();
        assert!(matches!(err, SpiceError::BadTopology(_)));
    }

    #[test]
    fn tran_result_accessors() {
        let ckt = divider();
        let result = Simulator::new(&ckt)
            .transient(&TranOptions::new(1e-6, 1e-7).unwrap())
            .unwrap();
        assert_eq!(result.len(), 11);
        assert!(!result.is_empty());
        assert_eq!(result.times()[0], 0.0);
        let wave = result.voltage("mid").unwrap();
        assert_eq!(wave.len(), 11);
        assert!(wave.iter().all(|v| (v - 1.0).abs() < 1e-6));
        let i = result.current("V1").unwrap();
        assert_eq!(i.len(), 11);
        // Ground waveform is all zeros.
        assert!(result.voltage("0").unwrap().iter().all(|&v| v == 0.0));
    }
}
