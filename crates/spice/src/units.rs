//! SPICE engineering-notation numbers.
//!
//! SPICE decks write `10k`, `30f`, `2.4`, `1meg`, `0.1n`; this module parses
//! and formats that notation. Suffix matching is case-insensitive and, as in
//! SPICE, any trailing alphabetic unit garbage after a valid suffix is
//! ignored (`10kohm` parses as `10k`).

use crate::SpiceError;

/// Parses a SPICE number with an optional engineering suffix.
///
/// Recognized suffixes (case-insensitive): `t`, `g`, `meg`, `k`, `m`, `u`,
/// `n`, `p`, `f`. Note the SPICE quirk: `m` is milli; mega is spelled
/// `meg`.
///
/// # Errors
///
/// Returns [`SpiceError::BadAnalysis`] if the mantissa does not parse as a
/// floating-point number.
///
/// # Example
///
/// ```
/// use dso_spice::units::parse_value;
///
/// # fn main() -> Result<(), dso_spice::SpiceError> {
/// assert_eq!(parse_value("10k")?, 1e4);
/// assert!((parse_value("30f")? - 30e-15).abs() < 1e-22);
/// assert_eq!(parse_value("1meg")?, 1e6);
/// assert_eq!(parse_value("2.4")?, 2.4);
/// assert!((parse_value("100uF")? - 1e-4).abs() < 1e-12); // unit suffix ignored
/// # Ok(())
/// # }
/// ```
pub fn parse_value(text: &str) -> Result<f64, SpiceError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(SpiceError::BadAnalysis("empty numeric field".into()));
    }
    // Split mantissa from the suffix: longest prefix that parses as f64.
    // Scientific notation (1e-15) must win over the `e`-is-not-a-suffix
    // ambiguity, so scan from the full string down.
    let lower = trimmed.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut split = bytes.len();
    while split > 0 {
        if lower[..split].parse::<f64>().is_ok() {
            break;
        }
        split -= 1;
    }
    if split == 0 {
        return Err(SpiceError::BadAnalysis(format!(
            "cannot parse `{trimmed}` as a number"
        )));
    }
    let mantissa: f64 = lower[..split].parse().expect("verified above");
    let suffix = &lower[split..];
    let scale = if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with('t') {
        1e12
    } else if suffix.starts_with('g') {
        1e9
    } else if suffix.starts_with('k') {
        1e3
    } else if suffix.starts_with('m') {
        1e-3
    } else if suffix.starts_with('u') {
        1e-6
    } else if suffix.starts_with('n') {
        1e-9
    } else if suffix.starts_with('p') {
        1e-12
    } else if suffix.starts_with('f') {
        1e-15
    } else if suffix.is_empty() || suffix.chars().all(|c| c.is_ascii_alphabetic()) {
        1.0
    } else {
        return Err(SpiceError::BadAnalysis(format!(
            "cannot parse `{trimmed}` as a number (bad suffix `{suffix}`)"
        )));
    };
    Ok(mantissa * scale)
}

/// Formats a value in engineering notation with a unit, e.g. `200 kΩ`.
///
/// # Example
///
/// ```
/// use dso_spice::units::format_eng;
///
/// assert_eq!(format_eng(2.0e5, "Ω"), "200 kΩ");
/// assert_eq!(format_eng(3.0e-14, "F"), "30 fF");
/// assert_eq!(format_eng(0.0, "V"), "0 V");
/// ```
pub fn format_eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    const PREFIXES: [(&str, f64); 9] = [
        ("T", 1e12),
        ("G", 1e9),
        ("M", 1e6),
        ("k", 1e3),
        ("", 1.0),
        ("m", 1e-3),
        ("µ", 1e-6),
        ("n", 1e-9),
        ("f", 1e-15),
    ];
    let magnitude = value.abs();
    // p (pico) intentionally folded towards n/f via nearest pick below.
    const PICO: (&str, f64) = ("p", 1e-12);
    let mut best = PREFIXES[4];
    for &(p, s) in PREFIXES.iter().chain(std::iter::once(&PICO)) {
        let scaled = magnitude / s;
        if (1.0..1000.0).contains(&scaled) {
            best = (p, s);
            break;
        }
    }
    let scaled = value / best.1;
    let text = if (scaled - scaled.round()).abs() < 1e-9 * scaled.abs().max(1.0) {
        format!("{}", scaled.round())
    } else {
        format!("{scaled:.3}")
    };
    format!("{text} {}{unit}", best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("2.4").unwrap(), 2.4);
        assert_eq!(parse_value("-1.5").unwrap(), -1.5);
        assert_eq!(parse_value(" 3 ").unwrap(), 3.0);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(parse_value("1e-15").unwrap(), 1e-15);
        assert_eq!(parse_value("2.5E6").unwrap(), 2.5e6);
    }

    #[test]
    fn all_suffixes() {
        assert_eq!(parse_value("1t").unwrap(), 1e12);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1u").unwrap(), 1e-6);
        assert_eq!(parse_value("1n").unwrap(), 1e-9);
        assert_eq!(parse_value("1p").unwrap(), 1e-12);
        assert_eq!(parse_value("1f").unwrap(), 1e-15);
    }

    #[test]
    fn case_insensitive_and_units() {
        assert_eq!(parse_value("10K").unwrap(), 1e4);
        assert_eq!(parse_value("10kOhm").unwrap(), 1e4);
        assert_eq!(parse_value("1MEG").unwrap(), 1e6);
        assert_eq!(parse_value("5V").unwrap(), 5.0);
    }

    #[test]
    fn meg_beats_milli() {
        assert_eq!(parse_value("2meg").unwrap(), 2e6);
        assert_eq!(parse_value("2m").unwrap(), 2e-3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("k10").is_err());
        assert!(parse_value("ten").is_err());
    }

    #[test]
    fn format_round_trip_style() {
        assert_eq!(format_eng(200e3, "Ω"), "200 kΩ");
        assert_eq!(format_eng(1e6, "Ω"), "1 MΩ");
        assert_eq!(format_eng(2.4, "V"), "2.400 V");
        assert_eq!(format_eng(60e-9, "s"), "60 ns");
        assert_eq!(format_eng(-5e3, "Ω"), "-5 kΩ");
    }
}
