//! Time-dependent source waveforms.
//!
//! Independent sources carry a [`Waveform`] that maps simulation time to a
//! value (volts or amperes). The DRAM timing engine builds its word-line,
//! column-select and write-driver signals as [`Waveform::Pwl`] ramps, so the
//! PWL evaluation is the hot path.

use crate::SpiceError;

/// A source waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE PULSE source.
    Pulse(Pulse),
    /// Piecewise-linear: `(time, value)` breakpoints, strictly increasing
    /// in time. Before the first point the first value holds; after the
    /// last, the last value holds.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid: `offset + amplitude * sin(2π f (t - delay))` for
    /// `t >= delay`, `offset` before.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in Hz.
        frequency: f64,
        /// Start delay in seconds.
        delay: f64,
    },
    /// SPICE EXP source: `v1` until `rise_delay`, exponential approach to
    /// `v2` with `rise_tau`, then from `fall_delay` an exponential return
    /// toward `v1` with `fall_tau`.
    Exp(Exp),
}

/// Parameters of a SPICE `EXP(v1 v2 rd rtau fd ftau)` source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    /// Initial value.
    pub v1: f64,
    /// Target value of the rising exponential.
    pub v2: f64,
    /// Rise start time.
    pub rise_delay: f64,
    /// Rise time constant.
    pub rise_tau: f64,
    /// Fall start time (≥ `rise_delay`).
    pub fall_delay: f64,
    /// Fall time constant.
    pub fall_tau: f64,
}

impl Exp {
    fn eval(&self, t: f64) -> f64 {
        if t < self.rise_delay {
            return self.v1;
        }
        let rise = |tt: f64| {
            self.v1 + (self.v2 - self.v1) * (1.0 - (-(tt - self.rise_delay) / self.rise_tau).exp())
        };
        if t < self.fall_delay {
            return rise(t);
        }
        let peak = rise(self.fall_delay);
        self.v1 + (peak - self.v1) * (-(t - self.fall_delay) / self.fall_tau).exp()
    }
}

/// Parameters of a SPICE `PULSE(v1 v2 delay rise fall width period)` source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Initial value.
    pub v1: f64,
    /// Pulsed value.
    pub v2: f64,
    /// Delay before the first edge.
    pub delay: f64,
    /// Rise time (v1 → v2).
    pub rise: f64,
    /// Fall time (v2 → v1).
    pub fall: f64,
    /// Pulse width at v2 (excluding edges).
    pub width: f64,
    /// Repetition period; `f64::INFINITY` for a single pulse.
    pub period: f64,
}

impl Waveform {
    /// Validates the waveform parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadParameter`] for non-increasing PWL times,
    /// non-finite values, or negative pulse timing parameters.
    pub fn validate(&self, device: &str) -> Result<(), SpiceError> {
        let bad = |reason: String| {
            Err(SpiceError::BadParameter {
                device: device.to_string(),
                reason,
            })
        };
        match self {
            Waveform::Dc(v) => {
                if !v.is_finite() {
                    return bad("DC value must be finite".into());
                }
            }
            Waveform::Pulse(p) => {
                for (name, v) in [
                    ("v1", p.v1),
                    ("v2", p.v2),
                    ("delay", p.delay),
                    ("rise", p.rise),
                    ("fall", p.fall),
                    ("width", p.width),
                ] {
                    if !v.is_finite() {
                        return bad(format!("pulse {name} must be finite"));
                    }
                }
                if p.delay < 0.0 || p.rise < 0.0 || p.fall < 0.0 || p.width < 0.0 {
                    return bad("pulse timing parameters must be non-negative".into());
                }
                if p.period != f64::INFINITY && p.period <= 0.0 {
                    return bad("pulse period must be positive or infinite".into());
                }
                if p.period != f64::INFINITY && p.period < p.rise + p.width + p.fall {
                    return bad("pulse period shorter than rise+width+fall".into());
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return bad("PWL waveform needs at least one point".into());
                }
                if points.iter().any(|(t, v)| !t.is_finite() || !v.is_finite()) {
                    return bad("PWL points must be finite".into());
                }
                if points.windows(2).any(|w| w[0].0 >= w[1].0) {
                    return bad("PWL times must be strictly increasing".into());
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                delay,
            } => {
                if ![*offset, *amplitude, *frequency, *delay]
                    .iter()
                    .all(|v| v.is_finite())
                {
                    return bad("sine parameters must be finite".into());
                }
                if *frequency <= 0.0 {
                    return bad("sine frequency must be positive".into());
                }
            }
            Waveform::Exp(e) => {
                for (name, v) in [
                    ("v1", e.v1),
                    ("v2", e.v2),
                    ("rise_delay", e.rise_delay),
                    ("rise_tau", e.rise_tau),
                    ("fall_delay", e.fall_delay),
                    ("fall_tau", e.fall_tau),
                ] {
                    if !v.is_finite() {
                        return bad(format!("exp {name} must be finite"));
                    }
                }
                if e.rise_tau <= 0.0 || e.fall_tau <= 0.0 {
                    return bad("exp time constants must be positive".into());
                }
                if e.fall_delay < e.rise_delay {
                    return bad("exp fall_delay must not precede rise_delay".into());
                }
            }
        }
        Ok(())
    }

    /// Evaluates the waveform at time `t` (seconds, `t >= 0`).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse(p) => p.eval(t),
            Waveform::Pwl(points) => eval_pwl(points, t),
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset
                        + amplitude * (2.0 * std::f64::consts::PI * frequency * (t - delay)).sin()
                }
            }
            Waveform::Exp(e) => e.eval(t),
        }
    }

    /// The value at `t = 0`, used for the DC operating point.
    pub fn initial_value(&self) -> f64 {
        self.eval(0.0)
    }
}

impl Pulse {
    fn eval(&self, t: f64) -> f64 {
        if t < self.delay {
            return self.v1;
        }
        let mut local = t - self.delay;
        if self.period.is_finite() && self.period > 0.0 {
            local %= self.period;
        }
        if local < self.rise {
            if self.rise == 0.0 {
                return self.v2;
            }
            return self.v1 + (self.v2 - self.v1) * local / self.rise;
        }
        let after_rise = local - self.rise;
        if after_rise < self.width {
            return self.v2;
        }
        let after_width = after_rise - self.width;
        if after_width < self.fall {
            if self.fall == 0.0 {
                return self.v1;
            }
            return self.v2 + (self.v1 - self.v2) * after_width / self.fall;
        }
        self.v1
    }
}

fn eval_pwl(points: &[(f64, f64)], t: f64) -> f64 {
    match points {
        [] => 0.0,
        [only] => only.1,
        _ => {
            let first = points[0];
            let last = points[points.len() - 1];
            if t <= first.0 {
                return first.1;
            }
            if t >= last.0 {
                return last.1;
            }
            // Binary search for the segment containing t.
            let idx = points.partition_point(|&(pt, _)| pt <= t);
            let (t0, v0) = points[idx - 1];
            let (t1, v1) = points[idx];
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }
}

/// Convenience builder for a single rising step from `v_low` to `v_high`
/// starting at `t_start` with the given `ramp` time.
///
/// # Example
///
/// ```
/// use dso_spice::waveform::step;
///
/// let w = step(0.0, 1.8, 10e-9, 1e-9);
/// assert_eq!(w.eval(0.0), 0.0);
/// assert!((w.eval(12e-9) - 1.8).abs() < 1e-12);
/// ```
pub fn step(v_low: f64, v_high: f64, t_start: f64, ramp: f64) -> Waveform {
    Waveform::Pwl(vec![(t_start, v_low), (t_start + ramp.max(1e-15), v_high)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(2.4);
        assert_eq!(w.eval(0.0), 2.4);
        assert_eq!(w.eval(1.0), 2.4);
        assert_eq!(w.initial_value(), 2.4);
    }

    fn test_pulse() -> Pulse {
        Pulse {
            v1: 0.0,
            v2: 3.0,
            delay: 10e-9,
            rise: 2e-9,
            fall: 2e-9,
            width: 20e-9,
            period: 60e-9,
        }
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn pulse_phases() {
        let w = Waveform::Pulse(test_pulse());
        assert!(close(w.eval(0.0), 0.0)); // before delay
        assert!(close(w.eval(11e-9), 1.5)); // mid-rise
        assert!(close(w.eval(20e-9), 3.0)); // plateau
        assert!(close(w.eval(33e-9), 1.5)); // mid-fall
        assert!(close(w.eval(40e-9), 0.0)); // back low
    }

    #[test]
    fn pulse_repeats() {
        let w = Waveform::Pulse(test_pulse());
        // One full period after the plateau sample.
        assert!(close(w.eval(20e-9 + 60e-9), 3.0));
        assert!(close(w.eval(40e-9 + 60e-9), 0.0));
    }

    #[test]
    fn pulse_zero_edge_times() {
        let p = Pulse {
            rise: 0.0,
            fall: 0.0,
            ..test_pulse()
        };
        let w = Waveform::Pulse(p);
        assert_eq!(w.eval(10e-9), 3.0);
        assert_eq!(w.eval(30.1e-9), 0.0);
    }

    #[test]
    fn pwl_interpolation_and_clamping() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0), (4.0, 0.0)]);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(1.5), 5.0);
        assert_eq!(w.eval(3.0), 5.0);
        assert_eq!(w.eval(9.0), 0.0);
    }

    #[test]
    fn sine_waveform() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 0.5,
            frequency: 1.0,
            delay: 0.0,
        };
        assert!((w.eval(0.25) - 1.5).abs() < 1e-12);
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_waveforms() {
        assert!(Waveform::Dc(f64::NAN).validate("V1").is_err());
        assert!(Waveform::Pwl(vec![]).validate("V1").is_err());
        assert!(Waveform::Pwl(vec![(1.0, 0.0), (1.0, 2.0)])
            .validate("V1")
            .is_err());
        let mut p = test_pulse();
        p.period = 1e-9; // shorter than rise+width+fall
        assert!(Waveform::Pulse(p).validate("V1").is_err());
        assert!(Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 0.0,
            delay: 0.0
        }
        .validate("V1")
        .is_err());
        // Valid ones pass.
        assert!(Waveform::Dc(1.0).validate("V1").is_ok());
        assert!(Waveform::Pulse(test_pulse()).validate("V1").is_ok());
    }

    #[test]
    fn exp_waveform_phases() {
        let e = Exp {
            v1: 0.0,
            v2: 2.0,
            rise_delay: 10e-9,
            rise_tau: 5e-9,
            fall_delay: 40e-9,
            fall_tau: 5e-9,
        };
        let w = Waveform::Exp(e);
        assert!(w.validate("V1").is_ok());
        assert_eq!(w.eval(0.0), 0.0);
        // One tau into the rise: 1 - 1/e of the swing.
        let v = w.eval(15e-9);
        let expect = 2.0 * (1.0 - (-1.0_f64).exp());
        assert!((v - expect).abs() < 1e-9, "{v} vs {expect}");
        // Long after the fall: back near v1.
        assert!(w.eval(200e-9).abs() < 1e-9);
        // Continuity at the fall start.
        let a = w.eval(40e-9 - 1e-15);
        let b = w.eval(40e-9 + 1e-15);
        assert!((a - b).abs() < 1e-6);
        // Validation catches bad parameters.
        let bad = Exp { rise_tau: 0.0, ..e };
        assert!(Waveform::Exp(bad).validate("V1").is_err());
        let bad = Exp {
            fall_delay: 5e-9,
            ..e
        };
        assert!(Waveform::Exp(bad).validate("V1").is_err());
    }

    #[test]
    fn step_builder() {
        let w = step(0.5, 2.4, 5e-9, 1e-9);
        assert_eq!(w.eval(0.0), 0.5);
        assert!((w.eval(5.5e-9) - 1.45).abs() < 1e-12);
        assert_eq!(w.eval(10e-9), 2.4);
    }
}
