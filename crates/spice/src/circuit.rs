//! Circuit (netlist) construction and validation.

use crate::device::Device;
use crate::diode::DiodeModel;
use crate::mos::{MosGeometry, MosModel};
use crate::waveform::Waveform;
use crate::SpiceError;
use std::collections::HashMap;
use std::fmt;

/// Index of a circuit node. [`Circuit::GROUND`] is node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// `true` for the ground reference node.
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A circuit under construction: named nodes plus named devices.
///
/// # Example
///
/// A resistive divider:
///
/// ```
/// use dso_spice::circuit::Circuit;
/// use dso_spice::waveform::Waveform;
///
/// # fn main() -> Result<(), dso_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let mid = ckt.node("mid");
/// ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(2.0))?;
/// ckt.add_resistor("R1", vin, mid, 1e3)?;
/// ckt.add_resistor("R2", mid, Circuit::GROUND, 1e3)?;
/// ckt.validate()?;
/// assert_eq!(ckt.node_count(), 3); // ground, in, mid
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    devices: Vec<Device>,
    device_names: Vec<String>,
    device_index: HashMap<String, usize>,
}

impl Circuit {
    /// The ground (reference) node, named `"0"`.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut ckt = Circuit {
            node_names: vec!["0".to_string()],
            node_index: HashMap::new(),
            devices: Vec::new(),
            device_names: Vec::new(),
            device_index: HashMap::new(),
        };
        ckt.node_index.insert("0".to_string(), NodeId(0)); // canonical
        ckt.node_index.insert("gnd".to_string(), NodeId(0)); // alias
        ckt
    }

    /// Returns the node with the given name, creating it if necessary.
    /// Names are case-sensitive except for the ground aliases `"0"` and
    /// `"gnd"`.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_index.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if no such node exists.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        self.node_index
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All node names in index order (ground first).
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// The devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Device names in insertion order, parallel to [`Circuit::devices`].
    pub fn device_names(&self) -> &[String] {
        &self.device_names
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn insert(&mut self, name: &str, device: Device) -> Result<(), SpiceError> {
        if self.device_index.contains_key(name) {
            return Err(SpiceError::DuplicateDevice(name.to_string()));
        }
        self.device_index
            .insert(name.to_string(), self.devices.len());
        self.device_names.push(name.to_string());
        self.devices.push(device);
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadParameter`] if `resistance` is not positive/finite.
    /// * [`SpiceError::DuplicateDevice`] if the name is taken.
    pub fn add_resistor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        resistance: f64,
    ) -> Result<(), SpiceError> {
        if !(resistance > 0.0 && resistance.is_finite()) {
            return Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: format!("resistance must be positive and finite, got {resistance}"),
            });
        }
        self.insert(name, Device::Resistor { p, n, resistance })
    }

    /// Adds a capacitor, optionally with an initial voltage (used when the
    /// transient starts with `use_ic`).
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadParameter`] for a negative/non-finite capacitance.
    /// * [`SpiceError::DuplicateDevice`] if the name is taken.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        capacitance: f64,
    ) -> Result<(), SpiceError> {
        self.add_capacitor_ic(name, p, n, capacitance, None)
    }

    /// Adds a capacitor with an explicit initial condition.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add_capacitor`].
    pub fn add_capacitor_ic(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        capacitance: f64,
        initial_voltage: Option<f64>,
    ) -> Result<(), SpiceError> {
        if !(capacitance >= 0.0 && capacitance.is_finite()) {
            return Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: format!("capacitance must be non-negative, got {capacitance}"),
            });
        }
        self.insert(
            name,
            Device::Capacitor {
                p,
                n,
                capacitance,
                initial_voltage,
            },
        )
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadParameter`] if the waveform fails validation.
    /// * [`SpiceError::DuplicateDevice`] if the name is taken.
    pub fn add_vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        waveform: Waveform,
    ) -> Result<(), SpiceError> {
        waveform.validate(name)?;
        self.insert(name, Device::VSource { p, n, waveform })
    }

    /// Adds an independent current source (current flows `p → n` through
    /// the external circuit).
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::add_vsource`].
    pub fn add_isource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        waveform: Waveform,
    ) -> Result<(), SpiceError> {
        waveform.validate(name)?;
        self.insert(name, Device::ISource { p, n, waveform })
    }

    /// Adds a MOSFET plus its intrinsic gate capacitances.
    ///
    /// Two linear capacitors named `<name>.cgs` and `<name>.cgd`, each half
    /// the intrinsic gate capacitance `Cox·W·L`, are added automatically so
    /// transient charge coupling is represented.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadParameter`] if the model card fails validation.
    /// * [`SpiceError::DuplicateDevice`] if any generated name is taken.
    #[allow(clippy::too_many_arguments)] // d/g/s/b terminals are the SPICE idiom
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: MosModel,
        geometry: MosGeometry,
    ) -> Result<(), SpiceError> {
        model.validate(name)?;
        let cg = geometry.gate_capacitance(&model);
        self.insert(
            name,
            Device::Mosfet {
                d,
                g,
                s,
                b,
                model,
                geometry,
            },
        )?;
        self.add_capacitor(&format!("{name}.cgs"), g, s, 0.5 * cg)?;
        self.add_capacitor(&format!("{name}.cgd"), g, d, 0.5 * cg)?;
        Ok(())
    }

    /// Adds a junction diode (anode `p`, cathode `n`).
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadParameter`] if the model fails validation.
    /// * [`SpiceError::DuplicateDevice`] if the name is taken.
    pub fn add_diode(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        model: DiodeModel,
    ) -> Result<(), SpiceError> {
        model.validate(name)?;
        self.insert(name, Device::Diode { p, n, model })
    }

    /// Adds a voltage-controlled switch.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::BadParameter`] for non-positive resistances or
    ///   `ron >= roff`.
    /// * [`SpiceError::DuplicateDevice`] if the name is taken.
    #[allow(clippy::too_many_arguments)]
    pub fn add_vswitch(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        ron: f64,
        roff: f64,
        threshold: f64,
    ) -> Result<(), SpiceError> {
        if !(ron > 0.0 && roff > 0.0 && ron < roff) {
            return Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: format!("need 0 < ron < roff, got ron={ron}, roff={roff}"),
            });
        }
        self.insert(
            name,
            Device::VSwitch {
                p,
                n,
                cp,
                cn,
                ron,
                roff,
                threshold,
                transition: 0.1,
            },
        )
    }

    /// Looks up a device index by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownDevice`] if no such device exists.
    pub fn find_device(&self, name: &str) -> Result<usize, SpiceError> {
        self.device_index
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownDevice(name.to_string()))
    }

    /// Changes the resistance of an existing resistor. This is the hot path
    /// for defect-resistance sweeps: the netlist is built once and the
    /// injected defect's value swept in place.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::UnknownDevice`] if `name` does not exist.
    /// * [`SpiceError::BadParameter`] if the device is not a resistor or
    ///   the value is invalid.
    pub fn set_resistance(&mut self, name: &str, resistance: f64) -> Result<(), SpiceError> {
        if !(resistance > 0.0 && resistance.is_finite()) {
            return Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: format!("resistance must be positive and finite, got {resistance}"),
            });
        }
        let idx = self.find_device(name)?;
        match &mut self.devices[idx] {
            Device::Resistor { resistance: r, .. } => {
                *r = resistance;
                Ok(())
            }
            _ => Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: "device is not a resistor".into(),
            }),
        }
    }

    /// Replaces the waveform of an existing voltage or current source.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::UnknownDevice`] if `name` does not exist.
    /// * [`SpiceError::BadParameter`] if the device is not a source or the
    ///   waveform fails validation.
    pub fn set_waveform(&mut self, name: &str, waveform: Waveform) -> Result<(), SpiceError> {
        waveform.validate(name)?;
        let idx = self.find_device(name)?;
        match &mut self.devices[idx] {
            Device::VSource { waveform: w, .. } | Device::ISource { waveform: w, .. } => {
                *w = waveform;
                Ok(())
            }
            _ => Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: "device is not a source".into(),
            }),
        }
    }

    /// Sets the initial voltage of an existing capacitor.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::UnknownDevice`] if `name` does not exist.
    /// * [`SpiceError::BadParameter`] if the device is not a capacitor.
    pub fn set_capacitor_ic(
        &mut self,
        name: &str,
        initial_voltage: Option<f64>,
    ) -> Result<(), SpiceError> {
        let idx = self.find_device(name)?;
        match &mut self.devices[idx] {
            Device::Capacitor {
                initial_voltage: ic,
                ..
            } => {
                *ic = initial_voltage;
                Ok(())
            }
            _ => Err(SpiceError::BadParameter {
                device: name.to_string(),
                reason: "device is not a capacitor".into(),
            }),
        }
    }

    /// Structural validation: the circuit must contain at least one device,
    /// reference ground somewhere, and every non-ground node must have at
    /// least one device terminal attached.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadTopology`] describing the first violation.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.devices.is_empty() {
            return Err(SpiceError::BadTopology("circuit has no devices".into()));
        }
        let mut touched = vec![0usize; self.node_names.len()];
        for device in &self.devices {
            for t in device.terminals() {
                touched[t.0] += 1;
            }
        }
        if touched[0] == 0 {
            return Err(SpiceError::BadTopology(
                "no device references ground".into(),
            ));
        }
        for (idx, &count) in touched.iter().enumerate().skip(1) {
            if count == 0 {
                return Err(SpiceError::BadTopology(format!(
                    "node `{}` has no device connections",
                    self.node_names[idx]
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "* circuit: {} nodes, {} devices",
            self.node_count(),
            self.device_count()
        )?;
        for (name, device) in self.device_names.iter().zip(&self.devices) {
            let nodes: Vec<&str> = device
                .terminals()
                .iter()
                .map(|t| self.node_name(*t))
                .collect();
            writeln!(f, "{name} {}", nodes.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_dedup_and_ground_alias() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node("0"), Circuit::GROUND);
        assert_eq!(ckt.node("gnd"), Circuit::GROUND);
        assert!(Circuit::GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let err = ckt.add_resistor("R1", a, Circuit::GROUND, 2.0).unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateDevice(_)));
    }

    #[test]
    fn parameter_validation() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.add_resistor("R1", a, Circuit::GROUND, 0.0).is_err());
        assert!(ckt.add_resistor("R2", a, Circuit::GROUND, -5.0).is_err());
        assert!(ckt.add_capacitor("C1", a, Circuit::GROUND, -1e-12).is_err());
        assert!(ckt
            .add_vswitch("S1", a, Circuit::GROUND, a, Circuit::GROUND, 1e3, 1e2, 0.5)
            .is_err());
    }

    #[test]
    fn set_resistance_round_trip() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("Rdef", a, Circuit::GROUND, 1e3).unwrap();
        ckt.set_resistance("Rdef", 2e5).unwrap();
        match &ckt.devices()[0] {
            Device::Resistor { resistance, .. } => assert_eq!(*resistance, 2e5),
            _ => panic!("expected resistor"),
        }
        assert!(ckt.set_resistance("nope", 1.0).is_err());
        assert!(ckt.set_resistance("Rdef", -1.0).is_err());
    }

    #[test]
    fn set_waveform_only_on_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(ckt.set_waveform("V1", Waveform::Dc(2.0)).is_ok());
        assert!(ckt.set_waveform("R1", Waveform::Dc(2.0)).is_err());
    }

    #[test]
    fn mosfet_adds_gate_caps() {
        let mut ckt = Circuit::new();
        let (d, g, s) = (ckt.node("d"), ckt.node("g"), ckt.node("s"));
        ckt.add_mosfet(
            "M1",
            d,
            g,
            s,
            Circuit::GROUND,
            MosModel::default(),
            MosGeometry::new(1e-6, 0.25e-6).unwrap(),
        )
        .unwrap();
        assert_eq!(ckt.device_count(), 3);
        assert!(ckt.find_device("M1.cgs").is_ok());
        assert!(ckt.find_device("M1.cgd").is_ok());
    }

    #[test]
    fn validate_topology() {
        let mut ckt = Circuit::new();
        assert!(matches!(ckt.validate(), Err(SpiceError::BadTopology(_))));

        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        // No ground reference yet.
        assert!(matches!(ckt.validate(), Err(SpiceError::BadTopology(_))));

        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        assert!(ckt.validate().is_ok());

        // A dangling node created but never connected.
        ckt.node("floating");
        assert!(matches!(ckt.validate(), Err(SpiceError::BadTopology(_))));
    }

    #[test]
    fn display_lists_devices() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let s = ckt.to_string();
        assert!(s.contains("R1 a 0"));
    }

    #[test]
    fn capacitor_ic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor_ic("C1", a, Circuit::GROUND, 1e-12, Some(1.2))
            .unwrap();
        ckt.set_capacitor_ic("C1", Some(2.0)).unwrap();
        match &ckt.devices()[0] {
            Device::Capacitor {
                initial_voltage, ..
            } => assert_eq!(*initial_voltage, Some(2.0)),
            _ => panic!(),
        }
    }
}
