//! Serializing a [`Circuit`] back to SPICE deck text.
//!
//! The inverse of [`crate::netlist::parse`]: renders every device (with
//! generated `.model` cards for MOSFETs and diodes) so a programmatically
//! built circuit — e.g. the DRAM column — can be exported to an external
//! SPICE simulator or re-parsed by this crate. Round-tripping is covered
//! by tests: `parse(to_deck(c))` solves to the same operating point as
//! `c`.

use crate::circuit::{Circuit, NodeId};
use crate::device::Device;
use crate::waveform::Waveform;

fn node_token(circuit: &Circuit, id: NodeId) -> String {
    if id.is_ground() {
        "0".to_string()
    } else {
        circuit.node_name(id).to_string()
    }
}

fn waveform_text(w: &Waveform) -> String {
    match w {
        Waveform::Dc(v) => format!("DC {v:e}"),
        Waveform::Pulse(p) => format!(
            "PULSE({:e} {:e} {:e} {:e} {:e} {:e} {:e})",
            p.v1,
            p.v2,
            p.delay,
            p.rise,
            p.fall,
            p.width,
            if p.period.is_finite() { p.period } else { 1e30 }
        ),
        Waveform::Pwl(points) => {
            let body: Vec<String> = points.iter().map(|(t, v)| format!("{t:e} {v:e}")).collect();
            format!("PWL({})", body.join(" "))
        }
        Waveform::Sine {
            offset,
            amplitude,
            frequency,
            delay,
        } => format!("SIN({offset:e} {amplitude:e} {frequency:e} {delay:e})"),
        Waveform::Exp(e) => format!(
            "EXP({:e} {:e} {:e} {:e} {:e} {:e})",
            e.v1, e.v2, e.rise_delay, e.rise_tau, e.fall_delay, e.fall_tau
        ),
    }
}

/// Sanitizes a device name into a model-card identifier.
fn model_ident(device_name: &str) -> String {
    let cleaned: String = device_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("mdl_{cleaned}")
}

/// Renders `circuit` as a SPICE deck with the given title.
///
/// Device names are preserved; MOSFET and diode model cards are emitted
/// per device (named after the device), which keeps the export simple and
/// exactly re-parseable. Auto-generated gate capacitors (named
/// `<mosfet>.cgs`/`.cgd`) are *skipped*, because re-parsing the `M` lines
/// regenerates them.
///
/// # Example
///
/// ```
/// use dso_spice::circuit::Circuit;
/// use dso_spice::export::to_deck;
/// use dso_spice::waveform::Waveform;
///
/// # fn main() -> Result<(), dso_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::Dc(1.0))?;
/// ckt.add_resistor("R1", a, Circuit::GROUND, 1e3)?;
/// let deck = to_deck(&ckt, "exported");
/// let round = dso_spice::netlist::parse(&deck)?;
/// assert_eq!(round.circuit.device_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn to_deck(circuit: &Circuit, title: &str) -> String {
    let mut out = format!("{title}\n");
    let mut models = String::new();
    for (name, device) in circuit.device_names().iter().zip(circuit.devices()) {
        // Skip the auto-generated MOSFET gate capacitors: the M card
        // recreates them on parse.
        if (name.ends_with(".cgs") || name.ends_with(".cgd"))
            && circuit
                .find_device(&name[..name.len() - 4])
                .ok()
                .map(|idx| matches!(circuit.devices()[idx], Device::Mosfet { .. }))
                .unwrap_or(false)
        {
            continue;
        }
        match device {
            Device::Resistor { p, n, resistance } => {
                out.push_str(&format!(
                    "{name} {} {} {resistance:e}\n",
                    node_token(circuit, *p),
                    node_token(circuit, *n)
                ));
            }
            Device::Capacitor {
                p,
                n,
                capacitance,
                initial_voltage,
            } => {
                let ic = initial_voltage
                    .map(|v| format!(" IC={v:e}"))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{name} {} {} {capacitance:e}{ic}\n",
                    node_token(circuit, *p),
                    node_token(circuit, *n)
                ));
            }
            Device::VSource { p, n, waveform } | Device::ISource { p, n, waveform } => {
                out.push_str(&format!(
                    "{name} {} {} {}\n",
                    node_token(circuit, *p),
                    node_token(circuit, *n),
                    waveform_text(waveform)
                ));
            }
            Device::Mosfet {
                d,
                g,
                s,
                b,
                model,
                geometry,
            } => {
                let ident = model_ident(name);
                out.push_str(&format!(
                    "{name} {} {} {} {} {ident} W={:e} L={:e}\n",
                    node_token(circuit, *d),
                    node_token(circuit, *g),
                    node_token(circuit, *s),
                    node_token(circuit, *b),
                    geometry.w,
                    geometry.l
                ));
                let kind = match model.polarity {
                    crate::mos::MosPolarity::Nmos => "NMOS",
                    crate::mos::MosPolarity::Pmos => "PMOS",
                };
                models.push_str(&format!(
                    ".model {ident} {kind} (VTO={:e} KP={:e} LAMBDA={:e} GAMMA={:e} \
                     PHI={:e} BEX={:e} TCV={:e} N={:e} TNOM={:e} COX={:e})\n",
                    model.vto,
                    model.kp,
                    model.lambda,
                    model.gamma,
                    model.phi,
                    model.bex,
                    model.tcv,
                    model.n_sub,
                    model.tnom,
                    model.cox
                ));
            }
            Device::Diode { p, n, model } => {
                let ident = model_ident(name);
                out.push_str(&format!(
                    "{name} {} {} {ident}\n",
                    node_token(circuit, *p),
                    node_token(circuit, *n)
                ));
                models.push_str(&format!(
                    ".model {ident} D (IS={:e} N={:e} TNOM={:e} XTI={:e} EG={:e})\n",
                    model.is_sat, model.n, model.tnom, model.xti, model.eg
                ));
            }
            Device::VSwitch {
                p,
                n,
                cp,
                cn,
                ron,
                roff,
                threshold,
                ..
            } => {
                out.push_str(&format!(
                    "{name} {} {} {} {} RON={ron:e} ROFF={roff:e} VT={threshold:e}\n",
                    node_token(circuit, *p),
                    node_token(circuit, *n),
                    node_token(circuit, *cp),
                    node_token(circuit, *cn)
                ));
            }
        }
    }
    out.push_str(&models);
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::mos::{MosGeometry, MosModel};
    use crate::netlist;
    use crate::waveform::Pulse;

    #[test]
    fn linear_circuit_round_trips() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", vin, mid, 1.5e3).unwrap();
        ckt.add_resistor("R2", mid, Circuit::GROUND, 3.3e3).unwrap();
        ckt.add_capacitor_ic("C1", mid, Circuit::GROUND, 2e-12, Some(0.5))
            .unwrap();

        let deck = to_deck(&ckt, "round trip");
        let parsed = netlist::parse(&deck).expect("exported deck parses");
        assert_eq!(parsed.circuit.device_count(), ckt.device_count());

        let original = Simulator::new(&ckt).dc_operating_point().unwrap();
        let round = Simulator::new(&parsed.circuit)
            .dc_operating_point()
            .unwrap();
        assert!((original.voltage("mid").unwrap() - round.voltage("mid").unwrap()).abs() < 1e-12);
    }

    #[test]
    fn mosfet_and_models_round_trip() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::Dc(2.4))
            .unwrap();
        ckt.add_resistor("Rl", vdd, out, 20e3).unwrap();
        ckt.add_mosfet(
            "M1",
            out,
            vdd,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel {
                bex: -2.0,
                ..MosModel::default()
            },
            MosGeometry::new(0.5e-6, 0.4e-6).unwrap(),
        )
        .unwrap();
        let deck = to_deck(&ckt, "mos export");
        assert!(deck.contains(".model mdl_M1 NMOS"), "{deck}");
        // Gate caps are skipped in the text…
        assert!(!deck.contains("M1.cgs"), "{deck}");
        let parsed = netlist::parse(&deck).expect("parses");
        // …but regenerate on parse, so counts match.
        assert_eq!(parsed.circuit.device_count(), ckt.device_count());
        let a = Simulator::new(&ckt)
            .dc_operating_point()
            .unwrap()
            .voltage("out")
            .unwrap();
        let b = Simulator::new(&parsed.circuit)
            .dc_operating_point()
            .unwrap()
            .voltage("out")
            .unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn waveforms_round_trip_textually() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(
            "Vp",
            a,
            Circuit::GROUND,
            Waveform::Pulse(Pulse {
                v1: 0.0,
                v2: 2.4,
                delay: 5e-9,
                rise: 1e-9,
                fall: 1e-9,
                width: 20e-9,
                period: 60e-9,
            }),
        )
        .unwrap();
        let b = ckt.node("b");
        ckt.add_vsource(
            "Vw",
            b,
            Circuit::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-9, 1.0), (5e-9, 0.25)]),
        )
        .unwrap();
        ckt.add_resistor("Ra", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_resistor("Rb", b, Circuit::GROUND, 1e3).unwrap();
        let deck = to_deck(&ckt, "waves");
        let parsed = netlist::parse(&deck).expect("parses");
        // Evaluate both waveform sets at a few instants via a transient.
        let opts = crate::engine::TranOptions::new(30e-9, 0.5e-9)
            .unwrap()
            .with_ic(Vec::new());
        let w1 = Simulator::new(&ckt).transient(&opts).unwrap();
        let w2 = Simulator::new(&parsed.circuit).transient(&opts).unwrap();
        for &t in &[2e-9, 6e-9, 12e-9, 28e-9] {
            let d = (w1.voltage_at("a", t).unwrap() - w2.voltage_at("a", t).unwrap()).abs();
            assert!(d < 1e-9, "pulse mismatch at {t:e}");
            let d = (w1.voltage_at("b", t).unwrap() - w2.voltage_at("b", t).unwrap()).abs();
            assert!(d < 1e-9, "pwl mismatch at {t:e}");
        }
    }

    #[test]
    fn dram_column_exports_and_reparses() {
        // The full DRAM column: the flagship use of the exporter.
        let column = dso_build_column();
        let deck = to_deck(column.circuit(), "dram column export");
        let parsed = netlist::parse(&deck).expect("column deck parses");
        assert_eq!(
            parsed.circuit.device_count(),
            column.circuit().device_count(),
            "device counts must match after round trip"
        );
        assert_eq!(parsed.circuit.node_count(), column.circuit().node_count());
    }

    // Minimal local column stand-in: dso-spice cannot depend on dso-dram
    // (dependency direction), so approximate with a representative slice:
    // access transistor + cell + sense-amp pair + switch.
    fn dso_build_column() -> TestColumn {
        let mut ckt = Circuit::new();
        let bt = ckt.node("bt");
        let bc = ckt.node("bc");
        let wl = ckt.node("wl");
        let st = ckt.node("st");
        let senn = ckt.node("senn");
        ckt.add_vsource("Vwl", wl, Circuit::GROUND, Waveform::Dc(0.0))
            .unwrap();
        ckt.add_vsource("Vsen", senn, Circuit::GROUND, Waveform::Dc(1.2))
            .unwrap();
        ckt.add_capacitor("Cbt", bt, Circuit::GROUND, 300e-15)
            .unwrap();
        ckt.add_capacitor("Cbc", bc, Circuit::GROUND, 300e-15)
            .unwrap();
        ckt.add_mosfet(
            "Macc",
            bt,
            wl,
            st,
            Circuit::GROUND,
            MosModel::default(),
            MosGeometry::new(0.15e-6, 0.5e-6).unwrap(),
        )
        .unwrap();
        ckt.add_capacitor("Cs", st, Circuit::GROUND, 30e-15)
            .unwrap();
        ckt.add_mosfet(
            "Msan",
            bt,
            bc,
            senn,
            Circuit::GROUND,
            MosModel::default(),
            MosGeometry::new(1.2e-6, 0.3e-6).unwrap(),
        )
        .unwrap();
        ckt.add_vswitch("Swd", bt, bc, wl, Circuit::GROUND, 500.0, 1e12, 0.5)
            .unwrap();
        ckt.add_diode(
            "Dj",
            Circuit::GROUND,
            st,
            crate::diode::DiodeModel::default(),
        )
        .unwrap();
        TestColumn { ckt }
    }

    struct TestColumn {
        ckt: Circuit,
    }

    impl TestColumn {
        fn circuit(&self) -> &Circuit {
            &self.ckt
        }
    }
}
