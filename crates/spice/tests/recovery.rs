//! Fault-injection tests of the transient convergence-recovery ladder.
//!
//! Each test arms a deterministic [`FaultPlan`] that corrupts specific
//! Newton solves, then asserts that the targeted recovery rung triggers,
//! that the run recovers, and that the recovered waveform matches the
//! clean one within tolerance.

use dso_num::chaos::{FaultKind, FaultPlan};
use dso_spice::circuit::Circuit;
use dso_spice::engine::{Simulator, TranOptions, TranResult};
use dso_spice::waveform::{Pulse, Waveform};
use dso_spice::{RecoveryPolicy, SpiceError};

/// A pulse through an RC: has capacitor state, sharp edges, and enough
/// steps that mid-run faults land between interesting events.
fn rc_pulse() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource(
        "V1",
        vin,
        Circuit::GROUND,
        Waveform::Pulse(Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-6,
            rise: 1e-8,
            fall: 1e-8,
            width: 4e-6,
            period: f64::INFINITY,
        }),
    )
    .unwrap();
    ckt.add_resistor("R1", vin, out, 1e3).unwrap();
    ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-10)
        .unwrap();
    ckt
}

fn opts() -> TranOptions {
    TranOptions::new(8e-6, 2e-8).unwrap()
}

fn assert_matches_clean(clean: &TranResult, recovered: &TranResult, tol: f64) {
    for &t in &[0.5e-6, 2e-6, 4.5e-6, 7.9e-6] {
        let a = clean.voltage_at("out", t).unwrap();
        let b = recovered.voltage_at("out", t).unwrap();
        assert!(
            (a - b).abs() < tol,
            "recovered waveform diverges at t={t:e}: clean {a} vs recovered {b}"
        );
    }
}

#[test]
fn clean_run_reports_clean_stats() {
    let ckt = rc_pulse();
    let result = Simulator::new(&ckt).transient(&opts()).unwrap();
    assert!(result.recovery().is_clean(), "{:?}", result.recovery());
    assert!(result.recovery().solve_attempts > 0);
    assert_eq!(result.recovery().recovered_steps, 0);
}

// Fault-placement note: the DC operating-point solve consumes ordinal 0,
// so fixed-step transient step `k` is solve ordinal `k`. Ordinal 55 lands
// at t = 1.1 µs — mid RC charge after the 1 µs pulse edge, where the warm
// start does not already satisfy the residual and Newton genuinely
// iterates (a Jacobian fault at an already-converged step would be
// consumed without the Jacobian ever being evaluated).

#[test]
fn every_fault_kind_recovers_mid_run() {
    let ckt = rc_pulse();
    let clean = Simulator::new(&ckt).transient(&opts()).unwrap();
    for kind in FaultKind::ALL {
        let plan = FaultPlan::new().inject_at(55, kind);
        let result = Simulator::new(&ckt)
            .with_fault_plan(plan)
            .transient(&opts())
            .unwrap_or_else(|e| panic!("{kind:?} did not recover: {e}"));
        let stats = result.recovery();
        assert!(!stats.is_clean(), "{kind:?}: no recovery action recorded");
        assert!(stats.recovered_steps >= 1, "{kind:?}: {stats:?}");
        assert_matches_clean(&clean, &result, 1e-3);
    }
}

#[test]
fn method_fallback_rung_triggers_first() {
    // A single faulted solve on a trapezoidal step is absorbed by the very
    // first rung: one backward-Euler retry of the same step.
    let ckt = rc_pulse();
    let plan = FaultPlan::new().inject_at(55, FaultKind::NanResidual);
    let result = Simulator::new(&ckt)
        .with_fault_plan(plan)
        .transient(&opts())
        .unwrap();
    let stats = result.recovery();
    assert_eq!(stats.method_fallbacks, 1, "{stats:?}");
    assert_eq!(stats.subdivisions, 0, "{stats:?}");
    assert_eq!(stats.gmin_retries, 0, "{stats:?}");
    assert_eq!(stats.recovered_steps, 1, "{stats:?}");
}

#[test]
fn subdivision_rung_triggers_when_fallback_is_defeated() {
    // A fault window wide enough to kill the method fallback too forces
    // the ladder down into timestep subdivision; the retries there are
    // fresh ordinals that eventually escape the window.
    let ckt = rc_pulse();
    let clean = Simulator::new(&ckt).transient(&opts()).unwrap();
    let plan = FaultPlan::new().inject_span(55, 58, FaultKind::ForcedDivergence);
    let result = Simulator::new(&ckt)
        .with_fault_plan(plan)
        .transient(&opts())
        .unwrap();
    let stats = result.recovery();
    assert!(stats.method_fallbacks >= 1, "{stats:?}");
    assert!(stats.subdivisions >= 1, "{stats:?}");
    assert!(stats.deepest_subdivision >= 1, "{stats:?}");
    assert!(stats.recovered_steps >= 1, "{stats:?}");
    assert_matches_clean(&clean, &result, 1e-3);
}

#[test]
fn gmin_rung_triggers_when_it_is_the_only_rung() {
    // With fallback and subdivision disabled, the only path past a faulted
    // solve is the gmin homotopy (whose rungs are fresh ordinals).
    let ckt = rc_pulse();
    let clean = Simulator::new(&ckt).transient(&opts()).unwrap();
    let policy = RecoveryPolicy::default()
        .with_method_fallback(false)
        .with_max_subdivisions(0);
    let plan = FaultPlan::new().inject_at(55, FaultKind::SingularJacobian);
    let result = Simulator::new(&ckt)
        .with_recovery(policy)
        .with_fault_plan(plan)
        .transient(&opts())
        .unwrap();
    let stats = result.recovery();
    assert_eq!(stats.method_fallbacks, 0, "{stats:?}");
    assert_eq!(stats.subdivisions, 0, "{stats:?}");
    assert_eq!(stats.gmin_retries, 1, "{stats:?}");
    assert_eq!(stats.recovered_steps, 1, "{stats:?}");
    assert_matches_clean(&clean, &result, 1e-3);
}

#[test]
fn strict_policy_fails_fast_with_campaign_context() {
    let ckt = rc_pulse();
    let plan = FaultPlan::new().inject_at(50, FaultKind::NanResidual);
    let err = Simulator::new(&ckt)
        .with_recovery(RecoveryPolicy::strict())
        .with_fault_plan(plan)
        .transient(&opts())
        .unwrap_err();
    match err {
        SpiceError::Convergence {
            time: Some(t),
            attempts,
            ..
        } => {
            // The DC solve is ordinal 0, so ordinal 50 is step 50 at
            // t = 50 · dt; strict mode spends exactly one solve per step.
            assert!((t - 50.0 * 2e-8).abs() < 1e-12, "failure at t = {t:e}");
            assert_eq!(attempts, 50, "attempts = {attempts}");
        }
        other => panic!("expected transient Convergence, got {other}"),
    }
}

#[test]
fn unrecoverable_fault_reports_total_attempts() {
    // A permanently-failing plan exhausts the whole ladder; the surfaced
    // error carries the full attempt count, above a single solve. Start
    // from ICs so the failure comes from the transient ladder rather than
    // the DC operating point.
    let ckt = rc_pulse();
    let plan = FaultPlan::always(FaultKind::NanResidual);
    let err = Simulator::new(&ckt)
        .with_recovery(RecoveryPolicy::default().with_max_subdivisions(2))
        .with_fault_plan(plan)
        .transient(&opts().with_ic(vec![("out".to_string(), 0.0)]))
        .unwrap_err();
    match err {
        SpiceError::Convergence {
            time: Some(_),
            attempts,
            ..
        } => {
            // Direct try + two subdivision levels + one gmin rung ≥ 4.
            assert!(attempts >= 4, "attempts = {attempts}");
        }
        other => panic!("expected transient Convergence, got {other}"),
    }
}

#[test]
fn dc_operating_point_recovers_via_gmin_ladder() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::Dc(2.0))
        .unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
    // Kill only the first (direct) solve: the gmin ladder runs on fresh
    // ordinals and succeeds.
    let plan = FaultPlan::new().inject_at(0, FaultKind::SingularJacobian);
    let op = Simulator::new(&ckt)
        .with_fault_plan(plan)
        .dc_operating_point()
        .unwrap();
    assert!((op.voltage("b").unwrap() - 1.0).abs() < 1e-6);

    // With gmin stepping disabled the same fault is fatal, with DC context.
    let plan = FaultPlan::new().inject_at(0, FaultKind::SingularJacobian);
    let err = Simulator::new(&ckt)
        .with_recovery(RecoveryPolicy::strict())
        .with_fault_plan(plan)
        .dc_operating_point()
        .unwrap_err();
    assert!(
        matches!(
            err,
            SpiceError::Convergence {
                time: None,
                attempts: 1,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn adaptive_transient_survives_injected_faults() {
    use dso_spice::engine::AdaptiveOptions;
    let ckt = rc_pulse();
    let adaptive = AdaptiveOptions {
        lte_tol: 1e-3,
        dt_min: 1e-9,
        dt_max: 5e-7,
    };
    let clean = Simulator::new(&ckt)
        .transient(&opts().with_adaptive(adaptive))
        .unwrap();
    let plan = FaultPlan::new().inject_at(40, FaultKind::ForcedDivergence);
    let result = Simulator::new(&ckt)
        .with_fault_plan(plan)
        .transient(&opts().with_adaptive(adaptive))
        .unwrap();
    assert!(!result.recovery().is_clean());
    // The step grids differ, so compare waveform values, not samples.
    assert_matches_clean(&clean, &result, 2e-3);
}

#[test]
fn voltage_at_out_of_range_reports_window() {
    let ckt = rc_pulse();
    let result = Simulator::new(&ckt).transient(&opts()).unwrap();
    let err = result.voltage_at("out", 9e-6).unwrap_err();
    match err {
        SpiceError::SampleOutOfRange { t, t_start, t_end } => {
            assert_eq!(t, 9e-6);
            assert_eq!(t_start, 0.0);
            assert!((t_end - 8e-6).abs() < 1e-18);
        }
        other => panic!("expected SampleOutOfRange, got {other}"),
    }
    let err = result.voltage_at("out", -1e-9).unwrap_err();
    assert!(matches!(err, SpiceError::SampleOutOfRange { .. }));
    // In-range queries, including both exact endpoints, still work.
    assert!(result.voltage_at("out", 0.0).is_ok());
    assert!(result.voltage_at("out", 8e-6).is_ok());
}
