//! Lockstep-transient bit-identity: `transient_lockstep` must reproduce
//! the scalar `transient` bit-for-bit per lane, at every supported lane
//! width, including partial tail packs and lanes that fall back scalar.

use dso_num::batch::{backend_with_lanes, BatchBackend};
use dso_spice::circuit::Circuit;
use dso_spice::engine::{transient_lockstep, Simulator, TranOptions};
use dso_spice::mos::{MosGeometry, MosModel};
use dso_spice::waveform::{Pulse, Waveform};

/// An RC divider with a switchable drive — nonlinear enough (MOS pass
/// transistor) that Newton takes several iterations per step.
fn column_like(r_defect: f64, vdd: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    let gate = ckt.node("gate");
    ckt.add_vsource(
        "Vin",
        vin,
        Circuit::GROUND,
        Waveform::Pulse(Pulse {
            v1: 0.0,
            v2: vdd,
            delay: 1e-6,
            rise: 1e-7,
            fall: 1e-7,
            width: 4e-6,
            period: 1e-2,
        }),
    )
    .unwrap();
    ckt.add_vsource("Vg", gate, Circuit::GROUND, Waveform::Dc(vdd))
        .unwrap();
    ckt.add_resistor("Rd", vin, mid, r_defect).unwrap();
    ckt.add_mosfet(
        "M1",
        mid,
        gate,
        out,
        Circuit::GROUND,
        MosModel::default(),
        MosGeometry::new(2e-6, 0.5e-6).unwrap(),
    )
    .unwrap();
    ckt.add_capacitor("Cs", out, Circuit::GROUND, 30e-15)
        .unwrap();
    ckt.add_resistor("Rleak", out, Circuit::GROUND, 1e9)
        .unwrap();
    ckt
}

fn lane_values(m: usize) -> Vec<(f64, f64)> {
    (0..m)
        .map(|i| (1e3 * (i as f64 + 1.0) * 1.7, 2.0 + 0.1 * i as f64))
        .collect()
}

fn assert_lockstep_matches_scalar(lanes: usize, width: usize) {
    let params = lane_values(lanes);
    let circuits: Vec<Circuit> = params.iter().map(|&(r, v)| column_like(r, v)).collect();
    let sims: Vec<Simulator<'_>> = circuits.iter().map(Simulator::new).collect();
    let opts: Vec<TranOptions> = params
        .iter()
        .map(|_| {
            TranOptions::new(6e-6, 5e-8)
                .unwrap()
                .with_ic(vec![("out".to_string(), 0.0)])
        })
        .collect();
    let scalar: Vec<_> = sims
        .iter()
        .zip(&opts)
        .map(|(s, o)| s.transient(o).unwrap())
        .collect();
    let mut backend = backend_with_lanes(width, sims[0].newton_options().clone());
    let batched = transient_lockstep(&mut backend, &sims, &opts);
    for (l, (sc, ba)) in scalar.iter().zip(&batched).enumerate() {
        let ba = ba.as_ref().unwrap_or_else(|e| panic!("lane {l}: {e}"));
        assert_eq!(sc.times(), ba.times(), "lane {l} time grid differs");
        let (vs, vb) = (sc.voltage("out").unwrap(), ba.voltage("out").unwrap());
        for (i, (a, b)) in vs.iter().zip(&vb).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "lane {l} sample {i}: scalar {a:e} vs batched {b:e}"
            );
        }
        assert_eq!(sc.recovery(), ba.recovery(), "lane {l} recovery stats");
    }
}

#[test]
fn lockstep_bit_identical_full_packs() {
    assert_lockstep_matches_scalar(2, 2);
    assert_lockstep_matches_scalar(4, 4);
    assert_lockstep_matches_scalar(8, 8);
}

#[test]
fn lockstep_bit_identical_partial_tails() {
    assert_lockstep_matches_scalar(3, 4);
    assert_lockstep_matches_scalar(5, 4);
    assert_lockstep_matches_scalar(7, 8);
    assert_lockstep_matches_scalar(5, 2);
}

#[test]
fn lockstep_scalar_backend_is_reference() {
    assert_lockstep_matches_scalar(3, 1);
}

#[test]
fn mismatched_newton_options_fall_back_scalar() {
    let ckt = column_like(5e3, 2.5);
    let sims = [Simulator::new(&ckt)];
    let opts = [TranOptions::new(2e-6, 5e-8).unwrap()];
    // A backend with a foreign iteration policy must not be used for the
    // lockstep lanes; the lane still answers, via the scalar path.
    let mut backend = backend_with_lanes(4, dso_num::newton::NewtonOptions::default());
    assert_ne!(
        sims[0].newton_options(),
        backend.options(),
        "test needs a policy mismatch"
    );
    let scalar = sims[0].transient(&opts[0]).unwrap();
    let batched = transient_lockstep(&mut backend, &sims, &opts);
    let got = batched[0].as_ref().unwrap();
    assert_eq!(scalar.voltage("out").unwrap(), got.voltage("out").unwrap());
}
