//! Property-style tests of the circuit simulator against analytic
//! electronics.
//!
//! Driven by the in-tree deterministic [`TestRng`] (seeded, replayable)
//! instead of an external property-testing crate so the suite builds with
//! no registry access.

use dso_num::testing::TestRng;
use dso_spice::circuit::Circuit;
use dso_spice::engine::{Simulator, TranOptions};
use dso_spice::mos::{evaluate, MosGeometry, MosModel};
use dso_spice::units::parse_value;
use dso_spice::waveform::{Pulse, Waveform};

const CASES: usize = 32;

#[test]
fn divider_matches_analytic() {
    let mut rng = TestRng::new(0x2001);
    for _ in 0..CASES {
        let r1 = rng.log_range(100.0, 1e6);
        let r2 = rng.log_range(100.0, 1e6);
        let v = rng.range(0.5, 5.0);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(v))
            .expect("adds");
        ckt.add_resistor("R1", vin, mid, r1).expect("adds");
        ckt.add_resistor("R2", mid, Circuit::GROUND, r2)
            .expect("adds");
        let op = Simulator::new(&ckt).dc_operating_point().expect("solves");
        let expected = v * r2 / (r1 + r2);
        let got = op.voltage("mid").expect("node exists");
        assert!(
            (got - expected).abs() < 1e-6 * expected.max(1.0),
            "{got} vs {expected}"
        );
    }
}

#[test]
fn rc_discharge_matches_exponential() {
    let mut rng = TestRng::new(0x2002);
    for _ in 0..CASES {
        let r = rng.log_range(1e2, 1e5);
        let c = rng.log_range(1e-12, 1e-9);
        let v0 = rng.range(0.5, 3.0);
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, Circuit::GROUND, r)
            .expect("adds");
        ckt.add_capacitor_ic("C1", out, Circuit::GROUND, c, Some(v0))
            .expect("adds");
        let tau = r * c;
        let opts = TranOptions::new(2.0 * tau, tau / 100.0)
            .expect("valid options")
            .with_ic(Vec::new());
        let result = Simulator::new(&ckt).transient(&opts).expect("converges");
        let v_tau = result.voltage_at("out", tau).expect("in range");
        let expected = v0 * (-1.0f64).exp();
        assert!(
            (v_tau - expected).abs() < 0.01 * v0,
            "tau={tau:e}: {v_tau} vs {expected}"
        );
    }
}

#[test]
fn kcl_current_balance() {
    // Two parallel resistors: the source current is the sum of the branch
    // currents.
    let mut rng = TestRng::new(0x2003);
    for _ in 0..CASES {
        let r1 = rng.log_range(1e2, 1e5);
        let r2 = rng.log_range(1e2, 1e5);
        let v = rng.range(0.5, 5.0);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(v))
            .expect("adds");
        ckt.add_resistor("R1", vin, Circuit::GROUND, r1)
            .expect("adds");
        ckt.add_resistor("R2", vin, Circuit::GROUND, r2)
            .expect("adds");
        let op = Simulator::new(&ckt).dc_operating_point().expect("solves");
        let i = op.current("V1").expect("source exists").abs();
        let expected = v / r1 + v / r2;
        // The gmin leak (1 pS per node) adds ~v * 1e-12 A.
        let tol = 1e-9 * expected + 1e-11 * v;
        assert!((i - expected).abs() < tol, "{i} vs {expected}");
    }
}

#[test]
fn mosfet_derivatives_match_finite_difference() {
    let mut rng = TestRng::new(0x2004);
    let model = MosModel::default();
    let g = MosGeometry::new(1e-6, 0.3e-6).expect("valid");
    let h = 1e-6;
    let mut checked = 0;
    while checked < CASES {
        let vgs = rng.range(0.0, 2.4);
        let vds = rng.range(-2.4, 2.4);
        let vbs = rng.range(-1.0, 0.0);
        let temp = rng.range(-33.0, 87.0);
        // Skip points near the vds=0 kink where one-sided behaviour
        // dominates the central difference.
        if vds.abs() <= 1e-3 {
            continue;
        }
        checked += 1;
        let e = evaluate(&model, g, vgs, vds, vbs, temp);
        let gm_fd = (evaluate(&model, g, vgs + h, vds, vbs, temp).ids
            - evaluate(&model, g, vgs - h, vds, vbs, temp).ids)
            / (2.0 * h);
        let gds_fd = (evaluate(&model, g, vgs, vds + h, vbs, temp).ids
            - evaluate(&model, g, vgs, vds - h, vbs, temp).ids)
            / (2.0 * h);
        let scale = gm_fd.abs().max(1e-9);
        assert!(
            (e.gm - gm_fd).abs() / scale < 2e-2,
            "gm {} vs {}",
            e.gm,
            gm_fd
        );
        let scale = gds_fd.abs().max(1e-9);
        assert!(
            (e.gds - gds_fd).abs() / scale < 5e-2,
            "gds {} vs {}",
            e.gds,
            gds_fd
        );
    }
}

#[test]
fn mosfet_current_monotone_in_vgs() {
    let mut rng = TestRng::new(0x2005);
    let model = MosModel::default();
    let g = MosGeometry::new(1e-6, 0.3e-6).expect("valid");
    for _ in 0..CASES {
        let vds = rng.range(0.05, 2.4);
        let temp = rng.range(-33.0, 87.0);
        let mut prev = f64::NEG_INFINITY;
        let mut vgs = 0.0;
        while vgs <= 2.4 {
            let ids = evaluate(&model, g, vgs, vds, 0.0, temp).ids;
            assert!(ids >= prev - 1e-15, "non-monotone at vgs={vgs}");
            prev = ids;
            vgs += 0.05;
        }
    }
}

#[test]
fn pulse_stays_within_levels() {
    let mut rng = TestRng::new(0x2006);
    for _ in 0..CASES {
        let v1 = rng.range(-3.0, 3.0);
        let v2 = rng.range(-3.0, 3.0);
        let t = rng.range(0.0, 500e-9);
        let p = Waveform::Pulse(Pulse {
            v1,
            v2,
            delay: 10e-9,
            rise: 5e-9,
            fall: 5e-9,
            width: 30e-9,
            period: 100e-9,
        });
        let v = p.eval(t);
        let lo = v1.min(v2);
        let hi = v1.max(v2);
        assert!(
            v >= lo - 1e-12 && v <= hi + 1e-12,
            "{v} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn parse_value_scales_correctly() {
    let mut rng = TestRng::new(0x2007);
    for _ in 0..CASES {
        let mantissa = rng.log_range(0.001, 999.0);
        for (suffix, scale) in [
            ("", 1.0),
            ("k", 1e3),
            ("meg", 1e6),
            ("g", 1e9),
            ("m", 1e-3),
            ("u", 1e-6),
            ("n", 1e-9),
            ("p", 1e-12),
            ("f", 1e-15),
        ] {
            let text = format!("{mantissa}{suffix}");
            let parsed = parse_value(&text).expect("valid number");
            let expected = mantissa * scale;
            assert!(
                (parsed - expected).abs() <= 1e-12 * expected.abs(),
                "{text}: {parsed} vs {expected}"
            );
        }
    }
}

#[test]
fn adaptive_matches_fixed_step_on_random_rc() {
    use dso_spice::engine::AdaptiveOptions;
    let mut rng = TestRng::new(0x2008);
    for _ in 0..CASES {
        let r = rng.log_range(1e2, 1e5);
        let c = rng.log_range(1e-12, 1e-10);
        let v0 = rng.range(0.5, 3.0);
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, Circuit::GROUND, r)
            .expect("adds");
        ckt.add_capacitor_ic("C1", out, Circuit::GROUND, c, Some(v0))
            .expect("adds");
        let tau = r * c;
        let sim = Simulator::new(&ckt);
        let fixed = sim
            .transient(
                &TranOptions::new(3.0 * tau, tau / 100.0)
                    .expect("valid")
                    .with_ic(Vec::new()),
            )
            .expect("fixed converges");
        let adaptive = sim
            .transient(
                &TranOptions::new(3.0 * tau, tau / 100.0)
                    .expect("valid")
                    .with_ic(Vec::new())
                    .with_adaptive(AdaptiveOptions {
                        lte_tol: 1e-4 * v0,
                        dt_min: tau / 2000.0,
                        dt_max: tau / 2.0,
                    }),
            )
            .expect("adaptive converges");
        for frac in [0.5, 1.0, 2.0, 2.9] {
            let t = frac * tau;
            let a = adaptive.voltage_at("out", t).expect("in range");
            let f = fixed.voltage_at("out", t).expect("in range");
            assert!((a - f).abs() < 0.01 * v0, "at {frac} tau: {a} vs {f}");
        }
    }
}

#[test]
fn netlist_numeric_round_trip() {
    // Build a deck textually and verify the parsed circuit solves to the
    // analytic answer.
    let mut rng = TestRng::new(0x2009);
    for _ in 0..CASES {
        let r = rng.log_range(1.0, 1e6);
        let v = rng.log_range(0.1, 10.0);
        let deck_text =
            format!("prop deck\nV1 in 0 DC {v:e}\nR1 in out {r:e}\nR2 out 0 {r:e}\n.end\n");
        let deck = dso_spice::netlist::parse(&deck_text).expect("parses");
        let op = Simulator::new(&deck.circuit)
            .dc_operating_point()
            .expect("solves");
        let got = op.voltage("out").expect("node exists");
        assert!((got - v / 2.0).abs() < 1e-6 * v, "{got} vs {}", v / 2.0);
    }
}
