//! Property-based tests of the circuit simulator against analytic
//! electronics.

use dso_spice::circuit::Circuit;
use dso_spice::engine::{Simulator, TranOptions};
use dso_spice::mos::{evaluate, MosGeometry, MosModel};
use dso_spice::units::parse_value;
use dso_spice::waveform::{Pulse, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn divider_matches_analytic(r1 in 100.0f64..1e6, r2 in 100.0f64..1e6, v in 0.5f64..5.0) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(v)).expect("adds");
        ckt.add_resistor("R1", vin, mid, r1).expect("adds");
        ckt.add_resistor("R2", mid, Circuit::GROUND, r2).expect("adds");
        let op = Simulator::new(&ckt).dc_operating_point().expect("solves");
        let expected = v * r2 / (r1 + r2);
        let got = op.voltage("mid").expect("node exists");
        prop_assert!((got - expected).abs() < 1e-6 * expected.max(1.0), "{got} vs {expected}");
    }

    #[test]
    fn rc_discharge_matches_exponential(
        r in 1e2f64..1e5,
        c in 1e-12f64..1e-9,
        v0 in 0.5f64..3.0,
    ) {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, Circuit::GROUND, r).expect("adds");
        ckt.add_capacitor_ic("C1", out, Circuit::GROUND, c, Some(v0)).expect("adds");
        let tau = r * c;
        let opts = TranOptions::new(2.0 * tau, tau / 100.0)
            .expect("valid options")
            .with_ic(Vec::new());
        let result = Simulator::new(&ckt).transient(&opts).expect("converges");
        let v_tau = result.voltage_at("out", tau).expect("in range");
        let expected = v0 * (-1.0f64).exp();
        prop_assert!(
            (v_tau - expected).abs() < 0.01 * v0,
            "tau={tau:e}: {v_tau} vs {expected}"
        );
    }

    #[test]
    fn kcl_current_balance(r1 in 1e2f64..1e5, r2 in 1e2f64..1e5, v in 0.5f64..5.0) {
        // Two parallel resistors: the source current is the sum of the
        // branch currents.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        ckt.add_vsource("V1", vin, Circuit::GROUND, Waveform::Dc(v)).expect("adds");
        ckt.add_resistor("R1", vin, Circuit::GROUND, r1).expect("adds");
        ckt.add_resistor("R2", vin, Circuit::GROUND, r2).expect("adds");
        let op = Simulator::new(&ckt).dc_operating_point().expect("solves");
        let i = op.current("V1").expect("source exists").abs();
        let expected = v / r1 + v / r2;
        // The gmin leak (1 pS per node) adds ~v * 1e-12 A.
        let tol = 1e-9 * expected + 1e-11 * v;
        prop_assert!((i - expected).abs() < tol, "{i} vs {expected}");
    }

    #[test]
    fn mosfet_derivatives_match_finite_difference(
        vgs in 0.0f64..2.4,
        vds in -2.4f64..2.4,
        vbs in -1.0f64..0.0,
        temp in -33.0f64..87.0,
    ) {
        let model = MosModel::default();
        let g = MosGeometry::new(1e-6, 0.3e-6).expect("valid");
        let h = 1e-6;
        let e = evaluate(&model, g, vgs, vds, vbs, temp);
        let gm_fd = (evaluate(&model, g, vgs + h, vds, vbs, temp).ids
            - evaluate(&model, g, vgs - h, vds, vbs, temp).ids) / (2.0 * h);
        let gds_fd = (evaluate(&model, g, vgs, vds + h, vbs, temp).ids
            - evaluate(&model, g, vgs, vds - h, vbs, temp).ids) / (2.0 * h);
        // Skip points exactly at the vds=0 kink where one-sided behaviour
        // dominates the central difference.
        prop_assume!(vds.abs() > 1e-3);
        let scale = gm_fd.abs().max(1e-9);
        prop_assert!((e.gm - gm_fd).abs() / scale < 2e-2, "gm {} vs {}", e.gm, gm_fd);
        let scale = gds_fd.abs().max(1e-9);
        prop_assert!((e.gds - gds_fd).abs() / scale < 5e-2, "gds {} vs {}", e.gds, gds_fd);
    }

    #[test]
    fn mosfet_current_monotone_in_vgs(
        vds in 0.05f64..2.4,
        temp in -33.0f64..87.0,
    ) {
        let model = MosModel::default();
        let g = MosGeometry::new(1e-6, 0.3e-6).expect("valid");
        let mut prev = f64::NEG_INFINITY;
        let mut vgs = 0.0;
        while vgs <= 2.4 {
            let ids = evaluate(&model, g, vgs, vds, 0.0, temp).ids;
            prop_assert!(ids >= prev - 1e-15, "non-monotone at vgs={vgs}");
            prev = ids;
            vgs += 0.05;
        }
    }

    #[test]
    fn pulse_stays_within_levels(
        v1 in -3.0f64..3.0,
        v2 in -3.0f64..3.0,
        t in 0.0f64..500e-9,
    ) {
        let p = Waveform::Pulse(Pulse {
            v1,
            v2,
            delay: 10e-9,
            rise: 5e-9,
            fall: 5e-9,
            width: 30e-9,
            period: 100e-9,
        });
        let v = p.eval(t);
        let lo = v1.min(v2);
        let hi = v1.max(v2);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn parse_value_scales_correctly(mantissa in 0.001f64..999.0) {
        for (suffix, scale) in [
            ("", 1.0), ("k", 1e3), ("meg", 1e6), ("g", 1e9),
            ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
        ] {
            let text = format!("{mantissa}{suffix}");
            let parsed = parse_value(&text).expect("valid number");
            let expected = mantissa * scale;
            prop_assert!(
                (parsed - expected).abs() <= 1e-12 * expected.abs(),
                "{text}: {parsed} vs {expected}"
            );
        }
    }

    #[test]
    fn adaptive_matches_fixed_step_on_random_rc(
        r in 1e2f64..1e5,
        c in 1e-12f64..1e-10,
        v0 in 0.5f64..3.0,
    ) {
        use dso_spice::engine::AdaptiveOptions;
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, Circuit::GROUND, r).expect("adds");
        ckt.add_capacitor_ic("C1", out, Circuit::GROUND, c, Some(v0)).expect("adds");
        let tau = r * c;
        let sim = Simulator::new(&ckt);
        let fixed = sim
            .transient(
                &TranOptions::new(3.0 * tau, tau / 100.0)
                    .expect("valid")
                    .with_ic(Vec::new()),
            )
            .expect("fixed converges");
        let adaptive = sim
            .transient(
                &TranOptions::new(3.0 * tau, tau / 100.0)
                    .expect("valid")
                    .with_ic(Vec::new())
                    .with_adaptive(AdaptiveOptions {
                        lte_tol: 1e-4 * v0,
                        dt_min: tau / 2000.0,
                        dt_max: tau / 2.0,
                    }),
            )
            .expect("adaptive converges");
        for frac in [0.5, 1.0, 2.0, 2.9] {
            let t = frac * tau;
            let a = adaptive.voltage_at("out", t).expect("in range");
            let f = fixed.voltage_at("out", t).expect("in range");
            prop_assert!((a - f).abs() < 0.01 * v0, "at {frac} tau: {a} vs {f}");
        }
    }

    #[test]
    fn netlist_numeric_round_trip(r in 1.0f64..1e6, v in 0.1f64..10.0) {
        // Build a deck textually and verify the parsed circuit solves to
        // the analytic answer.
        let deck_text = format!(
            "prop deck\nV1 in 0 DC {v:e}\nR1 in out {r:e}\nR2 out 0 {r:e}\n.end\n"
        );
        let deck = dso_spice::netlist::parse(&deck_text).expect("parses");
        let op = Simulator::new(&deck.circuit).dc_operating_point().expect("solves");
        let got = op.voltage("out").expect("node exists");
        prop_assert!((got - v / 2.0).abs() < 1e-6 * v, "{got} vs {}", v / 2.0);
    }
}
