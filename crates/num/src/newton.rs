//! A damped Newton–Raphson driver for nonlinear systems.
//!
//! The circuit simulator expresses each DC operating point and each transient
//! time step as a nonlinear system `F(x) = 0` whose Jacobian is the stamped
//! MNA matrix. This module owns the iteration policy — convergence criteria,
//! step damping, iteration budget — so the simulator only supplies the
//! residual/Jacobian evaluation.

use crate::lu::LuFactor;
use crate::matrix::{norm_inf, DMatrix};
use crate::NumError;

/// Residual-reduction ratio below which a reused (stale) LU factorization
/// is considered to still be making progress. A modified-Newton iteration
/// that fails to shrink the residual by at least this factor is "stalled"
/// and triggers a refactor on the next iteration. The ratio is demanding
/// on purpose: a chord iteration against a merely-adequate stale Jacobian
/// contracts linearly (say 2–3x per iteration) and would grind out many
/// cheap-but-numerous back-substitutions where one refactor restores
/// quadratic convergence — profiling the DRAM sweep showed a lenient 0.5
/// ratio more than doubling total Newton iterations once factorizations
/// were retained across time steps. The constant is shared by the scalar
/// solver and the SoA batch lanes so both apply the exact same per-point
/// policy.
pub const REUSE_STALL_RATIO: f64 = 0.1;

/// NaN-safe stall test shared by the scalar solver and the batch lanes:
/// true unless `res_norm` strictly contracted below
/// `REUSE_STALL_RATIO * prev_norm`. A non-finite residual is never
/// "contracting", so a lane that went NaN schedules a refactor instead
/// of riding a stale factorization.
pub(crate) fn reuse_stalled(res_norm: f64, prev_norm: f64) -> bool {
    res_norm.partial_cmp(&(REUSE_STALL_RATIO * prev_norm)) != Some(std::cmp::Ordering::Less)
}

/// A nonlinear system `F(x) = 0` with Jacobian `J(x)`.
///
/// Implementors fill `residual` with `F(x)` and `jacobian` with `∂F/∂x`.
/// Both slices/matrices are pre-sized to [`NonlinearSystem::unknowns`].
pub trait NonlinearSystem {
    /// Number of unknowns.
    fn unknowns(&self) -> usize;

    /// Evaluates the residual `F(x)` into `out`.
    ///
    /// # Errors
    ///
    /// Implementations may fail (e.g. a device model evaluated outside its
    /// domain); the error aborts the Newton iteration.
    fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError>;

    /// Evaluates the Jacobian `J(x)` into `jac` (previously cleared).
    ///
    /// # Errors
    ///
    /// Same contract as [`NonlinearSystem::residual`].
    fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError>;

    /// Clamps a proposed Newton update, returning the allowed step.
    ///
    /// The default implementation rescales the whole step so that its
    /// largest component does not exceed [`NewtonOptions::max_step`]; the
    /// rescaling preserves the Newton direction (which is a descent
    /// direction for the residual norm), so the damped line search still
    /// makes progress. Device-specific limiting (e.g. junction voltage
    /// limiting) can refine this.
    fn limit_step(&self, _x: &[f64], dx: &mut [f64], max_step: f64) {
        let biggest = dx.iter().fold(0.0_f64, |m, d| m.max(d.abs()));
        if biggest > max_step {
            let scale = max_step / biggest;
            for d in dx.iter_mut() {
                *d *= scale;
            }
        }
    }

    /// `true` when [`NonlinearSystem::residual`] may return an approximation
    /// (e.g. device-bypass shortcuts in an MNA system). When this returns
    /// `true`, the solver re-validates every convergence acceptance with
    /// [`NonlinearSystem::residual_exact`] so a bypass tolerance can never
    /// let a falsely converged point through.
    fn residual_is_approximate(&self) -> bool {
        false
    }

    /// Evaluates the *exact* residual `F(x)` into `out`, ignoring any
    /// approximation shortcuts. The default delegates to
    /// [`NonlinearSystem::residual`]; only systems that answer `true` to
    /// [`NonlinearSystem::residual_is_approximate`] need to override it.
    ///
    /// # Errors
    ///
    /// Same contract as [`NonlinearSystem::residual`].
    fn residual_exact(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        self.residual(x, out)
    }
}

/// Iteration policy for [`NewtonSolver`].
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Absolute tolerance on the residual infinity norm.
    pub residual_tol: f64,
    /// Absolute tolerance on the update infinity norm.
    pub step_tol: f64,
    /// Per-component clamp on the Newton update (voltage limiting).
    pub max_step: f64,
    /// Damping factor applied when the residual grows (0 < factor < 1).
    pub damping: f64,
    /// Modified-Newton (Newton-Richardson) factorization reuse: keep the
    /// current LU and do back-substitution-only iterations, refactoring
    /// only when the residual-reduction ratio stalls past
    /// [`REUSE_STALL_RATIO`] or the line search damps the step. The policy
    /// is a deterministic function of the per-point iteration history, so
    /// results are bit-identical at any thread or lane count. `false`
    /// refactors on every iteration (the pre-reuse solver).
    pub lu_reuse: bool,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 100,
            residual_tol: 1e-9,
            step_tol: 1e-9,
            max_step: 0.5,
            damping: 0.5,
            lu_reuse: true,
        }
    }
}

/// Outcome statistics of a successful Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final residual infinity norm.
    pub residual: f64,
    /// Iterations that assembled the Jacobian and refactored the LU.
    pub lu_refactors: usize,
    /// Iterations that reused the previous LU (back-substitution only).
    pub lu_reuses: usize,
}

/// A reusable Newton–Raphson solver.
///
/// # Example
///
/// Solve `x² = 2`:
///
/// ```
/// use dso_num::matrix::DMatrix;
/// use dso_num::newton::{NewtonOptions, NewtonSolver, NonlinearSystem};
///
/// struct Sqrt2;
/// impl NonlinearSystem for Sqrt2 {
///     fn unknowns(&self) -> usize { 1 }
///     fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), dso_num::NumError> {
///         out[0] = x[0] * x[0] - 2.0;
///         Ok(())
///     }
///     fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), dso_num::NumError> {
///         jac[(0, 0)] = 2.0 * x[0];
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// let mut solver = NewtonSolver::new(NewtonOptions::default());
/// let mut x = vec![1.0];
/// let stats = solver.solve(&mut Sqrt2, &mut x)?;
/// assert!((x[0] - 2.0_f64.sqrt()).abs() < 1e-8);
/// assert!(stats.iterations < 40);
/// // Modified-Newton reuse (on by default) trades a few extra cheap
/// // back-substitution iterations for far fewer LU refactors.
/// assert!(stats.lu_reuses > stats.lu_refactors);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NewtonSolver {
    options: NewtonOptions,
    // Scratch buffers reused across calls: once sized for a system, a solve
    // performs zero heap allocations (asserted by `tests/alloc_audit.rs`).
    residual: Vec<f64>,
    trial_residual: Vec<f64>,
    dx: Vec<f64>,
    trial_x: Vec<f64>,
    neg_f: Vec<f64>,
    jac: DMatrix,
    lu: LuFactor,
}

impl NewtonSolver {
    /// Creates a solver with the given iteration policy.
    pub fn new(options: NewtonOptions) -> Self {
        NewtonSolver {
            options,
            residual: Vec::new(),
            trial_residual: Vec::new(),
            dx: Vec::new(),
            trial_x: Vec::new(),
            neg_f: Vec::new(),
            jac: DMatrix::zeros(0, 0),
            lu: LuFactor::empty(),
        }
    }

    /// The solver's iteration policy.
    pub fn options(&self) -> &NewtonOptions {
        &self.options
    }

    /// Evaluates `‖F(x)‖∞` without solving, reusing the solver's residual
    /// scratch (no allocation once warmed). Callers use this to rank
    /// candidate initial guesses — e.g. a warm-start seed against the
    /// previous committed state — before committing to one.
    ///
    /// # Errors
    ///
    /// * [`NumError::ShapeMismatch`] if `x` has the wrong length.
    /// * Any error surfaced by the system's residual evaluation.
    pub fn residual_norm<S: NonlinearSystem>(
        &mut self,
        system: &mut S,
        x: &[f64],
    ) -> Result<f64, NumError> {
        let n = system.unknowns();
        if x.len() != n {
            return Err(NumError::ShapeMismatch {
                expected: format!("point of length {n}"),
                found: format!("length {}", x.len()),
            });
        }
        self.residual.resize(n, 0.0);
        system.residual(x, &mut self.residual)?;
        Ok(norm_inf(&self.residual))
    }

    /// Solves `F(x) = 0` starting from the initial guess in `x`, leaving the
    /// solution in `x`.
    ///
    /// # Errors
    ///
    /// * [`NumError::NoConvergence`] if the iteration budget is exhausted.
    /// * [`NumError::SingularMatrix`] if the Jacobian cannot be factored.
    /// * Any error surfaced by the system's residual/Jacobian evaluation.
    pub fn solve<S: NonlinearSystem>(
        &mut self,
        system: &mut S,
        x: &mut [f64],
    ) -> Result<NewtonStats, NumError> {
        self.solve_impl(system, x, false)
    }

    /// Like [`NewtonSolver::solve`], but — when [`NewtonOptions::lu_reuse`]
    /// is on and the previous solve factored a same-sized system — starts
    /// with a back-substitution-only iteration against the retained LU
    /// instead of refactoring. Callers use this for a follow-up solve whose
    /// Jacobian is known to be close to the previous one (e.g. the
    /// backward-Euler error-estimate solve over the step just accepted).
    /// Falls back to a plain solve when no compatible factorization exists.
    ///
    /// # Errors
    ///
    /// As [`NewtonSolver::solve`].
    pub fn solve_reusing<S: NonlinearSystem>(
        &mut self,
        system: &mut S,
        x: &mut [f64],
    ) -> Result<NewtonStats, NumError> {
        let reuse = self.options.lu_reuse && self.lu.dim() == system.unknowns();
        self.solve_impl(system, x, reuse)
    }

    fn solve_impl<S: NonlinearSystem>(
        &mut self,
        system: &mut S,
        x: &mut [f64],
        start_reusing: bool,
    ) -> Result<NewtonStats, NumError> {
        // Fine-level span + outcome metrics; both compile down to one
        // relaxed atomic load each while observability is off, keeping the
        // warmed solve allocation-free (see `tests/alloc_audit.rs`).
        let span = dso_obs::span_fine("newton.solve");
        let result = self.solve_inner(system, x, start_reusing);
        match &result {
            Ok(stats) => {
                dso_obs::counter!("newton.solves").incr();
                dso_obs::counter!("newton.iterations").add(stats.iterations as u64);
                dso_obs::histogram!(
                    "newton.iterations_per_solve",
                    &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
                )
                .observe(stats.iterations as f64);
                dso_obs::histogram!(
                    "newton.residual_final",
                    &[1e-15, 1e-12, 1e-10, 1e-8, 1e-6, 1e-3, 1.0]
                )
                .observe(stats.residual);
                span.note("iterations", stats.iterations as f64);
            }
            Err(_) => dso_obs::counter!("newton.failed_solves").incr(),
        }
        result
    }

    /// Re-validates a tentative convergence acceptance against the exact
    /// residual when the system's `residual` is approximate. Returns the
    /// refreshed norm (which the caller re-tests); for exact systems the
    /// incoming norm passes straight through with no extra residual call,
    /// preserving the legacy call sequence bit-for-bit.
    fn exact_norm<S: NonlinearSystem>(
        &mut self,
        system: &mut S,
        x: &[f64],
        res_norm: f64,
    ) -> Result<f64, NumError> {
        if !system.residual_is_approximate() {
            return Ok(res_norm);
        }
        system.residual_exact(x, &mut self.residual)?;
        let exact = norm_inf(&self.residual);
        if !exact.is_finite() {
            return Err(NumError::NonFinite {
                context: "exact Newton residual at acceptance".into(),
            });
        }
        Ok(exact)
    }

    fn solve_inner<S: NonlinearSystem>(
        &mut self,
        system: &mut S,
        x: &mut [f64],
        start_reusing: bool,
    ) -> Result<NewtonStats, NumError> {
        let n = system.unknowns();
        if x.len() != n {
            return Err(NumError::ShapeMismatch {
                expected: format!("initial guess of length {n}"),
                found: format!("length {}", x.len()),
            });
        }
        self.residual.resize(n, 0.0);
        self.trial_residual.resize(n, 0.0);
        self.dx.resize(n, 0.0);
        self.trial_x.resize(n, 0.0);
        self.neg_f.resize(n, 0.0);
        if self.jac.rows() != n {
            self.jac = DMatrix::zeros(n, n);
        }

        system.residual(x, &mut self.residual)?;
        let mut res_norm = norm_inf(&self.residual);
        if !res_norm.is_finite() {
            return Err(NumError::NonFinite {
                context: "initial Newton residual".into(),
            });
        }

        let mut lu_refactors = 0_usize;
        let mut lu_reuses = 0_usize;
        // Modified-Newton policy state. Iteration 0 always refactors unless
        // the caller explicitly opted into cross-solve reuse.
        let mut refactor_pending = !start_reusing;
        for iter in 0..self.options.max_iterations {
            if res_norm < self.options.residual_tol {
                res_norm = self.exact_norm(system, x, res_norm)?;
                if res_norm < self.options.residual_tol {
                    return Ok(NewtonStats {
                        iterations: iter,
                        residual: res_norm,
                        lu_refactors,
                        lu_reuses,
                    });
                }
                // The bypass-approximated residual lied; iterate on with the
                // refreshed exact residual and a conservative refactor.
                refactor_pending = true;
            }
            if refactor_pending {
                self.jac.clear();
                system.jacobian(x, &mut self.jac)?;
                self.lu.refactor_into(&self.jac)?;
                lu_refactors += 1;
                dso_obs::counter!("newton.lu_refactors").incr();
            } else {
                lu_reuses += 1;
                dso_obs::counter!("newton.lu_reuses").incr();
            }
            // Residual trajectory: where the iterate stood before this step.
            dso_obs::histogram!(
                "newton.residual_trajectory",
                &[1e-15, 1e-12, 1e-10, 1e-8, 1e-6, 1e-3, 1.0]
            )
            .observe(res_norm);
            // Newton step: J dx = -F (J possibly stale under reuse).
            for (o, r) in self.neg_f.iter_mut().zip(&self.residual) {
                *o = -r;
            }
            self.lu.solve_in_place(&self.neg_f, &mut self.dx);
            system.limit_step(x, &mut self.dx, self.options.max_step);

            // Damped line search: halve the step while the residual grows.
            let prev_norm = res_norm;
            let mut alpha = 1.0;
            let mut accepted = false;
            for _ in 0..12 {
                for (i, xi) in x.iter().enumerate().take(n) {
                    self.trial_x[i] = xi + alpha * self.dx[i];
                }
                system.residual(&self.trial_x, &mut self.trial_residual)?;
                let trial_norm = norm_inf(&self.trial_residual);
                if trial_norm.is_finite() && (trial_norm < res_norm || alpha <= 1e-3) {
                    x.copy_from_slice(&self.trial_x);
                    self.residual.copy_from_slice(&self.trial_residual);
                    res_norm = trial_norm;
                    accepted = true;
                    break;
                }
                alpha *= self.options.damping;
            }
            if !accepted {
                // Accept the most damped step anyway; some circuits need to
                // pass through a residual hump (latch regeneration).
                x.copy_from_slice(&self.trial_x);
                self.residual.copy_from_slice(&self.trial_residual);
                res_norm = norm_inf(&self.residual);
            }
            let step_norm = norm_inf(&self.dx) * alpha;
            if step_norm < self.options.step_tol && res_norm < self.options.residual_tol * 1e3 {
                let exact = self.exact_norm(system, x, res_norm)?;
                if exact < self.options.residual_tol * 1e3 {
                    return Ok(NewtonStats {
                        iterations: iter + 1,
                        residual: exact,
                        lu_refactors,
                        lu_reuses,
                    });
                }
                res_norm = exact;
                refactor_pending = true;
                continue;
            }
            // Keep reusing the factorization only while full steps are
            // accepted and the residual keeps contracting; damping, a
            // rejected search, or a stall all demand a fresh Jacobian.
            let stalled = reuse_stalled(res_norm, prev_norm);
            refactor_pending = !self.options.lu_reuse || alpha < 1.0 || !accepted || stalled;
        }
        if res_norm < self.options.residual_tol {
            res_norm = self.exact_norm(system, x, res_norm)?;
            if res_norm < self.options.residual_tol {
                return Ok(NewtonStats {
                    iterations: self.options.max_iterations,
                    residual: res_norm,
                    lu_refactors,
                    lu_reuses,
                });
            }
        }
        Err(NumError::NoConvergence {
            iterations: self.options.max_iterations,
            residual: res_norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D Rosenbrock-style gradient system: F(x, y) = (x - 1, 10 (y - x^2)).
    struct TwoDim;
    impl NonlinearSystem for TwoDim {
        fn unknowns(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
            out[0] = x[0] - 1.0;
            out[1] = 10.0 * (x[1] - x[0] * x[0]);
            Ok(())
        }
        fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
            jac[(0, 0)] = 1.0;
            jac[(1, 0)] = -20.0 * x[0];
            jac[(1, 1)] = 10.0;
            Ok(())
        }
    }

    #[test]
    fn converges_on_smooth_system() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x = vec![-1.0, 2.0];
        let stats = solver.solve(&mut TwoDim, &mut x).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-7, "{x:?}");
        assert!((x[1] - 1.0).abs() < 1e-6, "{x:?}");
        assert!(stats.residual < 1e-6);
    }

    /// Exponential diode-like residual that needs limiting: F = e^(20x) - 1.
    struct StiffExp;
    impl NonlinearSystem for StiffExp {
        fn unknowns(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
            out[0] = (20.0 * x[0]).exp() - 1.0;
            Ok(())
        }
        fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
            jac[(0, 0)] = 20.0 * (20.0 * x[0]).exp();
            Ok(())
        }
    }

    #[test]
    fn stiff_exponential_needs_damping() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            residual_tol: 1e-8,
            ..NewtonOptions::default()
        });
        let mut x = vec![2.0];
        solver.solve(&mut StiffExp, &mut x).unwrap();
        assert!(x[0].abs() < 1e-8, "{x:?}");
    }

    struct NoSolution;
    impl NonlinearSystem for NoSolution {
        fn unknowns(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
            out[0] = x[0] * x[0] + 1.0; // never zero
            Ok(())
        }
        fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
            jac[(0, 0)] = if x[0].abs() < 1e-12 { 1e-6 } else { 2.0 * x[0] };
            Ok(())
        }
    }

    #[test]
    fn reports_no_convergence() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_iterations: 30,
            ..NewtonOptions::default()
        });
        let mut x = vec![3.0];
        let err = solver.solve(&mut NoSolution, &mut x).unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }));
    }

    #[test]
    fn guess_length_checked() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x = vec![0.0; 3];
        assert!(solver.solve(&mut TwoDim, &mut x).is_err());
    }

    #[test]
    fn solver_is_reusable() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        for start in [-2.0, 0.5, 4.0] {
            let mut x = vec![start, start];
            solver.solve(&mut TwoDim, &mut x).unwrap();
            assert!((x[0] - 1.0).abs() < 1e-6);
        }
    }
}
