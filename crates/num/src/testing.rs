//! Deterministic pseudo-random generation for tests.
//!
//! The workspace runs its test suite in offline environments where pulling
//! external crates (`rand`, `proptest`) is not possible, and the
//! fault-injection harness needs *reproducible* randomness anyway: a failed
//! case must replay bit-for-bit from its seed. [`TestRng`] is a SplitMix64
//! generator — 64 bits of state, full period, passes the statistical checks
//! that matter for sampling test inputs — with convenience samplers for the
//! ranges the property tests use.
//!
//! This module is part of the public API (not `cfg(test)`-gated) so that
//! every crate in the workspace can drive its own property-style tests from
//! it as a dev-dependency.

/// A deterministic SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use dso_num::testing::TestRng;
///
/// let mut rng = TestRng::new(42);
/// let a = rng.range(0.0, 1.0);
/// let b = rng.range(0.0, 1.0);
/// assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
/// // Reseeding replays the exact sequence.
/// let mut replay = TestRng::new(42);
/// assert_eq!(replay.range(0.0, 1.0), a);
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed. Equal seeds produce equal
    /// sequences.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 uniformly distributed mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A log-uniform `f64` in `[lo, hi)`; both bounds must be positive.
    /// Matches the decade-spanning sweeps (resistances, capacitances) the
    /// electrical tests sample.
    pub fn log_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo > 0.0 && hi > lo);
        (self.range(lo.ln(), hi.ln())).exp()
    }

    /// A uniform `usize` in `[0, n)`. `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn index_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.index(hi - lo)
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `n` uniform values in `[lo, hi)`.
    pub fn vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.range(lo, hi)).collect()
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = rng.range(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&v));
            let l = rng.log_range(1e2, 1e8);
            assert!((1e2..1e8).contains(&l));
            let i = rng.index_range(3, 9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn next_f64_covers_unit_interval() {
        let mut rng = TestRng::new(11);
        let vals: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        assert!(vals.iter().any(|&v| v < 0.1));
        assert!(vals.iter().any(|&v| v > 0.9));
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn bools_are_mixed() {
        let mut rng = TestRng::new(5);
        let trues = (0..1000).filter(|_| rng.next_bool()).count();
        assert!((300..700).contains(&trues), "{trues}");
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut rng = TestRng::new(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
