//! Sampled curves: interpolation and intersection.
//!
//! The fault-analysis layer works with curves sampled at discrete defect
//! resistances — e.g. the sense-amplifier threshold `Vsa(R)` and the write
//! settlement voltage `Vw0(R)`. The border resistance is the abscissa where
//! two such curves intersect, so this module provides a strictly-increasing
//! sampled curve type with linear interpolation and pairwise intersection.

use crate::NumError;

/// A piecewise-linear curve over strictly increasing abscissae.
///
/// # Example
///
/// ```
/// use dso_num::interp::Curve;
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// let c = Curve::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(c.eval(0.5)?, 5.0);
/// assert_eq!(c.eval(1.5)?, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Curve {
    /// Builds a curve from matching abscissa/ordinate vectors.
    ///
    /// # Errors
    ///
    /// * [`NumError::ShapeMismatch`] if lengths differ.
    /// * [`NumError::InvalidArgument`] if fewer than two points are given or
    ///   the abscissae are not strictly increasing.
    /// * [`NumError::NonFinite`] if any coordinate is NaN/inf.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, NumError> {
        if x.len() != y.len() {
            return Err(NumError::ShapeMismatch {
                expected: format!("{} ordinates", x.len()),
                found: format!("{}", y.len()),
            });
        }
        if x.len() < 2 {
            return Err(NumError::InvalidArgument(
                "curve needs at least two points".into(),
            ));
        }
        if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
            return Err(NumError::NonFinite {
                context: "curve coordinates".into(),
            });
        }
        if x.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumError::InvalidArgument(
                "curve abscissae must be strictly increasing".into(),
            ));
        }
        Ok(Curve { x, y })
    }

    /// Builds a curve from `(x, y)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`Curve::new`].
    pub fn from_points(points: &[(f64, f64)]) -> Result<Self, NumError> {
        let (x, y) = points.iter().copied().unzip();
        Curve::new(x, y)
    }

    /// The sampled abscissae.
    pub fn xs(&self) -> &[f64] {
        &self.x
    }

    /// The sampled ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.y
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Always `false`: a valid curve has at least two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Domain of the curve as `(min_x, max_x)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], *self.x.last().expect("curve is non-empty"))
    }

    /// Linear interpolation at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if `x` is outside the domain.
    pub fn eval(&self, x: f64) -> Result<f64, NumError> {
        let (lo, hi) = self.domain();
        if x < lo || x > hi {
            return Err(NumError::InvalidArgument(format!(
                "eval at {x} outside curve domain [{lo}, {hi}]"
            )));
        }
        let idx = match self
            .x
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite coordinates"))
        {
            Ok(i) => return Ok(self.y[i]),
            Err(i) => i,
        };
        let (x0, x1) = (self.x[idx - 1], self.x[idx]);
        let (y0, y1) = (self.y[idx - 1], self.y[idx]);
        Ok(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// Clamped evaluation: `x` outside the domain evaluates to the nearest
    /// endpoint's ordinate.
    pub fn eval_clamped(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        let xc = x.clamp(lo, hi);
        self.eval(xc).expect("clamped abscissa is in domain")
    }

    /// All intersection abscissae between `self` and `other`, restricted to
    /// the overlap of their domains, in increasing order.
    ///
    /// Tangential touching at a shared sample point is reported once.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if the domains do not overlap.
    pub fn intersections(&self, other: &Curve) -> Result<Vec<f64>, NumError> {
        let (a_lo, a_hi) = self.domain();
        let (b_lo, b_hi) = other.domain();
        let lo = a_lo.max(b_lo);
        let hi = a_hi.min(b_hi);
        if lo >= hi {
            return Err(NumError::InvalidArgument(format!(
                "curve domains [{a_lo},{a_hi}] and [{b_lo},{b_hi}] do not overlap"
            )));
        }
        // Merge breakpoints of both curves within the overlap.
        let mut grid: Vec<f64> = self
            .x
            .iter()
            .chain(other.x.iter())
            .copied()
            .filter(|&v| v >= lo && v <= hi)
            .collect();
        grid.push(lo);
        grid.push(hi);
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        grid.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * a.abs().max(1.0));

        let mut roots = Vec::new();
        let diff = |x: f64| -> f64 { self.eval_clamped(x) - other.eval_clamped(x) };
        for w in grid.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            let (d0, d1) = (diff(x0), diff(x1));
            if d0 == 0.0 {
                push_unique(&mut roots, x0);
            }
            if d0 * d1 < 0.0 {
                // Both curves are linear on this sub-interval, so the
                // difference is linear: closed-form root.
                let x = x0 + (x1 - x0) * d0 / (d0 - d1);
                push_unique(&mut roots, x);
            }
        }
        let last = *grid.last().expect("grid is non-empty");
        if diff(last) == 0.0 {
            push_unique(&mut roots, last);
        }
        Ok(roots)
    }

    /// The first intersection with `other`, if any.
    ///
    /// # Errors
    ///
    /// Same as [`Curve::intersections`].
    pub fn first_intersection(&self, other: &Curve) -> Result<Option<f64>, NumError> {
        Ok(self.intersections(other)?.first().copied())
    }
}

fn push_unique(roots: &mut Vec<f64>, x: f64) {
    let tol = 1e-12 * x.abs().max(1.0);
    if roots.last().is_none_or(|&last| (x - last).abs() > tol) {
        roots.push(x);
    }
}

/// Linear interpolation between two points.
///
/// # Example
///
/// ```
/// assert_eq!(dso_num::interp::lerp(0.0, 10.0, 0.25), 2.5);
/// ```
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Generates `n` logarithmically spaced values in `[lo, hi]`.
///
/// # Errors
///
/// Returns [`NumError::InvalidArgument`] if `n < 2`, `lo <= 0` or
/// `hi <= lo`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), dso_num::NumError> {
/// let pts = dso_num::interp::logspace(1.0, 100.0, 3)?;
/// assert_eq!(pts.len(), 3);
/// assert!((pts[1] - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn logspace(lo: f64, hi: f64, n: usize) -> Result<Vec<f64>, NumError> {
    if n < 2 {
        return Err(NumError::InvalidArgument("logspace: n must be >= 2".into()));
    }
    if lo <= 0.0 || hi <= lo {
        return Err(NumError::InvalidArgument(format!(
            "logspace: need 0 < lo < hi, got [{lo}, {hi}]"
        )));
    }
    let (l0, l1) = (lo.ln(), hi.ln());
    Ok((0..n)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp())
        .collect())
}

/// Generates `n` linearly spaced values in `[lo, hi]`.
///
/// # Errors
///
/// Returns [`NumError::InvalidArgument`] if `n < 2` or `hi <= lo`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Result<Vec<f64>, NumError> {
    if n < 2 {
        return Err(NumError::InvalidArgument("linspace: n must be >= 2".into()));
    }
    if hi <= lo {
        return Err(NumError::InvalidArgument(format!(
            "linspace: need lo < hi, got [{lo}, {hi}]"
        )));
    }
    Ok((0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates() {
        let c = Curve::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert_eq!(c.eval(1.0).unwrap(), 2.0);
        assert_eq!(c.eval(0.0).unwrap(), 0.0);
        assert_eq!(c.eval(2.0).unwrap(), 4.0);
    }

    #[test]
    fn eval_rejects_out_of_domain() {
        let c = Curve::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        assert!(c.eval(-0.1).is_err());
        assert!(c.eval(1.1).is_err());
        assert_eq!(c.eval_clamped(5.0), 1.0);
        assert_eq!(c.eval_clamped(-5.0), 0.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(Curve::new(vec![0.0], vec![1.0]).is_err());
        assert!(Curve::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Curve::new(vec![1.0, 0.5], vec![1.0, 2.0]).is_err());
        assert!(Curve::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Curve::new(vec![0.0, f64::NAN], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn single_crossing() {
        let rising = Curve::new(vec![0.0, 10.0], vec![0.0, 10.0]).unwrap();
        let falling = Curve::new(vec![0.0, 10.0], vec![8.0, -2.0]).unwrap();
        let roots = rising.intersections(&falling).unwrap();
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_crossings() {
        // Zig-zag across a flat line at y = 0.5.
        let zig = Curve::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        let flat = Curve::new(vec![0.0, 3.0], vec![0.5, 0.5]).unwrap();
        let roots = zig.intersections(&flat).unwrap();
        assert_eq!(roots.len(), 3, "{roots:?}");
        assert!((roots[0] - 0.5).abs() < 1e-12);
        assert!((roots[1] - 1.5).abs() < 1e-12);
        assert!((roots[2] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn touching_at_sample_point_counted_once() {
        let a = Curve::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
        let b = Curve::new(vec![0.0, 2.0], vec![1.0, 1.0]).unwrap();
        let roots = a.intersections(&b).unwrap();
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_domains_error() {
        let a = Curve::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let b = Curve::new(vec![2.0, 3.0], vec![0.0, 1.0]).unwrap();
        assert!(a.intersections(&b).is_err());
    }

    #[test]
    fn no_intersection_returns_empty() {
        let a = Curve::new(vec![0.0, 1.0], vec![0.0, 0.5]).unwrap();
        let b = Curve::new(vec![0.0, 1.0], vec![1.0, 2.0]).unwrap();
        assert!(a.intersections(&b).unwrap().is_empty());
        assert_eq!(a.first_intersection(&b).unwrap(), None);
    }

    #[test]
    fn partial_domain_overlap() {
        let a = Curve::new(vec![0.0, 4.0], vec![0.0, 4.0]).unwrap();
        let b = Curve::new(vec![2.0, 6.0], vec![4.0, 0.0]).unwrap();
        let roots = a.intersections(&b).unwrap();
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn logspace_spacing() {
        let pts = logspace(1e3, 1e6, 4).unwrap();
        assert!((pts[0] - 1e3).abs() < 1e-6);
        assert!((pts[3] - 1e6).abs() < 1e-3);
        let r1 = pts[1] / pts[0];
        let r2 = pts[2] / pts[1];
        assert!((r1 - r2).abs() < 1e-9, "geometric spacing");
    }

    #[test]
    fn linspace_endpoints() {
        let pts = linspace(-1.0, 1.0, 5).unwrap();
        assert_eq!(pts, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn spacing_validation() {
        assert!(logspace(0.0, 1.0, 3).is_err());
        assert!(logspace(1.0, 1.0, 3).is_err());
        assert!(logspace(1.0, 2.0, 1).is_err());
        assert!(linspace(1.0, 0.0, 3).is_err());
    }
}
