//! Error type shared by the numerical routines.

use std::fmt;

/// Errors produced by the numerical kernel.
///
/// Every fallible routine in this crate returns `Result<_, NumError>` so that
/// callers (the circuit simulator, the analysis layer) can propagate failures
/// with `?` and report the precise numerical reason for an aborted
/// simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// A matrix had an unexpected shape (e.g. non-square input to LU, or a
    /// right-hand side whose length does not match the matrix dimension).
    ShapeMismatch {
        /// What the routine expected, e.g. `"square matrix"`.
        expected: String,
        /// What it received, e.g. `"3x4"`.
        found: String,
    },
    /// LU factorization hit a pivot whose magnitude is below the
    /// singularity threshold; the matrix is singular or numerically so.
    SingularMatrix {
        /// Elimination column at which the zero pivot appeared.
        column: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// Newton–Raphson failed to converge within the iteration budget.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// A root-finding bracket did not actually bracket a root / transition.
    InvalidBracket {
        /// Lower end of the bracket.
        lo: f64,
        /// Upper end of the bracket.
        hi: f64,
    },
    /// An argument was out of its documented domain.
    InvalidArgument(String),
    /// A NaN or infinity appeared where a finite value was required.
    NonFinite {
        /// Description of where the non-finite value was observed.
        context: String,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            NumError::SingularMatrix { column, pivot } => {
                write!(
                    f,
                    "singular matrix: pivot {pivot:.3e} at elimination column {column}"
                )
            }
            NumError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::InvalidBracket { lo, hi } => {
                write!(f, "invalid bracket [{lo:.6e}, {hi:.6e}]")
            }
            NumError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NumError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = NumError::ShapeMismatch {
            expected: "square matrix".into(),
            found: "3x4".into(),
        };
        assert_eq!(
            err.to_string(),
            "shape mismatch: expected square matrix, found 3x4"
        );
    }

    #[test]
    fn display_singular() {
        let err = NumError::SingularMatrix {
            column: 2,
            pivot: 1e-18,
        };
        assert!(err.to_string().contains("column 2"));
    }

    #[test]
    fn display_no_convergence() {
        let err = NumError::NoConvergence {
            iterations: 50,
            residual: 0.5,
        };
        assert!(err.to_string().contains("50 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<NumError>();
    }
}
