//! Deterministic fault injection for nonlinear solves.
//!
//! Large simulation campaigns (hundreds of transients per result plane)
//! must survive individual solver failures, and the recovery paths that
//! make that possible are exactly the code that ordinary tests never
//! reach: a healthy circuit simply converges. This module makes solver
//! failures *reproducible on demand*:
//!
//! * [`FaultKind`] — the failure modes a Newton solve can hit in the wild
//!   (singular Jacobian, NaN residual, plain divergence).
//! * [`FaultPlan`] — a schedule mapping *solve ordinals* (the how-many-th
//!   Newton solve attempted through the plan) to faults. Injection by
//!   ordinal keeps chaos runs deterministic: the n-th solve fails, every
//!   retry is a fresh ordinal, and recovery succeeds exactly when the
//!   retry escapes the scheduled window.
//! * [`ChaosSystem`] — a [`NonlinearSystem`] wrapper that corrupts the
//!   residual/Jacobian of the solve it was armed for and passes everything
//!   else through untouched.
//!
//! The simulator layers above (`dso-spice`, `dso-dram`, `dso-core`) thread
//! a plan down to every Newton solve, so tests can assert that each rung
//! of a recovery ladder triggers, recovers, and reports correctly.

use crate::matrix::DMatrix;
use crate::newton::NonlinearSystem;
use crate::NumError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A failure mode to inject into a Newton solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The Jacobian evaluates to all zeros: LU factorization fails with a
    /// singular-matrix error on the first iteration.
    SingularJacobian,
    /// The residual evaluates to NaN: the solve aborts with a non-finite
    /// error immediately.
    NanResidual,
    /// The residual is pinned at a huge constant that no step reduces: the
    /// solver exhausts its iteration budget and reports no convergence.
    ForcedDivergence,
}

impl FaultKind {
    /// All fault kinds, for exhaustive test sweeps.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::SingularJacobian,
        FaultKind::NanResidual,
        FaultKind::ForcedDivergence,
    ];
}

/// When a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Window {
    /// Exactly one solve ordinal.
    At(usize),
    /// A half-open ordinal range `[from, to)`.
    Span(usize, usize),
    /// Every solve.
    Always,
}

impl Window {
    fn contains(&self, ordinal: usize) -> bool {
        match *self {
            Window::At(k) => ordinal == k,
            Window::Span(from, to) => (from..to).contains(&ordinal),
            Window::Always => true,
        }
    }
}

/// A failure mode to inject into persistent-store I/O.
///
/// Durability code is exactly like recovery code: the paths that matter —
/// a process killed mid-append, a disk that lies about flushing, a bit
/// rotting in a cold file — never run in a healthy test environment.
/// These faults make them reproducible on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// An append persists only a prefix of the record before the write
    /// "fails" — the on-disk image a process killed mid-write leaves
    /// behind (a torn tail).
    ShortWrite,
    /// The post-write flush reports an error; the data may or may not be
    /// durable.
    FlushFail,
    /// One bit of the bytes read back from disk is flipped, as silent
    /// media corruption would.
    BitFlipRead,
}

impl IoFaultKind {
    /// All I/O fault kinds, for exhaustive test sweeps.
    pub const ALL: [IoFaultKind; 3] = [
        IoFaultKind::ShortWrite,
        IoFaultKind::FlushFail,
        IoFaultKind::BitFlipRead,
    ];
}

/// A deterministic schedule of solver faults, keyed by solve ordinal.
///
/// The plan counts every solve that is armed through it (via
/// [`FaultPlan::begin_solve`]); ordinals start at 0. Cloning a plan clones
/// the current counter value — a cloned plan replays independently. The
/// counter is atomic so a plan can be shared across campaign worker
/// threads; each sweep point clones its own plan, so ordinals never
/// interleave between points.
///
/// I/O faults ([`IoFaultKind`]) are scheduled on an *independent* ordinal
/// axis counted by [`FaultPlan::begin_io`]: the n-th store operation armed
/// through the plan, unrelated to how many Newton solves ran before it.
///
/// # Example
///
/// ```
/// use dso_num::chaos::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new().inject_at(2, FaultKind::NanResidual);
/// assert_eq!(plan.begin_solve(), None); // ordinal 0
/// assert_eq!(plan.begin_solve(), None); // ordinal 1
/// assert_eq!(plan.begin_solve(), Some(FaultKind::NanResidual));
/// assert_eq!(plan.begin_solve(), None); // recovered
/// assert_eq!(plan.solves_started(), 4);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    entries: Vec<(Window, FaultKind)>,
    io_entries: Vec<(Window, IoFaultKind)>,
    counter: AtomicUsize,
    io_counter: AtomicUsize,
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan {
            entries: self.entries.clone(),
            io_entries: self.io_entries.clone(),
            counter: AtomicUsize::new(self.counter.load(Ordering::Relaxed)),
            io_counter: AtomicUsize::new(self.io_counter.load(Ordering::Relaxed)),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan that fails *every* solve with `kind` — used to kill whole
    /// simulation points so that campaign-level degradation paths can be
    /// exercised.
    pub fn always(kind: FaultKind) -> Self {
        FaultPlan {
            entries: vec![(Window::Always, kind)],
            ..FaultPlan::default()
        }
    }

    /// A plan that fails *every* store operation with `kind`.
    pub fn io_always(kind: IoFaultKind) -> Self {
        FaultPlan {
            io_entries: vec![(Window::Always, kind)],
            ..FaultPlan::default()
        }
    }

    /// Schedules `kind` at one store-operation ordinal.
    pub fn inject_io_at(mut self, ordinal: usize, kind: IoFaultKind) -> Self {
        self.io_entries.push((Window::At(ordinal), kind));
        self
    }

    /// Schedules `kind` for every store-operation ordinal in `[from, to)`.
    pub fn inject_io_span(mut self, from: usize, to: usize, kind: IoFaultKind) -> Self {
        self.io_entries.push((Window::Span(from, to), kind));
        self
    }

    /// Schedules `kind` at one solve ordinal.
    pub fn inject_at(mut self, ordinal: usize, kind: FaultKind) -> Self {
        self.entries.push((Window::At(ordinal), kind));
        self
    }

    /// Schedules `kind` for every ordinal in `[from, to)`. Wide windows
    /// defeat shallow retries and force later recovery rungs.
    pub fn inject_span(mut self, from: usize, to: usize, kind: FaultKind) -> Self {
        self.entries.push((Window::Span(from, to), kind));
        self
    }

    /// Arms the next solve: advances the ordinal counter and returns the
    /// fault scheduled for it, if any.
    pub fn begin_solve(&self) -> Option<FaultKind> {
        let ordinal = self.counter.fetch_add(1, Ordering::Relaxed);
        self.fault_at(ordinal)
    }

    /// The fault scheduled at `ordinal`, if any (does not advance the
    /// counter).
    pub fn fault_at(&self, ordinal: usize) -> Option<FaultKind> {
        self.entries
            .iter()
            .find(|(w, _)| w.contains(ordinal))
            .map(|&(_, k)| k)
    }

    /// Arms the next store operation: advances the I/O ordinal counter and
    /// returns the fault scheduled for it, if any.
    pub fn begin_io(&self) -> Option<IoFaultKind> {
        let ordinal = self.io_counter.fetch_add(1, Ordering::Relaxed);
        self.io_fault_at(ordinal)
    }

    /// The I/O fault scheduled at `ordinal`, if any (does not advance the
    /// counter).
    pub fn io_fault_at(&self, ordinal: usize) -> Option<IoFaultKind> {
        self.io_entries
            .iter()
            .find(|(w, _)| w.contains(ordinal))
            .map(|&(_, k)| k)
    }

    /// Number of solves armed through this plan so far.
    pub fn solves_started(&self) -> usize {
        self.counter.load(Ordering::Relaxed)
    }

    /// Number of store operations armed through this plan so far.
    pub fn io_started(&self) -> usize {
        self.io_counter.load(Ordering::Relaxed)
    }

    /// Resets the ordinal counters (solve and I/O) to zero.
    pub fn reset(&self) {
        self.counter.store(0, Ordering::Relaxed);
        self.io_counter.store(0, Ordering::Relaxed);
    }

    /// `true` if the plan schedules no solver faults. I/O-only plans are
    /// "empty" to the solver layers, which lets a store-fault plan ride
    /// through campaign plumbing without arming any Newton solve.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if the plan schedules no I/O faults.
    pub fn io_is_empty(&self) -> bool {
        self.io_entries.is_empty()
    }
}

/// A [`NonlinearSystem`] wrapper carrying the fault (if any) armed for one
/// Newton solve.
///
/// Create one per solve with [`ChaosSystem::arm`]; the wrapper consumes
/// one ordinal from the plan at construction. With no fault scheduled it
/// is a transparent pass-through.
pub struct ChaosSystem<'a, S: NonlinearSystem> {
    inner: &'a mut S,
    fault: Option<FaultKind>,
}

impl<'a, S: NonlinearSystem> ChaosSystem<'a, S> {
    /// Wraps `inner` for the next solve scheduled by `plan`.
    pub fn arm(inner: &'a mut S, plan: &FaultPlan) -> Self {
        ChaosSystem {
            inner,
            fault: plan.begin_solve(),
        }
    }

    /// Wraps `inner` with an explicit fault (testing the wrapper itself).
    pub fn with_fault(inner: &'a mut S, fault: Option<FaultKind>) -> Self {
        ChaosSystem { inner, fault }
    }

    /// The fault armed for this solve, if any.
    pub fn fault(&self) -> Option<FaultKind> {
        self.fault
    }
}

impl<S: NonlinearSystem> NonlinearSystem for ChaosSystem<'_, S> {
    fn unknowns(&self) -> usize {
        self.inner.unknowns()
    }

    fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        match self.fault {
            Some(FaultKind::NanResidual) => {
                out.fill(f64::NAN);
                Ok(())
            }
            Some(FaultKind::ForcedDivergence) => {
                // Finite but enormous and x-independent: every line-search
                // trial sees the same norm, so the iteration budget drains.
                out.fill(1e12);
                Ok(())
            }
            _ => self.inner.residual(x, out),
        }
    }

    fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
        match self.fault {
            Some(FaultKind::SingularJacobian) => {
                // Leave the (pre-cleared) matrix at zero: the LU pivot
                // search finds nothing and reports singularity.
                Ok(())
            }
            Some(FaultKind::ForcedDivergence) => {
                // A well-conditioned identity keeps the factorization cheap
                // while the pinned residual prevents convergence.
                for i in 0..jac.rows() {
                    jac[(i, i)] += 1.0;
                }
                Ok(())
            }
            _ => self.inner.jacobian(x, jac),
        }
    }

    fn limit_step(&self, x: &[f64], dx: &mut [f64], max_step: f64) {
        self.inner.limit_step(x, dx, max_step);
    }

    fn residual_is_approximate(&self) -> bool {
        // Injected residual faults are exact by construction (they replace
        // the model entirely); otherwise defer to the wrapped system so
        // bypass-approximated residuals still get their exact recheck.
        self.fault.is_none() && self.inner.residual_is_approximate()
    }

    fn residual_exact(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        match self.fault {
            Some(_) => self.residual(x, out),
            None => self.inner.residual_exact(x, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newton::{NewtonOptions, NewtonSolver};

    /// x^2 = 4, converges in a handful of iterations.
    struct Square;
    impl NonlinearSystem for Square {
        fn unknowns(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
            out[0] = x[0] * x[0] - 4.0;
            Ok(())
        }
        fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
            jac[(0, 0)] = 2.0 * x[0];
            Ok(())
        }
    }

    fn solve_armed(plan: &FaultPlan) -> Result<f64, NumError> {
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_iterations: 50,
            ..NewtonOptions::default()
        });
        let mut sys = Square;
        let mut chaos = ChaosSystem::arm(&mut sys, plan);
        let mut x = vec![1.0];
        solver.solve(&mut chaos, &mut x)?;
        Ok(x[0])
    }

    #[test]
    fn pass_through_when_no_fault() {
        let plan = FaultPlan::new();
        let x = solve_armed(&plan).unwrap();
        assert!((x - 2.0).abs() < 1e-8);
        assert_eq!(plan.solves_started(), 1);
    }

    #[test]
    fn nan_residual_aborts_with_nonfinite() {
        let plan = FaultPlan::always(FaultKind::NanResidual);
        let err = solve_armed(&plan).unwrap_err();
        assert!(matches!(err, NumError::NonFinite { .. }), "{err}");
    }

    #[test]
    fn singular_jacobian_fails_factorization() {
        let plan = FaultPlan::always(FaultKind::SingularJacobian);
        let err = solve_armed(&plan).unwrap_err();
        assert!(matches!(err, NumError::SingularMatrix { .. }), "{err}");
    }

    #[test]
    fn forced_divergence_exhausts_budget() {
        let plan = FaultPlan::always(FaultKind::ForcedDivergence);
        let err = solve_armed(&plan).unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }), "{err}");
    }

    #[test]
    fn ordinal_scheduling_hits_only_the_target_solve() {
        let plan = FaultPlan::new().inject_at(1, FaultKind::NanResidual);
        assert!(solve_armed(&plan).is_ok()); // ordinal 0
        assert!(solve_armed(&plan).is_err()); // ordinal 1: fault
        assert!(solve_armed(&plan).is_ok()); // ordinal 2: recovered
        assert_eq!(plan.solves_started(), 3);
    }

    #[test]
    fn span_scheduling_covers_window() {
        let plan = FaultPlan::new().inject_span(1, 3, FaultKind::SingularJacobian);
        assert!(solve_armed(&plan).is_ok());
        assert!(solve_armed(&plan).is_err());
        assert!(solve_armed(&plan).is_err());
        assert!(solve_armed(&plan).is_ok());
    }

    #[test]
    fn reset_replays_the_schedule() {
        let plan = FaultPlan::new().inject_at(0, FaultKind::NanResidual);
        assert!(solve_armed(&plan).is_err());
        assert!(solve_armed(&plan).is_ok());
        plan.reset();
        assert!(solve_armed(&plan).is_err());
    }

    #[test]
    fn io_ordinals_are_independent_of_solve_ordinals() {
        let plan = FaultPlan::new()
            .inject_at(0, FaultKind::NanResidual)
            .inject_io_at(1, IoFaultKind::ShortWrite)
            .inject_io_span(3, 5, IoFaultKind::BitFlipRead);
        // Solves advance only the solve counter.
        assert!(solve_armed(&plan).is_err());
        assert!(solve_armed(&plan).is_ok());
        // The I/O axis still starts at ordinal 0.
        assert_eq!(plan.begin_io(), None);
        assert_eq!(plan.begin_io(), Some(IoFaultKind::ShortWrite));
        assert_eq!(plan.begin_io(), None);
        assert_eq!(plan.begin_io(), Some(IoFaultKind::BitFlipRead));
        assert_eq!(plan.begin_io(), Some(IoFaultKind::BitFlipRead));
        assert_eq!(plan.begin_io(), None);
        assert_eq!(plan.io_started(), 6);
        assert!(!plan.io_is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn io_only_plans_are_empty_to_the_solver() {
        let plan = FaultPlan::io_always(IoFaultKind::FlushFail);
        assert!(plan.is_empty());
        assert!(!plan.io_is_empty());
        assert!(solve_armed(&plan).is_ok());
        assert_eq!(plan.begin_io(), Some(IoFaultKind::FlushFail));
        plan.reset();
        assert_eq!(plan.io_started(), 0);
        assert_eq!(plan.begin_io(), Some(IoFaultKind::FlushFail));
    }

    #[test]
    fn clone_replays_independently() {
        let plan = FaultPlan::new().inject_at(0, FaultKind::NanResidual);
        assert!(solve_armed(&plan).is_err());
        let replay = plan.clone();
        // The clone carries the advanced counter; resetting it replays.
        replay.reset();
        assert!(solve_armed(&replay).is_err());
        // The original is past its fault window.
        assert!(solve_armed(&plan).is_ok());
    }
}
