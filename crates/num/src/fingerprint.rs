//! Stable 64-bit content fingerprinting for simulation requests.
//!
//! The evaluation service keys its memoization cache on a fingerprint of
//! every input that can change a transient's result: column design,
//! operating point, defect, op sequence, and recovery policy. The hash
//! must be *stable* — identical across runs, thread counts, and platforms
//! — so it is built on FNV-1a over explicitly canonicalized bytes rather
//! than `std::hash`, whose `Hasher` output is not guaranteed stable
//! between releases.
//!
//! `f64` inputs are canonicalized before hashing: `-0.0` folds onto
//! `+0.0` (they compare equal and produce identical simulations) and
//! every NaN folds onto one canonical bit pattern. Everything else is
//! hashed by exact bit pattern, so two requests collide only when their
//! inputs are numerically interchangeable.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher over canonicalized scalar inputs.
///
/// ```
/// use dso_num::fingerprint::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.write_f64(-0.0);
/// let mut b = Fingerprint::new();
/// b.write_f64(0.0);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Hashes one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Hashes a 64-bit word, little-endian byte order.
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Hashes a `usize` (widened to 64 bits so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Hashes a boolean as one byte.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// Hashes an `f64` by canonicalized bit pattern: `-0.0` and `+0.0`
    /// hash identically, and all NaN payloads collapse onto one pattern.
    pub fn write_f64(&mut self, x: f64) {
        let bits = if x.is_nan() {
            f64::NAN.to_bits() | 0x8000_0000_0000_0000 // one canonical NaN
        } else if x == 0.0 {
            0 // +0.0; folds -0.0 onto it
        } else {
            x.to_bits()
        };
        self.write_u64(bits);
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_of(f: impl FnOnce(&mut Fingerprint)) -> u64 {
        let mut fp = Fingerprint::new();
        f(&mut fp);
        fp.finish()
    }

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(Fingerprint::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c (published test vector).
        let h = fp_of(|fp| fp.write_u8(b'a'));
        assert_eq!(h, 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn negative_zero_folds_onto_positive_zero() {
        assert_eq!(
            fp_of(|fp| fp.write_f64(-0.0)),
            fp_of(|fp| fp.write_f64(0.0))
        );
    }

    #[test]
    fn nan_payloads_collapse() {
        let quiet = f64::NAN;
        let other = f64::from_bits(f64::NAN.to_bits() ^ 1);
        assert!(other.is_nan());
        assert_eq!(
            fp_of(|fp| fp.write_f64(quiet)),
            fp_of(|fp| fp.write_f64(other))
        );
    }

    #[test]
    fn distinct_values_distinct_hashes() {
        let a = fp_of(|fp| fp.write_f64(1.0));
        let b = fp_of(|fp| fp.write_f64(1.0 + f64::EPSILON));
        assert_ne!(a, b);
        assert_ne!(
            fp_of(|fp| fp.write_bool(true)),
            fp_of(|fp| fp.write_bool(false))
        );
        assert_ne!(fp_of(|fp| fp.write_usize(3)), fp_of(|fp| fp.write_usize(4)));
    }

    #[test]
    fn order_matters() {
        let ab = fp_of(|fp| {
            fp.write_u64(1);
            fp.write_u64(2);
        });
        let ba = fp_of(|fp| {
            fp.write_u64(2);
            fp.write_u64(1);
        });
        assert_ne!(ab, ba);
    }
}
