//! Dense LU factorization with partial pivoting.
//!
//! Circuit matrices produced by modified nodal analysis are small (tens of
//! unknowns for one DRAM column) but must be factored thousands of times per
//! transient run, so the factorization is written for predictable, in-place
//! performance rather than generality.

use crate::matrix::DMatrix;
use crate::NumError;

/// Pivot magnitudes below this are treated as singular.
pub const SINGULARITY_THRESHOLD: f64 = 1e-13;

/// An LU factorization `P·A = L·U` of a square matrix, with partial
/// pivoting.
///
/// # Example
///
/// ```
/// use dso_num::{matrix::DMatrix, lu::LuFactor};
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// // Verify A x = b.
/// let b = a.mul_vec(&x)?;
/// assert!((b[0] - 3.0).abs() < 1e-12 && (b[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined L (below diagonal, unit diagonal implied) and U (on and
    /// above the diagonal), row-major.
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    n: usize,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

impl LuFactor {
    /// Factorizes `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumError::ShapeMismatch`] if `a` is not square.
    /// * [`NumError::SingularMatrix`] if a pivot smaller than
    ///   [`SINGULARITY_THRESHOLD`] (relative to the matrix scale) is hit.
    /// * [`NumError::NonFinite`] if `a` contains NaN or infinity.
    pub fn new(a: &DMatrix) -> Result<Self, NumError> {
        let mut f = LuFactor::empty();
        f.refactor_into(a)?;
        Ok(f)
    }

    /// An empty (0×0) factorization, used as reusable storage for
    /// [`LuFactor::refactor_into`].
    pub fn empty() -> Self {
        LuFactor {
            lu: Vec::new(),
            perm: Vec::new(),
            n: 0,
            perm_sign: 1.0,
        }
    }

    /// Refactorizes `a`, reusing this factorization's buffers. Once the
    /// stored buffers match `a`'s dimension (e.g. after a first
    /// [`LuFactor::new`] or `refactor_into` of the same size), this performs
    /// no heap allocation — the per-timestep path of a transient simulation
    /// depends on that.
    ///
    /// # Errors
    ///
    /// Same contract as [`LuFactor::new`]. On error the stored factorization
    /// is invalid and must not be used for solves.
    pub fn refactor_into(&mut self, a: &DMatrix) -> Result<(), NumError> {
        if !a.is_square() {
            return Err(NumError::ShapeMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(NumError::NonFinite {
                context: "LU input matrix".into(),
            });
        }
        let n = a.rows();
        self.lu.clear();
        self.lu.extend_from_slice(a.as_slice());
        self.perm.clear();
        self.perm.extend(0..n);
        self.n = n;
        self.perm_sign = 1.0;
        let lu = &mut self.lu;
        let perm = &mut self.perm;
        let scale = a.max_abs().max(1.0);
        let threshold = SINGULARITY_THRESHOLD * scale;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < threshold {
                return Err(NumError::SingularMatrix {
                    column: k,
                    pivot: pivot_val,
                });
            }
            if pivot_row != k {
                for j in 0..n {
                    lu.swap(k * n + j, pivot_row * n + j);
                }
                perm.swap(k, pivot_row);
                self.perm_sign = -self.perm_sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        lu[i * n + j] -= factor * lu[k * n + j];
                    }
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        if b.len() != self.n {
            return Err(NumError::ShapeMismatch {
                expected: format!("vector of length {}", self.n),
                found: format!("vector of length {}", b.len()),
            });
        }
        let mut x = vec![0.0; self.n];
        self.solve_in_place(b, &mut x);
        Ok(x)
    }

    /// Solves `A·x = b`, writing the solution into `x` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()` or `x.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x.len(), n, "solution length mismatch");
        // Forward substitution with permuted rhs: L·y = P·b.
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for (j, xj) in x.iter().enumerate().take(i) {
                sum -= self.lu[i * n + j] * xj;
            }
            x[i] = sum;
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu[i * n + j] * xj;
            }
            x[i] = sum / self.lu[i * n + i];
        }
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        det
    }

    /// A cheap condition estimate: ratio of largest to smallest absolute
    /// pivot. Large values indicate an ill-conditioned system.
    pub fn pivot_ratio(&self) -> f64 {
        let mut max = 0.0_f64;
        let mut min = f64::INFINITY;
        for i in 0..self.n {
            let p = self.lu[i * self.n + i].abs();
            max = max.max(p);
            min = min.min(p);
        }
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Convenience: factor `a` and solve `a·x = b` in one call.
///
/// # Errors
///
/// Propagates the errors of [`LuFactor::new`] and [`LuFactor::solve`].
pub fn solve(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, NumError> {
    LuFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::norm_inf;

    fn residual(a: &DMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).unwrap();
        norm_inf(&ax.iter().zip(b).map(|(l, r)| l - r).collect::<Vec<f64>>())
    }

    #[test]
    fn solve_2x2() {
        let a = DMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 2.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal: succeeds only with pivoting.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_reported() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let err = LuFactor::new(&a).unwrap_err();
        assert!(matches!(err, NumError::SingularMatrix { .. }));
    }

    #[test]
    fn non_square_rejected() {
        let a = DMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut a = DMatrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(LuFactor::new(&a), Err(NumError::NonFinite { .. })));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.determinant() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_identity_is_one() {
        let lu = LuFactor::new(&DMatrix::identity(5)).unwrap();
        assert!((lu.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let a =
            DMatrix::from_rows(&[&[3.0, -1.0, 2.0], &[1.0, 4.0, 0.5], &[-2.0, 1.0, 5.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let b = [1.0, -2.0, 0.25];
        let x1 = lu.solve(&b).unwrap();
        let mut x2 = vec![0.0; 3];
        lu.solve_in_place(&b, &mut x2);
        assert_eq!(x1, x2);
        assert!(residual(&a, &x1, &b) < 1e-12);
    }

    #[test]
    fn refactor_into_matches_new_and_reuses_buffers() {
        let a = DMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[0.0, 2.0], &[5.0, -1.0]]).unwrap();
        let mut f = LuFactor::new(&a).unwrap();
        f.refactor_into(&b).unwrap();
        let fresh = LuFactor::new(&b).unwrap();
        assert_eq!(f.lu, fresh.lu);
        assert_eq!(f.perm, fresh.perm);
        assert_eq!(f.determinant(), fresh.determinant());
        // Refactoring back to `a` restores the original solution.
        f.refactor_into(&a).unwrap();
        let rhs = [1.0, 2.0];
        let x = f.solve(&rhs).unwrap();
        assert!(residual(&a, &x, &rhs) < 1e-12);
    }

    #[test]
    fn refactor_into_grows_from_empty() {
        let mut f = LuFactor::empty();
        assert_eq!(f.dim(), 0);
        let a =
            DMatrix::from_rows(&[&[3.0, -1.0, 2.0], &[1.0, 4.0, 0.5], &[-2.0, 1.0, 5.0]]).unwrap();
        f.refactor_into(&a).unwrap();
        assert_eq!(f.dim(), 3);
        let rhs = [1.0, -2.0, 0.25];
        let x = f.solve(&rhs).unwrap();
        assert!(residual(&a, &x, &rhs) < 1e-12);
    }

    #[test]
    fn rhs_length_checked() {
        let lu = LuFactor::new(&DMatrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pivot_ratio_of_identity() {
        let lu = LuFactor::new(&DMatrix::identity(4)).unwrap();
        assert_eq!(lu.pivot_ratio(), 1.0);
    }

    #[test]
    fn larger_random_like_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 25;
        let mut a = DMatrix::zeros(n, n);
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (u32::MAX as f64)) - 0.5
        };
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }
}
