//! Sparse matrices and a sparse LU solver.
//!
//! One DRAM column is small enough for dense LU, but scaled experiments
//! (wider arrays in the benchmarks, many-column sweeps) produce matrices
//! where most stamps touch only a handful of entries. This module provides a
//! triplet builder ([`Triplets`]), a compressed-sparse-column matrix
//! ([`CscMatrix`]) and a left-looking LU with partial pivoting
//! ([`SparseLu`]).

use crate::NumError;

/// A coordinate-format (COO) accumulator for building sparse matrices.
///
/// Duplicate entries are summed when compressed, which matches the
/// accumulate-style stamping used by modified nodal analysis.
///
/// # Example
///
/// ```
/// use dso_num::sparse::Triplets;
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 1.0); // duplicates sum
/// t.push(1, 1, 3.0);
/// let m = t.to_csc()?;
/// assert_eq!(m.get(0, 0), 2.0);
/// assert_eq!(m.get(1, 0), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty accumulator for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-compression) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears all entries, keeping the allocation and shape.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compresses into CSC form, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NonFinite`] if any stored value is NaN/inf.
    pub fn to_csc(&self) -> Result<CscMatrix, NumError> {
        if self.entries.iter().any(|&(_, _, v)| !v.is_finite()) {
            return Err(NumError::NonFinite {
                context: "sparse triplets".into(),
            });
        }
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (c, r));
        let mut dedup: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            match dedup.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => dedup.push((r, c, v)),
            }
        }
        let mut counts = vec![0usize; self.cols];
        let mut row_idx = Vec::with_capacity(dedup.len());
        let mut values = Vec::with_capacity(dedup.len());
        for &(r, c, v) in &dedup {
            counts[c] += 1;
            row_idx.push(r);
            values.push(v);
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        for c in 0..self.cols {
            col_ptr[c + 1] = col_ptr[c] + counts[c];
        }
        Ok(CscMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        })
    }
}

/// A compressed-sparse-column matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let start = self.col_ptr[col];
        let end = self.col_ptr[col + 1];
        match self.row_idx[start..end].binary_search(&row) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumError> {
        if x.len() != self.cols {
            return Err(NumError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate().take(self.cols) {
            if xc == 0.0 {
                continue;
            }
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
        Ok(y)
    }
}

/// Sparse LU factorization with partial pivoting (left-looking,
/// Gilbert–Peierls style but with dense working columns, which is plenty for
/// the matrix sizes in this workspace).
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Columns of L (unit diagonal implied), as (row, value) below diagonal.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Columns of U, as (row, value) on/above diagonal, diagonal last.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Row permutation: position i holds original row perm[i].
    perm: Vec<usize>,
}

impl SparseLu {
    /// Factorizes a square CSC matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::ShapeMismatch`] if the matrix is not square.
    /// * [`NumError::SingularMatrix`] on a numerically zero pivot.
    pub fn new(a: &CscMatrix) -> Result<Self, NumError> {
        if a.rows != a.cols {
            return Err(NumError::ShapeMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows, a.cols),
            });
        }
        let n = a.rows;
        let scale = a.values.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        let threshold = crate::lu::SINGULARITY_THRESHOLD * scale;

        // perm_inv[orig_row] = pivot position, usize::MAX while unassigned.
        let mut perm = vec![usize::MAX; n];
        let mut perm_inv = vec![usize::MAX; n];
        let mut l_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut u_cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        // Dense scatter workspace.
        let mut work = vec![0.0_f64; n];

        for k in 0..n {
            // Scatter column k of A into the workspace (original row ids).
            for idx in a.col_ptr[k]..a.col_ptr[k + 1] {
                work[a.row_idx[idx]] = a.values[idx];
            }
            // Eliminate with previously computed columns, in pivot order.
            for j in 0..k {
                let pivot_row = perm[j];
                let ukj = work[pivot_row];
                if ukj != 0.0 {
                    u_cols[k].push((j, ukj));
                    for &(r, lv) in &l_cols[j] {
                        work[r] -= lv * ukj;
                    }
                }
                work[pivot_row] = 0.0;
            }
            // Pick the pivot: the largest remaining (unpermuted) entry.
            let mut pivot_row = usize::MAX;
            let mut pivot_val = 0.0_f64;
            for (r, &v) in work.iter().enumerate() {
                if perm_inv[r] == usize::MAX && v.abs() > pivot_val {
                    pivot_val = v.abs();
                    pivot_row = r;
                }
            }
            if pivot_row == usize::MAX || pivot_val < threshold {
                return Err(NumError::SingularMatrix {
                    column: k,
                    pivot: pivot_val,
                });
            }
            let pivot = work[pivot_row];
            u_cols[k].push((k, pivot));
            perm[k] = pivot_row;
            perm_inv[pivot_row] = k;
            work[pivot_row] = 0.0;
            // Store L column (scaled) and clear workspace.
            for (r, w) in work.iter_mut().enumerate() {
                if *w != 0.0 {
                    if perm_inv[r] == usize::MAX {
                        l_cols[k].push((r, *w / pivot));
                    }
                    *w = 0.0;
                }
            }
        }
        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        if b.len() != self.n {
            return Err(NumError::ShapeMismatch {
                expected: format!("vector of length {}", self.n),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward: L·y = b, where L entries live in original row ids.
        // y is indexed by pivot position.
        let mut carry = b.to_vec();
        let mut y = vec![0.0; self.n];
        for k in 0..self.n {
            let yk = carry[self.perm[k]];
            y[k] = yk;
            if yk != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    carry[r] -= lv * yk;
                }
            }
        }
        // Backward: U·x = y. u_cols[k] holds (pivot position j, value) with
        // the diagonal (j == k) last.
        let mut x = y;
        for k in (0..self.n).rev() {
            let (diag_idx, diag) = *self.u_cols[k]
                .last()
                .expect("U column always holds its diagonal");
            debug_assert_eq!(diag_idx, k);
            let xk = x[k] / diag;
            x[k] = xk;
            if xk != 0.0 {
                for &(j, uv) in &self.u_cols[k][..self.u_cols[k].len() - 1] {
                    x[j] -= uv * xk;
                }
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{norm_inf, DMatrix};

    fn dense_to_triplets(a: &DMatrix) -> Triplets {
        let mut t = Triplets::new(a.rows(), a.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if a[(i, j)] != 0.0 {
                    t.push(i, j, a[(i, j)]);
                }
            }
        }
        t
    }

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = Triplets::new(3, 3);
        t.push(1, 2, 1.5);
        t.push(1, 2, 2.5);
        t.push(0, 0, 1.0);
        let m = t.to_csc().unwrap();
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn triplets_reject_non_finite() {
        let mut t = Triplets::new(1, 1);
        t.push(0, 0, f64::INFINITY);
        assert!(matches!(t.to_csc(), Err(NumError::NonFinite { .. })));
    }

    #[test]
    fn csc_mul_vec() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 3.0);
        let m = t.to_csc().unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn sparse_solve_matches_dense() {
        let a = DMatrix::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 3.0, 1.0, 0.0],
            &[0.0, 1.0, 2.5, 0.5],
            &[0.0, 0.0, 0.5, 2.0],
        ])
        .unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        let dense = crate::lu::solve(&a, &b).unwrap();
        let csc = dense_to_triplets(&a).to_csc().unwrap();
        let sparse = SparseLu::new(&csc).unwrap().solve(&b).unwrap();
        let diff: Vec<f64> = dense.iter().zip(&sparse).map(|(d, s)| d - s).collect();
        assert!(
            norm_inf(&diff) < 1e-12,
            "dense {dense:?} vs sparse {sparse:?}"
        );
    }

    #[test]
    fn sparse_solve_with_pivoting() {
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let csc = dense_to_triplets(&a).to_csc().unwrap();
        let x = SparseLu::new(&csc).unwrap().solve(&[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn sparse_singular_detected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        // Column 1 entirely zero -> singular.
        let csc = t.to_csc().unwrap();
        assert!(matches!(
            SparseLu::new(&csc),
            Err(NumError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn sparse_non_square_rejected() {
        let t = Triplets::new(2, 3);
        let csc = t.to_csc().unwrap();
        assert!(matches!(
            SparseLu::new(&csc),
            Err(NumError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn larger_banded_system() {
        // Tridiagonal system with known structure, n = 60.
        let n = 60;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let csc = t.to_csc().unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let x = SparseLu::new(&csc).unwrap().solve(&b).unwrap();
        let ax = csc.mul_vec(&x).unwrap();
        let diff: Vec<f64> = ax.iter().zip(&b).map(|(l, r)| l - r).collect();
        assert!(norm_inf(&diff) < 1e-10);
    }

    #[test]
    fn clear_reuses_allocation() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }
}
