//! Monotonicity classification of sampled responses.
//!
//! The stress optimizer probes a stress at a handful of values and asks how
//! a response (a settlement voltage, a threshold curve position, a border
//! resistance) moves. The paper's methodology branches on exactly this
//! classification: a monotone response lets the optimizer pick a direction
//! from two simulations, while a non-monotone response (like `Vsa` versus
//! temperature in Figure 4) forces a full border-resistance comparison.

use crate::NumError;

/// Direction of a sampled response with respect to its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Response rises as the input rises (within tolerance).
    Increasing,
    /// Response falls as the input rises (within tolerance).
    Decreasing,
    /// Response does not move beyond tolerance.
    Flat,
    /// Response moves both up and down — e.g. the temperature behaviour the
    /// paper calls "rarely observed".
    NonMonotonic,
}

impl Trend {
    /// `true` for [`Trend::Increasing`] or [`Trend::Decreasing`].
    pub fn is_monotonic(&self) -> bool {
        matches!(self, Trend::Increasing | Trend::Decreasing)
    }

    /// The opposite direction; `Flat` and `NonMonotonic` are their own
    /// opposites.
    pub fn reversed(&self) -> Trend {
        match self {
            Trend::Increasing => Trend::Decreasing,
            Trend::Decreasing => Trend::Increasing,
            other => *other,
        }
    }
}

impl std::fmt::Display for Trend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Trend::Increasing => "increasing",
            Trend::Decreasing => "decreasing",
            Trend::Flat => "flat",
            Trend::NonMonotonic => "non-monotonic",
        };
        f.write_str(s)
    }
}

/// Classifies the trend of ordinates `y` sampled at increasing inputs.
///
/// Differences with magnitude below `tol` count as flat. Inputs are assumed
/// ordered by the caller (they usually come straight from a sweep).
///
/// # Errors
///
/// * [`NumError::InvalidArgument`] if fewer than two samples are given or
///   `tol` is negative.
/// * [`NumError::NonFinite`] if a sample is NaN/inf.
///
/// # Example
///
/// ```
/// use dso_num::trend::{classify, Trend};
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// assert_eq!(classify(&[1.0, 2.0, 3.0], 1e-9)?, Trend::Increasing);
/// assert_eq!(classify(&[1.0, 2.0, 1.5], 1e-9)?, Trend::NonMonotonic);
/// assert_eq!(classify(&[1.0, 1.0 + 1e-12], 1e-9)?, Trend::Flat);
/// # Ok(())
/// # }
/// ```
pub fn classify(y: &[f64], tol: f64) -> Result<Trend, NumError> {
    if y.len() < 2 {
        return Err(NumError::InvalidArgument(
            "trend classification needs at least two samples".into(),
        ));
    }
    if tol < 0.0 {
        return Err(NumError::InvalidArgument(
            "trend tolerance must be non-negative".into(),
        ));
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(NumError::NonFinite {
            context: "trend samples".into(),
        });
    }
    let mut saw_up = false;
    let mut saw_down = false;
    for w in y.windows(2) {
        let d = w[1] - w[0];
        if d > tol {
            saw_up = true;
        } else if d < -tol {
            saw_down = true;
        }
    }
    Ok(match (saw_up, saw_down) {
        (true, true) => Trend::NonMonotonic,
        (true, false) => Trend::Increasing,
        (false, true) => Trend::Decreasing,
        (false, false) => Trend::Flat,
    })
}

/// Index of the extreme sample: the maximum for curves that rise then fall,
/// the minimum for curves that fall then rise. Useful for locating the most
/// stressful point of a non-monotonic response.
///
/// # Errors
///
/// Same validation as [`classify`].
pub fn extremum_index(y: &[f64]) -> Result<usize, NumError> {
    if y.len() < 2 {
        return Err(NumError::InvalidArgument(
            "extremum search needs at least two samples".into(),
        ));
    }
    if y.iter().any(|v| !v.is_finite()) {
        return Err(NumError::NonFinite {
            context: "extremum samples".into(),
        });
    }
    // Whichever of min/max lies strictly inside the range is the turning
    // point; if both are on the boundary the curve is monotone and we return
    // the global max.
    let (mut imax, mut imin) = (0usize, 0usize);
    for (i, &v) in y.iter().enumerate() {
        if v > y[imax] {
            imax = i;
        }
        if v < y[imin] {
            imin = i;
        }
    }
    let interior = |i: usize| i > 0 && i + 1 < y.len();
    Ok(if interior(imax) {
        imax
    } else if interior(imin) {
        imin
    } else {
        imax
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_directions() {
        assert_eq!(classify(&[0.0, 1.0, 2.0], 0.0).unwrap(), Trend::Increasing);
        assert_eq!(classify(&[2.0, 1.0, 0.0], 0.0).unwrap(), Trend::Decreasing);
        assert_eq!(classify(&[1.0, 1.0, 1.0], 0.0).unwrap(), Trend::Flat);
        assert_eq!(
            classify(&[0.0, 1.0, 0.5], 0.0).unwrap(),
            Trend::NonMonotonic
        );
    }

    #[test]
    fn tolerance_flattens_noise() {
        assert_eq!(
            classify(&[1.0, 1.0 + 1e-6, 1.0 - 1e-6], 1e-3).unwrap(),
            Trend::Flat
        );
        assert_eq!(
            classify(&[1.0, 1.1, 1.0999999], 1e-3).unwrap(),
            Trend::Increasing
        );
    }

    #[test]
    fn validation() {
        assert!(classify(&[1.0], 0.0).is_err());
        assert!(classify(&[1.0, 2.0], -1.0).is_err());
        assert!(classify(&[1.0, f64::NAN], 0.0).is_err());
    }

    #[test]
    fn trend_helpers() {
        assert!(Trend::Increasing.is_monotonic());
        assert!(!Trend::Flat.is_monotonic());
        assert_eq!(Trend::Increasing.reversed(), Trend::Decreasing);
        assert_eq!(Trend::NonMonotonic.reversed(), Trend::NonMonotonic);
        assert_eq!(Trend::Decreasing.to_string(), "decreasing");
    }

    #[test]
    fn extremum_of_peak() {
        assert_eq!(extremum_index(&[0.0, 2.0, 1.0]).unwrap(), 1);
        assert_eq!(extremum_index(&[3.0, 1.0, 2.0]).unwrap(), 1);
        // Monotone: returns global max.
        assert_eq!(extremum_index(&[0.0, 1.0, 2.0]).unwrap(), 2);
    }

    #[test]
    fn extremum_validation() {
        assert!(extremum_index(&[1.0]).is_err());
        assert!(extremum_index(&[1.0, f64::INFINITY]).is_err());
    }
}
