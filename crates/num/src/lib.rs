//! Numerical kernel for the `dram-stress-opt` workspace.
//!
//! This crate provides the numerical machinery that the SPICE-class circuit
//! simulator (`dso-spice`) and the fault-analysis layer (`dso-core`) are
//! built on:
//!
//! * [`matrix::DMatrix`] — a dense, row-major matrix with the usual algebra.
//! * [`lu::LuFactor`] — dense LU factorization with partial pivoting.
//! * [`sparse`] — triplet/CSC sparse matrices and a sparse LU solver for
//!   scaled-up memory arrays.
//! * [`newton`] — a damped Newton–Raphson driver used by the nonlinear DC and
//!   transient solvers.
//! * [`batch`] — a batched structure-of-arrays Newton/LU backend
//!   ([`batch::BatchBackend`]) advancing a lane of independent systems per
//!   iteration, bit-identical per lane to the scalar solver.
//! * [`integrate`] — integration-method coefficients (backward Euler,
//!   trapezoidal) for companion models, plus a reference ODE integrator used
//!   in validation tests.
//! * [`roots`] — bisection over monotone pass/fail predicates (used for
//!   border-resistance searches) and Brent's method for continuous roots.
//! * [`interp`] — sampled-curve interpolation and curve intersection (used to
//!   intersect write settlement curves with the sense-amplifier threshold
//!   curve).
//! * [`trend`] — monotonicity classification of sampled responses (used to
//!   decide whether a stress acts monotonically).
//! * [`chaos`] — deterministic fault injection for Newton solves (singular
//!   Jacobians, NaN residuals, forced divergence), used to exercise the
//!   simulator's recovery ladder from tests.
//! * [`testing`] — a seedable, dependency-free PRNG for property-style
//!   tests across the workspace.
//!
//! # Example
//!
//! Solve a small linear system:
//!
//! ```
//! use dso_num::{matrix::DMatrix, lu::LuFactor};
//!
//! # fn main() -> Result<(), dso_num::NumError> {
//! let a = DMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batch;
pub mod chaos;
pub mod error;
pub mod fingerprint;
pub mod integrate;
pub mod interp;
pub mod lu;
pub mod matrix;
pub mod newton;
pub mod roots;
pub mod sparse;
pub mod testing;
pub mod trend;

pub use error::NumError;
