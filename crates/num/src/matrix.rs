//! Dense, row-major matrices.
//!
//! [`DMatrix`] is deliberately small and allocation-transparent: circuit
//! matrices in this workspace are tens of rows, rebuilt (restamped) every
//! Newton iteration, so the container favours cheap clearing and in-place
//! accumulation (`add_at`) over rich linear-algebra features.

use crate::NumError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use dso_num::matrix::DMatrix;
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// let mut m = DMatrix::zeros(2, 2);
/// m.add_at(0, 0, 1.5);
/// m.add_at(0, 0, 0.5); // accumulates, MNA-stamp style
/// assert_eq!(m[(0, 0)], 2.0);
/// let i = DMatrix::identity(3);
/// assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0])?, vec![1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if the rows have differing
    /// lengths, and [`NumError::InvalidArgument`] if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumError> {
        let first = rows
            .first()
            .ok_or_else(|| NumError::InvalidArgument("from_rows: no rows given".into()))?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(NumError::ShapeMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Resets every entry to zero while keeping the allocation.
    ///
    /// This is the hot path for MNA restamping: the matrix is cleared and
    /// re-accumulated on every Newton iteration.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `value` to the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[inline]
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Copies another matrix's contents into this one, reshaping (but
    /// reusing the allocation when the sizes already match). This is the
    /// memcpy behind linear-base MNA stamping: the constant R/C/topology
    /// stamps are built once and copied here on every Newton iteration.
    pub fn copy_from(&mut self, other: &DMatrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.resize(other.data.len(), 0.0);
        self.data.copy_from_slice(&other.data);
    }

    /// Writes the matrix–vector product `A · x` into `y` without
    /// allocating (the hot-loop counterpart of [`DMatrix::mul_vec`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec_into: x length mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec_into: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Returns the matrix–vector product `A · x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumError> {
        if x.len() != self.cols {
            return Err(NumError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Returns the matrix product `A · B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if the inner dimensions differ.
    pub fn mul(&self, other: &DMatrix) -> Result<DMatrix, NumError> {
        if self.cols != other.rows {
            return Err(NumError::ShapeMismatch {
                expected: format!("matrix with {} rows", self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let mut out = DMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Infinity norm (maximum absolute row sum). NaN entries propagate: a
    /// matrix containing NaN has a NaN norm, never a spuriously small one.
    pub fn norm_inf(&self) -> f64 {
        let mut m = 0.0_f64;
        for i in 0..self.rows {
            let row_sum: f64 = self.data[i * self.cols..(i + 1) * self.cols]
                .iter()
                .map(|v| v.abs())
                .sum();
            if row_sum.is_nan() {
                return f64::NAN;
            }
            m = m.max(row_sum);
        }
        m
    }

    /// Borrowed view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrowed view of a single row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds ({}x{})",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Euclidean norm of a vector.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Infinity norm of a vector.
///
/// NaN entries propagate: the norm of a vector containing NaN is NaN.
/// (`f64::max` would silently discard NaN, letting a poisoned residual
/// masquerade as converged.)
pub fn norm_inf(x: &[f64]) -> f64 {
    let mut m = 0.0_f64;
    for v in x {
        if v.is_nan() {
            return f64::NAN;
        }
        m = m.max(v.abs());
    }
    m
}

/// `y ← y + alpha * x`, the BLAS `axpy` primitive.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(!z.is_square());
        assert_eq!(z.max_abs(), 0.0);

        let i = DMatrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        let err = DMatrix::from_rows(&[]).unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
    }

    #[test]
    fn mul_vec_works() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = m.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn mul_vec_shape_checked() {
        let m = DMatrix::zeros(2, 2);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn matrix_product_against_identity() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = DMatrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn transpose_round_trip() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut m = DMatrix::identity(4);
        m.clear();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn norms() {
        let m = DMatrix::from_rows(&[&[1.0, -2.0], &[-3.0, 0.5]]).unwrap();
        assert_eq!(m.max_abs(), 3.0);
        assert_eq!(m.norm_inf(), 3.5);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[1.0, -7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = DMatrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_contains_entries() {
        let m = DMatrix::identity(2);
        let s = m.to_string();
        assert!(s.contains("1.0"));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = DMatrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}
