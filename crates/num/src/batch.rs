//! Batched structure-of-arrays Newton solving: many systems, one lockstep.
//!
//! Every point of a sweep grid solves the *same* MNA structure with
//! different scalars (defect resistance, initial cell voltage, stress
//! values). The [`BatchBackend`] trait advances a whole *lane* of such
//! systems through one Newton iteration at a time: matrix values and
//! state vectors are stored structure-of-arrays across the lane, so the
//! LU elimination and triangular solves — the `O(n³)` heart of every
//! iteration — become contiguous per-lane arithmetic the compiler can
//! vectorize, while residual/Jacobian stamping stays per-system.
//!
//! # Bit-identity contract
//!
//! The SoA backend performs **per-lane partial pivoting**: each lane runs
//! the exact pivot search, row swaps, and elimination order of
//! [`LuFactor::refactor_into`](crate::lu::LuFactor::refactor_into) on its
//! own values, and the lockstep Newton
//! driver replays [`NewtonSolver`]'s iteration policy (damped line
//! search, step limiting, early exits) per lane with identical operation
//! order. Because lanes never mix arithmetically — SoA only interleaves
//! *storage* — every lane produces results bit-identical to a scalar
//! solve of the same system. The unit tests pin this with `to_bits`
//! comparisons at every supported lane width. Two guards matter:
//!
//! * elimination keeps the scalar path's `if factor != 0.0` skip *per
//!   lane* (replacing the skip with `x -= 0.0 * y` flips `-0.0` signs and
//!   manufactures NaNs from infinities), and
//! * finished or failed lanes are masked by forcing their factor to
//!   `0.0`, which the same guard turns into "never written".
//!
//! Converged lanes freeze (their state is no longer touched); lanes that
//! fail — singular Jacobian, non-finite residual, iteration budget — are
//! reported per lane so the caller can fall back to the scalar recovery
//! ladder without disturbing the survivors.
//!
//! Under [`NewtonOptions::lu_reuse`] every backend also mirrors the
//! scalar solver's *cross-solve* LU retention: each caller slot keeps the
//! factorization of its last solve and starts the next
//! [`BatchBackend::solve_lockstep`] call back-substituting against it,
//! exactly as a per-lane scalar solver driven through
//! [`NewtonSolver::solve_reusing`] would. Callers reset the retention
//! with [`BatchBackend::begin_run`] wherever the scalar path constructs a
//! fresh solver.

use crate::lu::SINGULARITY_THRESHOLD;
use crate::matrix::{norm_inf, DMatrix};
use crate::newton::{reuse_stalled, NewtonOptions, NewtonSolver, NewtonStats, NonlinearSystem};
use crate::NumError;

/// Re-validates a tentative convergence acceptance against the exact
/// residual when the system's `residual` is approximate (device bypass),
/// refreshing `residual` in place. Exact systems pass the incoming norm
/// straight through with no extra residual call — the per-lane call
/// sequence stays bit-identical to the scalar solver's.
fn exact_norm_for<S: NonlinearSystem>(
    system: &mut S,
    x: &[f64],
    residual: &mut [f64],
    res_norm: f64,
) -> Result<f64, NumError> {
    if !system.residual_is_approximate() {
        return Ok(res_norm);
    }
    system.residual_exact(x, residual)?;
    let exact = norm_inf(residual);
    if !exact.is_finite() {
        return Err(NumError::NonFinite {
            context: "exact Newton residual at acceptance".into(),
        });
    }
    Ok(exact)
}

/// Advances a lane of independent nonlinear systems in lockstep.
///
/// `solve_lockstep` is the batched analogue of [`NewtonSolver::solve`]:
/// it drives every *active* lane to convergence (or failure), leaving
/// each solution in its `xs` entry. Lanes are fully independent — a
/// failing lane never perturbs its neighbours — and every backend must
/// produce, per lane, exactly the bits a scalar [`NewtonSolver`] with
/// the same options would.
pub trait BatchBackend {
    /// The lane width the backend packs arithmetic across (1 = scalar).
    fn lane_width(&self) -> usize;

    /// The iteration policy every lane is solved with. Callers comparing
    /// batched against scalar results must match this against the scalar
    /// solver's options — a policy mismatch silently breaks bit-identity.
    fn options(&self) -> &NewtonOptions;

    /// Forgets every factorization retained across `solve_lockstep` calls.
    ///
    /// Backends mirror the scalar solver's cross-solve LU reuse
    /// ([`NewtonSolver::solve_reusing`]): each caller slot keeps the
    /// factorization of its last solve and, under
    /// [`NewtonOptions::lu_reuse`], starts the next solve
    /// back-substituting against it. That retention is bit-identical to
    /// the scalar path only while slot `i` keeps addressing the *same*
    /// system, so callers must reset at every boundary where the scalar
    /// path would build a fresh [`NewtonSolver`] — e.g. the start of each
    /// transient run.
    fn begin_run(&mut self) {}

    /// Solves `F_l(x_l) = 0` for every lane `l` with `active[l]`,
    /// leaving solutions in `xs[l]`. Returns one entry per lane:
    /// `None` for inactive lanes, otherwise the per-lane outcome with
    /// [`NewtonSolver::solve`] semantics.
    ///
    /// # Panics
    ///
    /// Panics when `systems`, `xs` and `active` disagree in length.
    fn solve_lockstep<S: NonlinearSystem>(
        &mut self,
        systems: &mut [S],
        xs: &mut [Vec<f64>],
        active: &[bool],
    ) -> Vec<Option<Result<NewtonStats, NumError>>>;
}

/// The scalar reference backend: one [`NewtonSolver`] looped over the
/// lane. Trivially bit-identical to scalar solving — it *is* scalar
/// solving — and the yardstick the SoA backend is tested against.
#[derive(Debug, Clone)]
pub struct ScalarBackend {
    options: NewtonOptions,
    /// One persistent solver per caller slot: each lane retains — and,
    /// under [`NewtonOptions::lu_reuse`], keeps back-substituting against
    /// — exactly its own LU across `solve_lockstep` calls, reproducing
    /// the per-transient solver of the scalar path call for call.
    solvers: Vec<NewtonSolver>,
}

impl ScalarBackend {
    /// Creates a scalar backend with the given iteration policy.
    pub fn new(options: NewtonOptions) -> Self {
        ScalarBackend {
            options,
            solvers: Vec::new(),
        }
    }
}

impl BatchBackend for ScalarBackend {
    fn lane_width(&self) -> usize {
        1
    }

    fn options(&self) -> &NewtonOptions {
        &self.options
    }

    fn begin_run(&mut self) {
        self.solvers.clear();
    }

    fn solve_lockstep<S: NonlinearSystem>(
        &mut self,
        systems: &mut [S],
        xs: &mut [Vec<f64>],
        active: &[bool],
    ) -> Vec<Option<Result<NewtonStats, NumError>>> {
        assert_eq!(systems.len(), xs.len(), "lane count mismatch");
        assert_eq!(systems.len(), active.len(), "lane mask mismatch");
        if self.solvers.len() < systems.len() {
            let options = self.options.clone();
            self.solvers
                .resize_with(systems.len(), || NewtonSolver::new(options.clone()));
        }
        let solvers = &mut self.solvers;
        systems
            .iter_mut()
            .zip(xs.iter_mut())
            .zip(active)
            .enumerate()
            .map(|(i, ((system, x), on))| on.then(|| solvers[i].solve_reusing(system, x)))
            .collect()
    }
}

/// Per-lane outcome of a batched LU factorization.
type LaneResult = Option<Result<(), NumError>>;

/// A batched dense LU with per-lane partial pivoting over `W` lanes.
///
/// Storage is structure-of-arrays: entry `(i, j)` of lane `l` lives at
/// `(i * n + j) * W + l`, so the elimination inner loop touches `W`
/// contiguous values per matrix entry. Each lane's pivot order is chosen
/// from its own values — bit-identical to [`LuFactor`] per lane — and a
/// lane that hits a singular pivot is deactivated mid-factorization
/// without disturbing the others.
///
/// [`LuFactor`]: crate::lu::LuFactor
#[derive(Debug, Clone)]
struct BatchLu<const W: usize> {
    /// SoA values: `(n * n) * W`, combined L (unit diagonal implied) / U.
    lu: Vec<f64>,
    /// Per-lane row permutations, lane-contiguous: lane `l` row `i` at
    /// `l * n + i`.
    perm: Vec<usize>,
    /// Per-lane singularity thresholds (scale-relative, as scalar).
    threshold: [f64; W],
    n: usize,
}

impl<const W: usize> BatchLu<W> {
    fn new() -> Self {
        BatchLu {
            lu: Vec::new(),
            perm: Vec::new(),
            threshold: [0.0; W],
            n: 0,
        }
    }

    fn resize(&mut self, n: usize) {
        // Keep the storage (and its stale values) when the dimension is
        // unchanged: `interleave` overwrites every entry of the buffer,
        // and lanes packed from a fallback source are masked out of the
        // factorization and ignored in the solve, so a per-call
        // zero-fill would only add `n²·W` of memory traffic per Newton
        // iteration.
        if self.n == n {
            return;
        }
        self.n = n;
        self.lu.clear();
        self.lu.resize(n * n * W, 0.0);
        self.perm.clear();
        self.perm.resize(n * W, 0);
    }

    /// Interleaves `W` contiguous matrices into the SoA storage — when
    /// every lane is stamped, in one fused pass where every cache line of
    /// the `n²·W` buffer is written exactly once, reading `W` sequential
    /// streams — while fusing in the scalar path's pre-factorization
    /// checks (finiteness, scale fold) per lane. Only *stamped* lanes are
    /// written: under modified-Newton reuse an unstamped lane's slots
    /// hold its retained factorization, which must survive untouched so
    /// the lane can keep back-substituting against it. (Callers still
    /// point unstamped lanes at any correctly-sized source to fill the
    /// array type; those sources are never read on the masked path.)
    ///
    /// Returns, per lane, whether the source was finite. Lanes that
    /// pass get their threshold and permutation reset, running the same
    /// pre-factorization checks as the scalar
    /// [`LuFactor::refactor_into`](crate::lu::LuFactor::refactor_into);
    /// the fold reproduces
    /// `DMatrix::max_abs` exactly on finite data, and non-finite data
    /// is detected as `Σ(v - v) != 0` (any `±∞`/`NaN` poisons the
    /// accumulator), keeping the whole pass vectorizable.
    // `v - v` is the point, not a typo: it is 0.0 for every finite `v`
    // and NaN for `±∞`/`NaN`, giving a branch-free finiteness probe.
    #[allow(clippy::eq_op)]
    fn interleave(&mut self, srcs: &[&[f64]; W], stamped: &[bool; W]) -> [bool; W] {
        let total = self.n * self.n;
        for (l, src) in srcs.iter().enumerate() {
            debug_assert!(!stamped[l] || src.len() == total);
        }
        let mut scale = [0.0_f64; W];
        let mut poison = [0.0_f64; W];
        if *stamped == [true; W] {
            for (e, out) in self.lu.chunks_exact_mut(W).enumerate() {
                for l in 0..W {
                    let v = srcs[l][e];
                    out[l] = v;
                    let a = v.abs();
                    // `if a > scale` matches `f64::max` on finite values
                    // and compiles to a branch-free compare/select.
                    if a > scale[l] {
                        scale[l] = a;
                    }
                    poison[l] += v - v;
                }
            }
        } else {
            // Masked pass: strided per stamped lane, leaving reusing
            // lanes' slots (a live factorization) and dead lanes' slots
            // alone. Partial restamps are the minority case once reuse
            // engages, so the extra cache-line traffic is acceptable.
            for l in 0..W {
                if !stamped[l] {
                    continue;
                }
                let src = srcs[l];
                for (e, &v) in src.iter().enumerate().take(total) {
                    self.lu[e * W + l] = v;
                    let a = v.abs();
                    if a > scale[l] {
                        scale[l] = a;
                    }
                    poison[l] += v - v;
                }
            }
        }
        let mut finite = [false; W];
        for l in 0..W {
            if !stamped[l] {
                continue;
            }
            if poison[l] == 0.0 {
                finite[l] = true;
                self.threshold[l] = SINGULARITY_THRESHOLD * scale[l].max(1.0);
                for i in 0..self.n {
                    self.perm[l * self.n + i] = i;
                }
            }
        }
        finite
    }

    /// Factorizes every lane with `active[l]`, per-lane pivoting. Lanes
    /// that hit a singular pivot are recorded in the returned array and
    /// excluded from the rest of the elimination.
    ///
    /// `preserve` must be `true` when any inactive lane's slots hold a
    /// retained factorization a reusing lane will keep solving against:
    /// it forces the per-lane row-swap path (the uniform block swap moves
    /// every lane's slots) and the guarded elimination (the branch-free
    /// path writes `x -= 0.0 * y` into masked lanes, which flips `-0.0`
    /// signs and manufactures NaNs from infinities). With `preserve`
    /// false the masked lanes hold garbage and the fast paths stay on.
    fn refactor(&mut self, active: &[bool; W], preserve: bool) -> [LaneResult; W] {
        let n = self.n;
        let mut outcome: [LaneResult; W] = std::array::from_fn(|l| active[l].then_some(Ok(())));
        let mut live = *active;
        let mut factors = [0.0_f64; W];
        let mut pivot_rows = [0usize; W];
        let mut pivot_vals = [0.0_f64; W];
        for k in 0..n {
            // Per-lane partial pivoting, exactly as the scalar path: each
            // lane sees the same comparison sequence the scalar pivot
            // search runs, so it picks the same row. The scan is
            // row-major so one pass down the column serves every lane —
            // at W = 8 a matrix entry's lanes share a cache line, and a
            // per-lane column walk would re-touch every line once per
            // lane. Dead lanes fold garbage (NaN compares are false, so
            // the fold is safe) that the threshold check below ignores.
            let diag = (k * n + k) * W;
            let diag_blk = &self.lu[diag..diag + W];
            for l in 0..W {
                pivot_rows[l] = k;
                pivot_vals[l] = diag_blk[l].abs();
            }
            for i in (k + 1)..n {
                let base = (i * n + k) * W;
                let blk = &self.lu[base..base + W];
                for l in 0..W {
                    // Strictly-greater compare/select: same row choice
                    // as the scalar search (ties keep the earlier row),
                    // but branch-free so the column scan vectorizes.
                    let v = blk[l].abs();
                    let gt = v > pivot_vals[l];
                    pivot_vals[l] = if gt { v } else { pivot_vals[l] };
                    pivot_rows[l] = if gt { i } else { pivot_rows[l] };
                }
            }
            let mut uniform_row = usize::MAX;
            let mut uniform = true;
            for l in 0..W {
                if !live[l] {
                    continue;
                }
                if pivot_vals[l] < self.threshold[l] {
                    outcome[l] = Some(Err(NumError::SingularMatrix {
                        column: k,
                        pivot: pivot_vals[l],
                    }));
                    live[l] = false;
                    continue;
                }
                if uniform_row == usize::MAX {
                    uniform_row = pivot_rows[l];
                } else if pivot_rows[l] != uniform_row {
                    uniform = false;
                }
            }
            if uniform && uniform_row != usize::MAX && !preserve {
                // Lanes of a group share circuit structure, so they
                // almost always agree on the pivot row: swap whole
                // W-wide blocks (contiguous, one cache line at W = 8)
                // instead of walking each lane's strided column. Dead
                // lanes' slots move too — they hold masked garbage
                // either way.
                if uniform_row != k {
                    for j in 0..n {
                        let a = (k * n + j) * W;
                        let b = (uniform_row * n + j) * W;
                        for l in 0..W {
                            self.lu.swap(a + l, b + l);
                        }
                    }
                    for (l, &alive) in live.iter().enumerate() {
                        if alive {
                            self.perm.swap(l * n + k, l * n + uniform_row);
                        }
                    }
                }
            } else {
                for l in 0..W {
                    if !live[l] {
                        continue;
                    }
                    let pivot_row = pivot_rows[l];
                    if pivot_row != k {
                        for j in 0..n {
                            self.lu
                                .swap((k * n + j) * W + l, (pivot_row * n + j) * W + l);
                        }
                        self.perm.swap(l * n + k, l * n + pivot_row);
                    }
                }
            }
            // Elimination: factors per lane (0.0 masks dead lanes), then
            // a lane-contiguous inner loop. The `!= 0.0` guard must stay
            // per *live* lane — substituting `x -= 0.0 * y` flips `-0.0`
            // signs and breaks bit-identity with the scalar path. Dead
            // lanes are exempt: their storage is masked garbage, so they
            // ride the branch-free path with a zero factor (writing more
            // garbage) rather than forcing every row onto the branchy
            // path once one lane of the pack freezes. Circuit matrices
            // share their zero structure across a lane group, so the
            // common cases are all-zero (skip the row, as scalar does)
            // and every-live-lane-nonzero (a branch-free loop the
            // compiler can vectorize across the W contiguous lanes);
            // only rows where a live lane has a true zero factor pay the
            // per-lane branch.
            // Pivot values are loop-invariant over the row sweep: copy
            // the diagonal block once instead of re-borrowing it per
            // row.
            let mut pivots = [0.0_f64; W];
            pivots.copy_from_slice(&self.lu[diag..diag + W]);
            for i in (k + 1)..n {
                let mut any_nonzero = false;
                let mut live_nonzero = true;
                let below = (i * n + k) * W;
                let col = &mut self.lu[below..below + W];
                for l in 0..W {
                    factors[l] = if live[l] {
                        let f = col[l] / pivots[l];
                        col[l] = f;
                        f
                    } else {
                        0.0
                    };
                    if factors[l] != 0.0 {
                        any_nonzero = true;
                    } else if live[l] {
                        live_nonzero = false;
                    }
                }
                if !any_nonzero {
                    continue;
                }
                // Rows `k` and `i` right of the pivot column are each
                // one contiguous block in SoA layout, and row `i` starts
                // after row `k` ends — so the update is two flat slices
                // the compiler can verify once and vectorize, instead of
                // `3(n-k)W` individually bounds-checked accesses.
                let len = (n - k - 1) * W;
                let start_k = (k * n + k + 1) * W;
                let start_i = (i * n + k + 1) * W;
                let (head, tail) = self.lu.split_at_mut(start_i);
                let row_k = &head[start_k..start_k + len];
                let row_i = &mut tail[..len];
                if live_nonzero && !preserve {
                    for (x, y) in row_i.chunks_exact_mut(W).zip(row_k.chunks_exact(W)) {
                        for l in 0..W {
                            x[l] -= factors[l] * y[l];
                        }
                    }
                } else {
                    for (x, y) in row_i.chunks_exact_mut(W).zip(row_k.chunks_exact(W)) {
                        for l in 0..W {
                            let f = factors[l];
                            if f != 0.0 {
                                x[l] -= f * y[l];
                            }
                        }
                    }
                }
            }
        }
        outcome
    }

    /// Solves `A_l · x_l = b_l` for every lane from the stored
    /// factorization. `b` and `x` are SoA (`n * W`, entry `i` of lane
    /// `l` at `i * W + l`). Lanes without a valid factorization produce
    /// garbage the caller must ignore.
    fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(b.len(), n * W);
        debug_assert_eq!(x.len(), n * W);
        // Forward substitution with per-lane permuted rhs: L·y = P·b.
        // Row `i` of L left of the diagonal is one contiguous SoA block,
        // zipped against the solved prefix of `x` chunk by chunk so the
        // inner loop carries no per-element bounds checks.
        for i in 0..n {
            let mut sum = [0.0_f64; W];
            for (l, s) in sum.iter_mut().enumerate() {
                *s = b[self.perm[l * n + i] * W + l];
            }
            let row = &self.lu[i * n * W..(i * n + i) * W];
            for (r, xj) in row.chunks_exact(W).zip(x.chunks_exact(W)) {
                for l in 0..W {
                    sum[l] -= r[l] * xj[l];
                }
            }
            x[i * W..i * W + W].copy_from_slice(&sum);
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            let mut sum = [0.0_f64; W];
            sum.copy_from_slice(&x[i * W..i * W + W]);
            let row = &self.lu[(i * n + i + 1) * W..(i * n + n) * W];
            for (r, xj) in row.chunks_exact(W).zip(x[(i + 1) * W..].chunks_exact(W)) {
                for l in 0..W {
                    sum[l] -= r[l] * xj[l];
                }
            }
            let diag = &self.lu[(i * n + i) * W..(i * n + i + 1) * W];
            for l in 0..W {
                sum[l] /= diag[l];
            }
            x[i * W..i * W + W].copy_from_slice(&sum);
        }
    }
}

/// Per-lane bookkeeping of the lockstep Newton driver. The per-lane
/// `f64` buffers live in [`LaneBufs`], recycled across packs, so a
/// warmed backend drives packs without allocating.
struct LaneState {
    /// Index into the caller's `systems`/`xs` arrays.
    slot: usize,
    /// Lane position inside the block's SoA storage (`slot % W`). Stable
    /// across `solve_lockstep` calls, so a slot's retained factorization
    /// is always found in the same storage lane.
    pos: usize,
    /// `‖F(x)‖∞` of the committed iterate.
    res_norm: f64,
    /// `res_norm` at the start of the current iteration (the reuse
    /// policy's stall reference).
    prev_norm: f64,
    /// Current line-search damping factor.
    alpha: f64,
    /// Whether a line-search round accepted this iteration.
    accepted: bool,
    /// Whether the lane is still searching this iteration.
    searching: bool,
    /// Modified-Newton policy: whether the next iteration must assemble
    /// and refactor (iteration 0 does unless the lane starts the solve
    /// reusing a factorization retained from a previous call).
    refactor_pending: bool,
    /// Whether the lane's storage currently holds a complete, finite
    /// factorization a later solve could start from. Seeded from the
    /// retention table, set by a successful refactor, cleared when the
    /// lane's slots are overwritten without one (non-finite stamp, a
    /// singular mid-elimination abort).
    lu_valid: bool,
    /// Iterations that refactored this lane's LU.
    lu_refactors: usize,
    /// Iterations that reused this lane's retained LU.
    lu_reuses: usize,
    /// Terminal outcome, once reached.
    finished: Option<Result<NewtonStats, NumError>>,
}

/// Reusable per-lane scratch, indexed by pack position.
#[derive(Debug)]
struct LaneBufs {
    /// Lane-local Jacobian, stamped contiguously and interleaved into
    /// the SoA storage in one pass (a per-lane strided pack would touch
    /// every cache line of the `n²·W` buffer once per lane).
    jac: DMatrix,
    /// Current residual `F(x)`.
    residual: Vec<f64>,
    /// Last Newton direction (post `limit_step`).
    dx: Vec<f64>,
    /// Line-search trial point / residual (committed on acceptance).
    trial_x: Vec<f64>,
    trial_residual: Vec<f64>,
}

impl Default for LaneBufs {
    fn default() -> Self {
        LaneBufs {
            jac: DMatrix::zeros(0, 0),
            residual: Vec::new(),
            dx: Vec::new(),
            trial_x: Vec::new(),
            trial_residual: Vec::new(),
        }
    }
}

impl LaneBufs {
    /// Sizes every buffer for an `n`-unknown system; stale contents are
    /// fine — each buffer is fully written before it is read, exactly as
    /// the scalar solver's recycled scratch.
    fn reserve(&mut self, n: usize) {
        if self.jac.rows() != n {
            self.jac = DMatrix::zeros(n, n);
        }
        self.residual.resize(n, 0.0);
        self.dx.resize(n, 0.0);
        self.trial_x.resize(n, 0.0);
        self.trial_residual.resize(n, 0.0);
    }
}

/// The SoA lane backend: `W` systems advanced per Newton iteration.
///
/// Residual and Jacobian evaluation stay per-system (stamping is `O(n²)`
/// and model-specific), but the factorization and triangular solves are
/// batched through the internal SoA `BatchLu`, and the iteration policy
/// — convergence
/// checks, damped line search, step limiting — runs in lockstep with
/// per-lane masks. Converged lanes freeze; failed lanes report their
/// error without disturbing the rest of the pack.
#[derive(Debug)]
pub struct SoaBackend<const W: usize> {
    options: NewtonOptions,
    /// One SoA factorization per stable `W`-wide block of caller slots
    /// (block `b` owns slots `b*W..(b+1)*W`), so each slot's retained LU
    /// stays in the same storage lane across `solve_lockstep` calls.
    lus: Vec<BatchLu<W>>,
    /// Per block and lane position, the dimension of the factorization
    /// the slot retains from a previous solve (`0` = none). Gates
    /// cross-solve reuse exactly like the scalar
    /// [`NewtonSolver::solve_reusing`] dimension check.
    retained: Vec<[usize; W]>,
    /// Per-slot scalar solvers for the mixed-dimension fallback, so even
    /// that path retains each lane's own factorization across calls like
    /// the scalar run does.
    fallback: Vec<NewtonSolver>,
    /// SoA right-hand sides / solutions for the batched solve.
    neg_f: Vec<f64>,
    dx: Vec<f64>,
    /// Per-lane-position scratch, recycled across packs.
    bufs: Vec<LaneBufs>,
}

impl<const W: usize> SoaBackend<W> {
    /// Creates an SoA backend with the given iteration policy.
    pub fn new(options: NewtonOptions) -> Self {
        SoaBackend {
            options,
            lus: Vec::new(),
            retained: Vec::new(),
            fallback: Vec::new(),
            neg_f: Vec::new(),
            dx: Vec::new(),
            bufs: Vec::new(),
        }
    }

    /// Drives one pack — block `block` of the stable slot partition,
    /// covering caller slots `start..start + W` — to completion.
    fn solve_pack<S: NonlinearSystem>(
        &mut self,
        systems: &mut [S],
        xs: &mut [Vec<f64>],
        block: usize,
        start: usize,
        slots: &[usize],
        results: &mut [Option<Result<NewtonStats, NumError>>],
    ) {
        let opts = self.options.clone();
        if self.bufs.len() < W {
            self.bufs.resize_with(W, LaneBufs::default);
        }
        let mut lanes: Vec<LaneState> = Vec::with_capacity(slots.len());
        for &slot in slots {
            let pos = slot - start;
            let n = systems[slot].unknowns();
            let bufs = &mut self.bufs[pos];
            bufs.reserve(n);
            // Cross-solve reuse: same condition as the scalar
            // `solve_reusing` (`lu_reuse` on, retained dimension
            // matches). A fresh or invalidated lane refactors at
            // iteration 0, exactly like a fresh scalar solver.
            let start_reusing = opts.lu_reuse && self.retained[block][pos] == n;
            let mut lane = LaneState {
                slot,
                pos,
                res_norm: 0.0,
                prev_norm: 0.0,
                alpha: 1.0,
                accepted: false,
                searching: false,
                refactor_pending: !start_reusing,
                lu_valid: start_reusing,
                lu_refactors: 0,
                lu_reuses: 0,
                finished: None,
            };
            if xs[slot].len() != n {
                lane.finished = Some(Err(NumError::ShapeMismatch {
                    expected: format!("initial guess of length {n}"),
                    found: format!("length {}", xs[slot].len()),
                }));
            } else {
                match systems[slot].residual(&xs[slot], &mut bufs.residual) {
                    Ok(()) => {
                        lane.res_norm = norm_inf(&bufs.residual);
                        if !lane.res_norm.is_finite() {
                            lane.finished = Some(Err(NumError::NonFinite {
                                context: "initial Newton residual".into(),
                            }));
                        }
                    }
                    Err(e) => lane.finished = Some(Err(e)),
                }
            }
            lanes.push(lane);
        }
        // Every lane of a pack shares one matrix dimension (the planner
        // groups identical circuit structures); a mixed pack falls back
        // to fully per-lane solving via dimension n of the first live
        // lane and scalar handling of the rest.
        let n = lanes
            .iter()
            .filter(|l| l.finished.is_none())
            .map(|l| systems[l.slot].unknowns())
            .next()
            .unwrap_or(0);
        let uniform = lanes
            .iter()
            .filter(|l| l.finished.is_none())
            .all(|l| systems[l.slot].unknowns() == n);
        if !uniform {
            // Mixed dimensions can't share the SoA storage: solve each
            // lane scalar, through a per-slot persistent solver so the
            // cross-solve reuse sequence still matches the scalar path's
            // per-transient solver. Bit-identity holds trivially.
            if let Some(&last) = slots.last() {
                while self.fallback.len() <= last {
                    self.fallback.push(NewtonSolver::new(opts.clone()));
                }
            }
            for lane in &mut lanes {
                if lane.finished.is_none() {
                    lane.finished = Some(
                        self.fallback[lane.slot]
                            .solve_reusing(&mut systems[lane.slot], &mut xs[lane.slot]),
                    );
                }
            }
            for lane in lanes {
                results[lane.slot] = lane.finished;
            }
            return;
        }
        // A dimension change invalidates whatever the block's storage
        // held (`resize` reallocates); drop the retention flags with it.
        if self.lus[block].n != n {
            self.retained[block] = [0; W];
            for lane in &mut lanes {
                lane.refactor_pending = true;
                lane.lu_valid = false;
            }
        }
        self.lus[block].resize(n);
        // Stale values for inactive lanes are fine: the batched solve
        // computes garbage for them and every consumer is masked.
        self.neg_f.resize(n * W, 0.0);
        self.dx.resize(n * W, 0.0);

        for iter in 0..opts.max_iterations {
            // Convergence check at the top of the iteration, as scalar,
            // re-validated against the exact residual for bypass-enabled
            // systems (a failed recheck refreshes the residual and forces
            // a refactor, exactly like the scalar solver).
            for lane in lanes.iter_mut() {
                // `<` and not `!(>=)`: a NaN residual must never count as
                // converged.
                let converged = lane.res_norm < opts.residual_tol;
                if lane.finished.is_some() || !converged {
                    continue;
                }
                let bufs = &mut self.bufs[lane.pos];
                match exact_norm_for(
                    &mut systems[lane.slot],
                    &xs[lane.slot],
                    &mut bufs.residual,
                    lane.res_norm,
                ) {
                    Ok(norm) => {
                        lane.res_norm = norm;
                        if norm < opts.residual_tol {
                            lane.finished = Some(Ok(NewtonStats {
                                iterations: iter,
                                residual: norm,
                                lu_refactors: lane.lu_refactors,
                                lu_reuses: lane.lu_reuses,
                            }));
                        } else {
                            lane.refactor_pending = true;
                        }
                    }
                    Err(e) => lane.finished = Some(Err(e)),
                }
            }
            if lanes.iter().all(|l| l.finished.is_some()) {
                break;
            }
            // Per-lane Jacobian stamp for lanes due a refactor, then one
            // masked interleave-and-check pass into the SoA factorization.
            // Lanes with a healthy contraction history skip the stamp and
            // keep back-substituting against their retained LU.
            let mut stamped = [false; W];
            let mut reusing = [false; W];
            for lane in lanes.iter_mut() {
                if lane.finished.is_some() {
                    continue;
                }
                if !lane.refactor_pending {
                    reusing[lane.pos] = true;
                    continue;
                }
                let bufs = &mut self.bufs[lane.pos];
                bufs.jac.clear();
                if let Err(e) = systems[lane.slot].jacobian(&xs[lane.slot], &mut bufs.jac) {
                    lane.finished = Some(Err(e));
                    continue;
                }
                stamped[lane.pos] = true;
            }
            // Preserve whenever any slot of the block holds a live
            // factorization this refactor must not disturb: a lane
            // reusing (or finished holding) one this solve, or a slot
            // not solving this call whose retained LU a later
            // `solve_lockstep` call may start from.
            let mut keep = [false; W];
            for (pos, &dim) in self.retained[block].iter().enumerate() {
                keep[pos] = dim == n && n > 0;
            }
            for lane in &lanes {
                keep[lane.pos] = lane.lu_valid && !stamped[lane.pos];
            }
            let preserve = keep.iter().any(|&k| k);
            let mut active = [false; W];
            if let Some(first) = (0..W).find(|&l| stamped[l]) {
                let fallback = self.bufs[first].jac.as_slice();
                let mut srcs: [&[f64]; W] = [fallback; W];
                for (l, src) in srcs.iter_mut().enumerate() {
                    if stamped[l] {
                        *src = self.bufs[l].jac.as_slice();
                    }
                }
                active = self.lus[block].interleave(&srcs, &stamped);
                for lane in lanes.iter_mut() {
                    if stamped[lane.pos] && !active[lane.pos] {
                        // The stamp overwrote this lane's slots with a
                        // non-finite matrix; nothing reusable remains.
                        lane.lu_valid = false;
                        lane.finished = Some(Err(NumError::NonFinite {
                            context: "LU input matrix".into(),
                        }));
                    }
                }
                let factored = self.lus[block].refactor(&active, preserve);
                for lane in lanes.iter_mut() {
                    if !active[lane.pos] {
                        continue;
                    }
                    match &factored[lane.pos] {
                        Some(Ok(())) => {
                            lane.lu_refactors += 1;
                            lane.lu_valid = true;
                            dso_obs::counter!("newton.lu_refactors").incr();
                            dso_obs::histogram!(
                                "newton.residual_trajectory",
                                &[1e-15, 1e-12, 1e-10, 1e-8, 1e-6, 1e-3, 1.0]
                            )
                            .observe(lane.res_norm);
                        }
                        Some(Err(e)) => {
                            // Elimination aborted mid-column: the slots
                            // hold a partial factorization.
                            lane.lu_valid = false;
                            lane.finished = Some(Err(e.clone()));
                            active[lane.pos] = false;
                        }
                        None => unreachable!("active lane skipped by refactor"),
                    }
                }
            }
            for lane in lanes.iter_mut() {
                if reusing[lane.pos] && lane.finished.is_none() {
                    active[lane.pos] = true;
                    lane.lu_reuses += 1;
                    dso_obs::counter!("newton.lu_reuses").incr();
                    dso_obs::histogram!(
                        "newton.residual_trajectory",
                        &[1e-15, 1e-12, 1e-10, 1e-8, 1e-6, 1e-3, 1.0]
                    )
                    .observe(lane.res_norm);
                }
            }
            if !active.iter().any(|&a| a) {
                // Every lane finished during the stamp/refactor phase;
                // the top-of-loop check will break out next iteration.
                continue;
            }
            // Newton step J dx = -F for the surviving pack, batched
            // (J possibly stale for reusing lanes).
            for (pos, &on) in active.iter().enumerate() {
                if !on {
                    continue;
                }
                for (i, r) in self.bufs[pos].residual.iter().enumerate() {
                    self.neg_f[i * W + pos] = -r;
                }
            }
            self.lus[block].solve(&self.neg_f, &mut self.dx);
            for lane in lanes.iter_mut() {
                if !active[lane.pos] {
                    continue;
                }
                let bufs = &mut self.bufs[lane.pos];
                for (i, d) in bufs.dx.iter_mut().enumerate() {
                    *d = self.dx[i * W + lane.pos];
                }
                systems[lane.slot].limit_step(&xs[lane.slot], &mut bufs.dx, opts.max_step);
                lane.prev_norm = lane.res_norm;
                lane.alpha = 1.0;
                lane.accepted = false;
                lane.searching = true;
            }
            // Damped line search, lockstep rounds with per-lane masks.
            for _ in 0..12 {
                let mut any = false;
                for lane in lanes.iter_mut() {
                    if !active[lane.pos] || !lane.searching {
                        continue;
                    }
                    let bufs = &mut self.bufs[lane.pos];
                    let x = &xs[lane.slot];
                    for (i, xi) in x.iter().enumerate() {
                        bufs.trial_x[i] = xi + lane.alpha * bufs.dx[i];
                    }
                    if let Err(e) =
                        systems[lane.slot].residual(&bufs.trial_x, &mut bufs.trial_residual)
                    {
                        lane.finished = Some(Err(e));
                        active[lane.pos] = false;
                        continue;
                    }
                    let trial_norm = norm_inf(&bufs.trial_residual);
                    if trial_norm.is_finite() && (trial_norm < lane.res_norm || lane.alpha <= 1e-3)
                    {
                        xs[lane.slot].copy_from_slice(&bufs.trial_x);
                        bufs.residual.copy_from_slice(&bufs.trial_residual);
                        lane.res_norm = trial_norm;
                        lane.accepted = true;
                        lane.searching = false;
                    } else {
                        lane.alpha *= opts.damping;
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            for lane in lanes.iter_mut() {
                if !active[lane.pos] {
                    continue;
                }
                let bufs = &mut self.bufs[lane.pos];
                if !lane.accepted {
                    // Accept the most damped step anyway (scalar policy:
                    // some circuits pass through a residual hump).
                    xs[lane.slot].copy_from_slice(&bufs.trial_x);
                    bufs.residual.copy_from_slice(&bufs.trial_residual);
                    lane.res_norm = norm_inf(&bufs.residual);
                }
                let step_norm = norm_inf(&bufs.dx) * lane.alpha;
                if step_norm < opts.step_tol && lane.res_norm < opts.residual_tol * 1e3 {
                    match exact_norm_for(
                        &mut systems[lane.slot],
                        &xs[lane.slot],
                        &mut bufs.residual,
                        lane.res_norm,
                    ) {
                        Ok(exact) if exact < opts.residual_tol * 1e3 => {
                            lane.finished = Some(Ok(NewtonStats {
                                iterations: iter + 1,
                                residual: exact,
                                lu_refactors: lane.lu_refactors,
                                lu_reuses: lane.lu_reuses,
                            }));
                        }
                        Ok(exact) => {
                            lane.res_norm = exact;
                            lane.refactor_pending = true;
                        }
                        Err(e) => lane.finished = Some(Err(e)),
                    }
                    continue;
                }
                // Modified-Newton policy, exactly as the scalar solver:
                // keep the factorization only while full steps are
                // accepted and the residual contracts past the stall
                // ratio.
                let stalled = reuse_stalled(lane.res_norm, lane.prev_norm);
                lane.refactor_pending =
                    !opts.lu_reuse || lane.alpha < 1.0 || !lane.accepted || stalled;
            }
        }
        for lane in lanes.into_iter() {
            // Cross-solve retention: record whether this lane leaves a
            // complete factorization behind (the scalar analogue is the
            // solver simply keeping its `lu` field for the next
            // `solve_reusing`).
            self.retained[block][lane.pos] = if lane.lu_valid { n } else { 0 };
            let outcome = match lane.finished {
                Some(outcome) => outcome,
                None => {
                    let checked = if lane.res_norm < opts.residual_tol {
                        exact_norm_for(
                            &mut systems[lane.slot],
                            &xs[lane.slot],
                            &mut self.bufs[lane.pos].residual,
                            lane.res_norm,
                        )
                    } else {
                        Ok(lane.res_norm)
                    };
                    match checked {
                        Ok(norm) if norm < opts.residual_tol => Ok(NewtonStats {
                            iterations: opts.max_iterations,
                            residual: norm,
                            lu_refactors: lane.lu_refactors,
                            lu_reuses: lane.lu_reuses,
                        }),
                        Ok(norm) => Err(NumError::NoConvergence {
                            iterations: opts.max_iterations,
                            residual: norm,
                        }),
                        Err(e) => Err(e),
                    }
                }
            };
            results[lane.slot] = Some(outcome);
        }
    }
}

impl<const W: usize> BatchBackend for SoaBackend<W> {
    fn lane_width(&self) -> usize {
        W
    }

    fn options(&self) -> &NewtonOptions {
        &self.options
    }

    fn begin_run(&mut self) {
        for block in &mut self.retained {
            *block = [0; W];
        }
        self.fallback.clear();
    }

    fn solve_lockstep<S: NonlinearSystem>(
        &mut self,
        systems: &mut [S],
        xs: &mut [Vec<f64>],
        active: &[bool],
    ) -> Vec<Option<Result<NewtonStats, NumError>>> {
        assert_eq!(systems.len(), xs.len(), "lane count mismatch");
        assert_eq!(systems.len(), active.len(), "lane mask mismatch");
        let span = dso_obs::span_fine("newton.solve_batch");
        let mut results: Vec<Option<Result<NewtonStats, NumError>>> = vec![None; systems.len()];
        // Stable partition: block `b` always covers slots `b*W..(b+1)*W`,
        // whatever the active mask, so each slot's retained factorization
        // stays in one storage lane for the whole run. (Dense repacking
        // would shift lane positions as lanes finish and sever every
        // shifted lane from its retained LU.)
        span.note("lanes", active.iter().filter(|&&a| a).count() as f64);
        for (block, start) in (0..systems.len()).step_by(W).enumerate() {
            let end = (start + W).min(systems.len());
            let pack: Vec<usize> = (start..end).filter(|&i| active[i]).collect();
            if pack.is_empty() {
                continue;
            }
            if self.lus.len() <= block {
                self.lus.resize_with(block + 1, BatchLu::new);
                self.retained.resize(block + 1, [0; W]);
            }
            self.solve_pack(systems, xs, block, start, &pack, &mut results);
        }
        // Mirror the scalar solve's outcome metrics per lane.
        for outcome in results.iter().flatten() {
            match outcome {
                Ok(stats) => {
                    dso_obs::counter!("newton.solves").incr();
                    dso_obs::counter!("newton.iterations").add(stats.iterations as u64);
                    dso_obs::histogram!(
                        "newton.iterations_per_solve",
                        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
                    )
                    .observe(stats.iterations as f64);
                    dso_obs::histogram!(
                        "newton.residual_final",
                        &[1e-15, 1e-12, 1e-10, 1e-8, 1e-6, 1e-3, 1.0]
                    )
                    .observe(stats.residual);
                }
                Err(_) => dso_obs::counter!("newton.failed_solves").incr(),
            }
        }
        results
    }
}

/// The erased backend choice, selected at runtime (`DSO_LANES`).
///
/// [`BatchBackend::solve_lockstep`] is generic over the system type, so
/// the trait is not object-safe; this enum is the dispatch point.
#[derive(Debug)]
pub enum AnyBackend {
    /// Lane width 1: the scalar reference path.
    Scalar(ScalarBackend),
    /// Lane width 2.
    Soa2(SoaBackend<2>),
    /// Lane width 4.
    Soa4(SoaBackend<4>),
    /// Lane width 8.
    Soa8(SoaBackend<8>),
}

impl BatchBackend for AnyBackend {
    fn lane_width(&self) -> usize {
        match self {
            AnyBackend::Scalar(b) => b.lane_width(),
            AnyBackend::Soa2(b) => b.lane_width(),
            AnyBackend::Soa4(b) => b.lane_width(),
            AnyBackend::Soa8(b) => b.lane_width(),
        }
    }

    fn options(&self) -> &NewtonOptions {
        match self {
            AnyBackend::Scalar(b) => b.options(),
            AnyBackend::Soa2(b) => b.options(),
            AnyBackend::Soa4(b) => b.options(),
            AnyBackend::Soa8(b) => b.options(),
        }
    }

    fn begin_run(&mut self) {
        match self {
            AnyBackend::Scalar(b) => b.begin_run(),
            AnyBackend::Soa2(b) => b.begin_run(),
            AnyBackend::Soa4(b) => b.begin_run(),
            AnyBackend::Soa8(b) => b.begin_run(),
        }
    }

    fn solve_lockstep<S: NonlinearSystem>(
        &mut self,
        systems: &mut [S],
        xs: &mut [Vec<f64>],
        active: &[bool],
    ) -> Vec<Option<Result<NewtonStats, NumError>>> {
        match self {
            AnyBackend::Scalar(b) => b.solve_lockstep(systems, xs, active),
            AnyBackend::Soa2(b) => b.solve_lockstep(systems, xs, active),
            AnyBackend::Soa4(b) => b.solve_lockstep(systems, xs, active),
            AnyBackend::Soa8(b) => b.solve_lockstep(systems, xs, active),
        }
    }
}

/// Selects a backend for a requested lane count: `0` or `1` is scalar,
/// anything else rounds down to the nearest supported SoA width
/// (2, 4 or 8).
pub fn backend_with_lanes(lanes: usize, options: NewtonOptions) -> AnyBackend {
    match lanes {
        0 | 1 => AnyBackend::Scalar(ScalarBackend::new(options)),
        2 | 3 => AnyBackend::Soa2(SoaBackend::new(options)),
        4..=7 => AnyBackend::Soa4(SoaBackend::new(options)),
        _ => AnyBackend::Soa8(SoaBackend::new(options)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactor;

    /// A parameterized stiff test system: `F = (x0 - a, s·(x1 - x0²))`.
    /// Different `(a, s)` per lane exercise divergent iteration counts.
    struct Bowl {
        a: f64,
        s: f64,
    }

    impl NonlinearSystem for Bowl {
        fn unknowns(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
            out[0] = x[0] - self.a;
            out[1] = self.s * (x[1] - x[0] * x[0]);
            Ok(())
        }
        fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
            jac[(0, 0)] = 1.0;
            jac[(1, 0)] = -2.0 * self.s * x[0];
            jac[(1, 1)] = self.s;
            Ok(())
        }
    }

    /// Always-singular Jacobian: fails factorization on iteration one.
    struct Flat;
    impl NonlinearSystem for Flat {
        fn unknowns(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
            out[0] = x[0] + x[1] - 1.0;
            out[1] = 2.0 * (x[0] + x[1]) - 2.0;
            Ok(())
        }
        fn jacobian(&mut self, _x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
            jac[(0, 0)] = 1.0;
            jac[(0, 1)] = 1.0;
            jac[(1, 0)] = 2.0;
            jac[(1, 1)] = 2.0;
            Ok(())
        }
    }

    fn lane_params(m: usize) -> Vec<(f64, f64)> {
        (0..m)
            .map(|i| (0.5 + 0.37 * i as f64, 5.0 + 3.0 * i as f64))
            .collect()
    }

    fn scalar_reference(params: &[(f64, f64)]) -> Vec<(Vec<f64>, NewtonStats)> {
        params
            .iter()
            .map(|&(a, s)| {
                let mut solver = NewtonSolver::new(NewtonOptions::default());
                let mut x = vec![-1.5, 2.0];
                let stats = solver.solve(&mut Bowl { a, s }, &mut x).unwrap();
                (x, stats)
            })
            .collect()
    }

    fn assert_bitwise(
        expected: &[(Vec<f64>, NewtonStats)],
        xs: &[Vec<f64>],
        stats: &[NewtonStats],
    ) {
        for (l, (ex, got)) in expected.iter().zip(xs.iter().zip(stats)).enumerate() {
            assert_eq!(ex.1, *got.1, "lane {l} stats diverge");
            for (i, (e, g)) in ex.0.iter().zip(got.0).enumerate() {
                assert_eq!(e.to_bits(), g.to_bits(), "lane {l} x[{i}] differs bitwise");
            }
        }
    }

    fn soa_matches_scalar<const W: usize>(lanes: usize) {
        let params = lane_params(lanes);
        let expected = scalar_reference(&params);
        let mut systems: Vec<Bowl> = params.iter().map(|&(a, s)| Bowl { a, s }).collect();
        let mut xs: Vec<Vec<f64>> = (0..lanes).map(|_| vec![-1.5, 2.0]).collect();
        let active = vec![true; lanes];
        let mut backend = SoaBackend::<W>::new(NewtonOptions::default());
        let results = backend.solve_lockstep(&mut systems, &mut xs, &active);
        let stats: Vec<NewtonStats> = results
            .into_iter()
            .map(|r| r.expect("active lane").expect("converges"))
            .collect();
        assert_bitwise(&expected, &xs, &stats);
    }

    #[test]
    fn soa_bitwise_identical_full_packs() {
        soa_matches_scalar::<2>(2);
        soa_matches_scalar::<4>(4);
        soa_matches_scalar::<8>(8);
    }

    #[test]
    fn soa_bitwise_identical_partial_tails() {
        // Lane counts not divisible by the width: tail packs mask unused
        // lanes.
        soa_matches_scalar::<4>(3);
        soa_matches_scalar::<4>(6);
        soa_matches_scalar::<8>(5);
        soa_matches_scalar::<2>(7);
    }

    #[test]
    fn scalar_backend_matches_newton_solver() {
        let params = lane_params(3);
        let expected = scalar_reference(&params);
        let mut systems: Vec<Bowl> = params.iter().map(|&(a, s)| Bowl { a, s }).collect();
        let mut xs: Vec<Vec<f64>> = (0..3).map(|_| vec![-1.5, 2.0]).collect();
        let mut backend = ScalarBackend::new(NewtonOptions::default());
        let results = backend.solve_lockstep(&mut systems, &mut xs, &[true, true, true]);
        let stats: Vec<NewtonStats> = results.into_iter().map(|r| r.unwrap().unwrap()).collect();
        assert_bitwise(&expected, &xs, &stats);
    }

    #[test]
    fn inactive_lanes_left_untouched() {
        let params = lane_params(4);
        let mut systems: Vec<Bowl> = params.iter().map(|&(a, s)| Bowl { a, s }).collect();
        let mut xs: Vec<Vec<f64>> = (0..4).map(|_| vec![-1.5, 2.0]).collect();
        let active = [true, false, true, false];
        let mut backend = SoaBackend::<4>::new(NewtonOptions::default());
        let results = backend.solve_lockstep(&mut systems, &mut xs, &active);
        assert!(results[0].is_some() && results[2].is_some());
        assert!(results[1].is_none() && results[3].is_none());
        assert_eq!(xs[1], vec![-1.5, 2.0]);
        assert_eq!(xs[3], vec![-1.5, 2.0]);
        // The active lanes still match their scalar reference bitwise.
        let expected = scalar_reference(&params);
        for l in [0usize, 2] {
            for (e, g) in expected[l].0.iter().zip(&xs[l]) {
                assert_eq!(e.to_bits(), g.to_bits());
            }
        }
    }

    #[test]
    fn failing_lane_does_not_disturb_survivors() {
        // A singular lane in the middle of the pack must fail alone,
        // leaving its neighbours bit-identical to scalar runs.
        struct Mixed {
            flat: bool,
            inner: Bowl,
        }
        impl NonlinearSystem for Mixed {
            fn unknowns(&self) -> usize {
                2
            }
            fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
                if self.flat {
                    Flat.residual(x, out)
                } else {
                    self.inner.residual(x, out)
                }
            }
            fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
                if self.flat {
                    Flat.jacobian(x, jac)
                } else {
                    self.inner.jacobian(x, jac)
                }
            }
        }
        let params = lane_params(4);
        let expected = scalar_reference(&params);
        let mut systems: Vec<Mixed> = params
            .iter()
            .enumerate()
            .map(|(i, &(a, s))| Mixed {
                flat: i == 1,
                inner: Bowl { a, s },
            })
            .collect();
        let mut xs: Vec<Vec<f64>> = (0..4).map(|_| vec![-1.5, 2.0]).collect();
        let mut backend = SoaBackend::<4>::new(NewtonOptions::default());
        let results = backend.solve_lockstep(&mut systems, &mut xs, &[true; 4]);
        assert!(
            matches!(results[1], Some(Err(NumError::SingularMatrix { .. }))),
            "flat lane must fail with a singular Jacobian"
        );
        for l in [0usize, 2, 3] {
            let stats = results[l].clone().unwrap().unwrap();
            assert_eq!(stats, expected[l].1, "lane {l}");
            for (e, g) in expected[l].0.iter().zip(&xs[l]) {
                assert_eq!(e.to_bits(), g.to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn batch_lu_bitwise_matches_scalar_lu() {
        // Pivot-requiring matrices, different per lane.
        let mats: Vec<DMatrix> = (0..4)
            .map(|l| {
                let f = l as f64;
                DMatrix::from_rows(&[
                    &[0.1 * f, 1.0 + f, -2.0],
                    &[3.0 - f, 0.5, 1.0 + 0.25 * f],
                    &[-1.0, 2.0 * f + 0.125, 4.0],
                ])
                .unwrap()
            })
            .collect();
        let b = [1.0, -2.0, 0.75];
        let mut batch = BatchLu::<4>::new();
        batch.resize(3);
        let srcs: [&[f64]; 4] = std::array::from_fn(|l| mats[l].as_slice());
        assert_eq!(batch.interleave(&srcs, &[true; 4]), [true; 4]);
        let outcome = batch.refactor(&[true; 4], false);
        assert!(outcome.iter().all(|o| matches!(o, Some(Ok(())))));
        let mut b_soa = vec![0.0; 3 * 4];
        for i in 0..3 {
            for l in 0..4 {
                b_soa[i * 4 + l] = b[i];
            }
        }
        let mut x_soa = vec![0.0; 3 * 4];
        batch.solve(&b_soa, &mut x_soa);
        for (l, m) in mats.iter().enumerate() {
            let x_ref = LuFactor::new(m).unwrap().solve(&b).unwrap();
            for (i, e) in x_ref.iter().enumerate() {
                assert_eq!(
                    e.to_bits(),
                    x_soa[i * 4 + l].to_bits(),
                    "lane {l} x[{i}] differs bitwise"
                );
            }
        }
    }

    #[test]
    fn batch_lu_reports_singular_lanes_individually() {
        let good = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let bad = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let mut batch = BatchLu::<2>::new();
        batch.resize(2);
        let srcs: [&[f64]; 2] = [bad.as_slice(), good.as_slice()];
        assert_eq!(batch.interleave(&srcs, &[true, true]), [true, true]);
        let outcome = batch.refactor(&[true, true], false);
        assert!(matches!(
            outcome[0],
            Some(Err(NumError::SingularMatrix { .. }))
        ));
        assert!(matches!(outcome[1], Some(Ok(()))));
        // The good lane still solves bitwise like scalar.
        let b = [3.0, 5.0];
        let mut b_soa = vec![0.0; 4];
        let mut x_soa = vec![0.0; 4];
        for i in 0..2 {
            b_soa[i * 2 + 1] = b[i];
        }
        batch.solve(&b_soa, &mut x_soa);
        let x_ref = LuFactor::new(&good).unwrap().solve(&b).unwrap();
        for (i, e) in x_ref.iter().enumerate() {
            assert_eq!(e.to_bits(), x_soa[i * 2 + 1].to_bits());
        }
    }

    #[test]
    fn interleave_flags_non_finite_lanes_individually() {
        let mut bad = DMatrix::identity(2);
        bad[(0, 1)] = f64::NAN;
        let good = DMatrix::identity(2);
        let mut batch = BatchLu::<2>::new();
        batch.resize(2);
        let finite = batch.interleave(&[bad.as_slice(), good.as_slice()], &[true, true]);
        assert_eq!(finite, [false, true]);
    }

    #[test]
    fn backend_with_lanes_rounds_to_supported_widths() {
        for (lanes, width) in [
            (0, 1),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 4),
            (5, 4),
            (7, 4),
            (8, 8),
            (16, 8),
        ] {
            let backend = backend_with_lanes(lanes, NewtonOptions::default());
            assert_eq!(backend.lane_width(), width, "lanes={lanes}");
        }
    }

    #[test]
    fn any_backend_dispatches() {
        let params = lane_params(5);
        let expected = scalar_reference(&params);
        for lanes in [1usize, 2, 4, 8] {
            let mut systems: Vec<Bowl> = params.iter().map(|&(a, s)| Bowl { a, s }).collect();
            let mut xs: Vec<Vec<f64>> = (0..5).map(|_| vec![-1.5, 2.0]).collect();
            let mut backend = backend_with_lanes(lanes, NewtonOptions::default());
            let results = backend.solve_lockstep(&mut systems, &mut xs, &[true; 5]);
            let stats: Vec<NewtonStats> =
                results.into_iter().map(|r| r.unwrap().unwrap()).collect();
            assert_bitwise(&expected, &xs, &stats);
        }
    }
}
