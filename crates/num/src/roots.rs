//! Root and transition finding.
//!
//! Two search problems recur in the fault-analysis layer:
//!
//! * **Pass/fail boundaries** — the border resistance of a defect is the
//!   resistance at which a memory test flips from *pass* to *fail*. The
//!   oracle is expensive (a full transient simulation per probe) and only
//!   gives a boolean, so [`bisect_transition`] does a guarded boolean
//!   bisection, optionally on a logarithmic axis (resistances span decades).
//! * **Continuous roots** — intersections of interpolated curves. For these
//!   [`brent`] offers superlinear convergence with bisection's robustness.

use crate::NumError;

/// Axis scaling for [`bisect_transition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Bisect the arithmetic midpoint.
    #[default]
    Linear,
    /// Bisect the geometric midpoint (both bracket ends must be positive).
    Logarithmic,
}

/// Result of a boolean-transition bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Largest probed value on the `false` side of the transition.
    pub last_false: f64,
    /// Smallest probed value on the `true` side of the transition.
    pub first_true: f64,
    /// Number of oracle evaluations spent.
    pub evaluations: usize,
}

impl Transition {
    /// Midpoint estimate of the transition (geometric mean on log scale
    /// brackets is approximated well enough by the arithmetic mean once the
    /// bracket is tight).
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.last_false + self.first_true)
    }

    /// Width of the final bracket.
    pub fn width(&self) -> f64 {
        (self.first_true - self.last_false).abs()
    }
}

/// Locates the boundary where a monotone boolean `predicate` switches from
/// `false` (at `lo`) to `true` (at `hi`), to within relative tolerance
/// `rel_tol`.
///
/// The predicate is assumed monotone on `[lo, hi]`: `false` at `lo`, `true`
/// at `hi`. Both endpoints are probed first and the bracket verified.
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] if `lo >= hi` or the endpoint evaluations
///   do not form a `false → true` bracket.
/// * [`NumError::InvalidArgument`] for a non-positive `rel_tol` or a
///   non-positive endpoint with [`Scale::Logarithmic`].
/// * Errors from the predicate are propagated.
///
/// # Example
///
/// ```
/// use dso_num::roots::{bisect_transition, Scale};
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// // Find where x > 40_000 starts holding, on a log axis.
/// let t = bisect_transition(1e3, 1e6, 1e-3, Scale::Logarithmic, |x| Ok(x > 4e4))?;
/// assert!(t.last_false <= 4e4 && 4e4 <= t.first_true);
/// assert!(t.width() / t.midpoint() < 2e-3);
/// # Ok(())
/// # }
/// ```
pub fn bisect_transition<F>(
    lo: f64,
    hi: f64,
    rel_tol: f64,
    scale: Scale,
    mut predicate: F,
) -> Result<Transition, NumError>
where
    F: FnMut(f64) -> Result<bool, NumError>,
{
    if lo >= hi || lo.is_nan() || hi.is_nan() {
        return Err(NumError::InvalidBracket { lo, hi });
    }
    if rel_tol <= 0.0 {
        return Err(NumError::InvalidArgument(
            "bisect_transition: rel_tol must be positive".into(),
        ));
    }
    if scale == Scale::Logarithmic && lo <= 0.0 {
        return Err(NumError::InvalidArgument(format!(
            "bisect_transition: logarithmic scale requires positive bracket, got lo={lo}"
        )));
    }
    let mut evaluations = 0;
    let mut probe = |x: f64, evals: &mut usize| -> Result<bool, NumError> {
        *evals += 1;
        predicate(x)
    };
    if probe(lo, &mut evaluations)? {
        return Err(NumError::InvalidBracket { lo, hi });
    }
    if !probe(hi, &mut evaluations)? {
        return Err(NumError::InvalidBracket { lo, hi });
    }
    let mut last_false = lo;
    let mut first_true = hi;
    // 200 iterations is far beyond what any tolerance needs; it guards
    // against pathological floating-point cycling.
    for _ in 0..200 {
        let span = match scale {
            Scale::Linear => (first_true - last_false) / first_true.abs().max(1e-300),
            Scale::Logarithmic => (first_true / last_false).ln(),
        };
        if span.abs() < rel_tol {
            break;
        }
        let mid = match scale {
            Scale::Linear => 0.5 * (last_false + first_true),
            Scale::Logarithmic => (last_false * first_true).sqrt(),
        };
        if mid <= last_false || mid >= first_true {
            break; // floating-point exhaustion
        }
        if probe(mid, &mut evaluations)? {
            first_true = mid;
        } else {
            last_false = mid;
        }
    }
    Ok(Transition {
        last_false,
        first_true,
        evaluations,
    })
}

/// Brent's method: finds `x` in `[a, b]` with `f(x) = 0`, assuming
/// `f(a)·f(b) < 0`.
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] if the endpoints do not bracket a sign
///   change.
/// * [`NumError::NoConvergence`] if `max_iter` is exhausted.
///
/// # Example
///
/// ```
/// use dso_num::roots::brent;
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// let root = brent(0.0, 2.0, 1e-12, 100, |x| x * x - 2.0)?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn brent<F>(a: f64, b: f64, tol: f64, max_iter: usize, mut f: F) -> Result<f64, NumError>
where
    F: FnMut(f64) -> f64,
{
    let (mut a, mut b) = (a, b);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumError::InvalidBracket { lo: a, hi: b });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::NoConvergence {
        iterations: max_iter,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_transition() {
        let t = bisect_transition(0.0, 10.0, 1e-6, Scale::Linear, |x| Ok(x > 3.7)).unwrap();
        assert!((t.midpoint() - 3.7).abs() < 1e-4);
    }

    #[test]
    fn log_transition_over_decades() {
        let t =
            bisect_transition(1.0, 1e9, 1e-4, Scale::Logarithmic, |x| Ok(x > 123_456.0)).unwrap();
        assert!(t.last_false <= 123_456.0 && 123_456.0 <= t.first_true);
        assert!((t.midpoint() - 123_456.0).abs() / 123_456.0 < 1e-3);
        // Log bisection over 9 decades should take ~log2(ln ratio/tol) ≈ 25
        // evaluations, not hundreds.
        assert!(t.evaluations < 40, "{}", t.evaluations);
    }

    #[test]
    fn rejects_non_bracketing_predicate() {
        let err = bisect_transition(0.0, 1.0, 1e-3, Scale::Linear, |_| Ok(true)).unwrap_err();
        assert!(matches!(err, NumError::InvalidBracket { .. }));
        let err = bisect_transition(0.0, 1.0, 1e-3, Scale::Linear, |_| Ok(false)).unwrap_err();
        assert!(matches!(err, NumError::InvalidBracket { .. }));
    }

    #[test]
    fn rejects_reversed_bracket() {
        let err = bisect_transition(2.0, 1.0, 1e-3, Scale::Linear, |x| Ok(x > 1.5)).unwrap_err();
        assert!(matches!(err, NumError::InvalidBracket { .. }));
    }

    #[test]
    fn rejects_log_scale_with_nonpositive_lo() {
        let err =
            bisect_transition(-1.0, 1.0, 1e-3, Scale::Logarithmic, |x| Ok(x > 0.5)).unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
    }

    #[test]
    fn propagates_oracle_errors() {
        let err = bisect_transition(0.0, 1.0, 1e-3, Scale::Linear, |_| {
            Err(NumError::InvalidArgument("oracle broke".into()))
        })
        .unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
    }

    #[test]
    fn brent_sqrt2() {
        let root = brent(0.0, 2.0, 1e-13, 100, |x| x * x - 2.0).unwrap();
        assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_transcendental() {
        let root = brent(0.0, 1.0, 1e-12, 100, |x| x.cos() - x).unwrap();
        assert!((root.cos() - root).abs() < 1e-10);
    }

    #[test]
    fn brent_endpoint_root() {
        assert_eq!(brent(0.0, 1.0, 1e-12, 100, |x| x).unwrap(), 0.0);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        let err = brent(1.0, 2.0, 1e-12, 100, |x| x * x + 1.0).unwrap_err();
        assert!(matches!(err, NumError::InvalidBracket { .. }));
    }
}
