//! Numerical integration support.
//!
//! The transient engine discretizes each capacitor with a *companion model*:
//! at every time step the capacitor is replaced by a conductance `geq` in
//! parallel with a current source `ieq` whose values depend on the
//! integration method. [`Method`] provides those coefficients; [`rk4`] is an
//! independent reference integrator used to validate the circuit engine
//! against analytic RC answers in the test suite.

use crate::NumError;

/// Implicit integration methods supported by the transient engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// First-order backward Euler — strongly damped, good start-up behaviour.
    BackwardEuler,
    /// Second-order trapezoidal — accurate, can ring on discontinuities.
    #[default]
    Trapezoidal,
}

impl Method {
    /// Local truncation-error order of the method.
    pub fn order(&self) -> usize {
        match self {
            Method::BackwardEuler => 1,
            Method::Trapezoidal => 2,
        }
    }

    /// Companion-model coefficients for a capacitor of capacitance `c` at
    /// step size `dt`, given the voltage `v_prev` and current `i_prev`
    /// through the capacitor at the previous accepted time point.
    ///
    /// The capacitor is replaced by `i = geq·v − ieq` (current flowing
    /// from + to − node), so the MNA stamp adds `geq` to the conductance
    /// matrix and `ieq` to the right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidArgument`] if `dt <= 0` or `c < 0`.
    pub fn companion(
        &self,
        c: f64,
        dt: f64,
        v_prev: f64,
        i_prev: f64,
    ) -> Result<Companion, NumError> {
        if dt <= 0.0 {
            return Err(NumError::InvalidArgument(format!(
                "companion: dt must be positive, got {dt}"
            )));
        }
        if c < 0.0 {
            return Err(NumError::InvalidArgument(format!(
                "companion: capacitance must be non-negative, got {c}"
            )));
        }
        Ok(match self {
            Method::BackwardEuler => {
                let geq = c / dt;
                Companion {
                    geq,
                    ieq: geq * v_prev,
                }
            }
            Method::Trapezoidal => {
                let geq = 2.0 * c / dt;
                Companion {
                    geq,
                    ieq: geq * v_prev + i_prev,
                }
            }
        })
    }

    /// Recovers the capacitor current at the new time point from the solved
    /// voltage, for use as `i_prev` of the next step.
    pub fn current(&self, companion: Companion, v_new: f64) -> f64 {
        companion.geq * v_new - companion.ieq
    }
}

/// Companion-model coefficients produced by [`Method::companion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Companion {
    /// Equivalent conductance added to the MNA matrix.
    pub geq: f64,
    /// Equivalent current source added to the right-hand side.
    pub ieq: f64,
}

/// Classic fixed-step fourth-order Runge–Kutta for `dy/dt = f(t, y)`.
///
/// Used as an *independent* reference when validating the implicit circuit
/// integrator — the two implementations share no code.
///
/// Returns the sampled `(t, y)` trajectory including both endpoints.
///
/// # Errors
///
/// Returns [`NumError::InvalidArgument`] if `steps == 0` or `t1 <= t0`.
///
/// # Example
///
/// ```
/// use dso_num::integrate::rk4;
///
/// # fn main() -> Result<(), dso_num::NumError> {
/// // dy/dt = -y, y(0) = 1  =>  y(1) = e^-1.
/// let traj = rk4(0.0, 1.0, &[1.0], 100, |_, y, dy| dy[0] = -y[0])?;
/// let (t_end, y_end) = traj.last().expect("non-empty");
/// assert_eq!(*t_end, 1.0);
/// assert!((y_end[0] - (-1.0_f64).exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn rk4<F>(
    t0: f64,
    t1: f64,
    y0: &[f64],
    steps: usize,
    mut f: F,
) -> Result<Vec<(f64, Vec<f64>)>, NumError>
where
    F: FnMut(f64, &[f64], &mut [f64]),
{
    if steps == 0 {
        return Err(NumError::InvalidArgument("rk4: steps must be > 0".into()));
    }
    if t1 <= t0 {
        return Err(NumError::InvalidArgument(format!(
            "rk4: t1 ({t1}) must exceed t0 ({t0})"
        )));
    }
    let n = y0.len();
    let h = (t1 - t0) / steps as f64;
    let mut out = Vec::with_capacity(steps + 1);
    let mut y = y0.to_vec();
    out.push((t0, y.clone()));
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    for s in 0..steps {
        let t = t0 + s as f64 * h;
        f(t, &y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        f(t + 0.5 * h, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        f(t + 0.5 * h, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + h * k3[i];
        }
        f(t + h, &tmp, &mut k4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        let t_next = if s + 1 == steps {
            t1
        } else {
            t0 + (s + 1) as f64 * h
        };
        out.push((t_next, y.clone()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders() {
        assert_eq!(Method::BackwardEuler.order(), 1);
        assert_eq!(Method::Trapezoidal.order(), 2);
    }

    #[test]
    fn backward_euler_companion_matches_manual_rc() {
        // RC discharge: C dv/dt = -v/R. With companion model, each step
        // solves (geq + 1/R) v_new = ieq.
        let (r, c, dt) = (1e3, 1e-6, 1e-5);
        let mut v = 1.0;
        let method = Method::BackwardEuler;
        for _ in 0..100 {
            let comp = method.companion(c, dt, v, 0.0).unwrap();
            v = comp.ieq / (comp.geq + 1.0 / r);
        }
        let t = 100.0 * dt;
        let exact = (-t / (r * c)).exp();
        assert!((v - exact).abs() < 1e-2, "v={v} exact={exact}");
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_be() {
        let (r, c, dt) = (1e3, 1e-6, 2e-5);
        let run = |method: Method| {
            let mut v = 1.0;
            let mut i_prev = -v / r; // capacitor current at t=0
            for _ in 0..50 {
                let comp = method.companion(c, dt, v, i_prev).unwrap();
                v = comp.ieq / (comp.geq + 1.0 / r);
                i_prev = method.current(comp, v);
            }
            v
        };
        let exact = (-50.0 * dt / (r * c)).exp();
        let be_err = (run(Method::BackwardEuler) - exact).abs();
        let tr_err = (run(Method::Trapezoidal) - exact).abs();
        assert!(
            tr_err < be_err / 5.0,
            "trapezoidal ({tr_err:.3e}) should beat BE ({be_err:.3e})"
        );
    }

    #[test]
    fn companion_rejects_bad_dt() {
        assert!(Method::BackwardEuler
            .companion(1e-12, 0.0, 0.0, 0.0)
            .is_err());
        assert!(Method::Trapezoidal
            .companion(1e-12, -1.0, 0.0, 0.0)
            .is_err());
    }

    #[test]
    fn companion_rejects_negative_capacitance() {
        assert!(Method::BackwardEuler
            .companion(-1.0, 1e-9, 0.0, 0.0)
            .is_err());
    }

    #[test]
    fn current_recovery_round_trip() {
        let method = Method::Trapezoidal;
        let comp = method.companion(1e-12, 1e-9, 0.5, 1e-6).unwrap();
        let i = method.current(comp, 0.7);
        assert!((i - (comp.geq * 0.7 - comp.ieq)).abs() < 1e-18);
    }

    #[test]
    fn rk4_exponential_decay() {
        let traj = rk4(0.0, 2.0, &[1.0], 200, |_, y, dy| dy[0] = -y[0]).unwrap();
        let (_, y_end) = traj.last().unwrap();
        assert!((y_end[0] - (-2.0_f64).exp()).abs() < 1e-10);
        assert_eq!(traj.len(), 201);
    }

    #[test]
    fn rk4_harmonic_oscillator_conserves_energy() {
        // y'' = -y as a system: y0' = y1, y1' = -y0.
        let traj = rk4(0.0, 10.0, &[1.0, 0.0], 2000, |_, y, dy| {
            dy[0] = y[1];
            dy[1] = -y[0];
        })
        .unwrap();
        let (_, y_end) = traj.last().unwrap();
        let energy = y_end[0] * y_end[0] + y_end[1] * y_end[1];
        assert!((energy - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rk4_validates_arguments() {
        assert!(rk4(0.0, 1.0, &[0.0], 0, |_, _, _| {}).is_err());
        assert!(rk4(1.0, 0.5, &[0.0], 10, |_, _, _| {}).is_err());
    }
}
