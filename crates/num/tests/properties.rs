//! Property-based tests of the numerical kernel.

use dso_num::interp::{linspace, logspace, Curve};
use dso_num::lu::LuFactor;
use dso_num::matrix::{norm_inf, DMatrix};
use dso_num::roots::{bisect_transition, brent, Scale};
use dso_num::sparse::{SparseLu, Triplets};
use dso_num::trend::{classify, Trend};
use proptest::prelude::*;

/// A random diagonally dominant matrix: always nonsingular, well enough
/// conditioned that residual checks are meaningful.
fn diag_dominant(n: usize) -> impl Strategy<Value = DMatrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = vals[i * n + j];
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0 + vals[i * n + i].abs();
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_diag_dominant(
        a in diag_dominant(8),
        b in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        let lu = LuFactor::new(&a).expect("diagonally dominant is nonsingular");
        let x = lu.solve(&b).expect("solve succeeds");
        let ax = a.mul_vec(&x).expect("dimensions match");
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(l, r)| l - r).collect();
        prop_assert!(norm_inf(&resid) < 1e-9, "residual {}", norm_inf(&resid));
    }

    #[test]
    fn sparse_matches_dense(
        a in diag_dominant(10),
        b in proptest::collection::vec(-5.0f64..5.0, 10),
    ) {
        let mut t = Triplets::new(10, 10);
        for i in 0..10 {
            for j in 0..10 {
                if a[(i, j)] != 0.0 {
                    t.push(i, j, a[(i, j)]);
                }
            }
        }
        let dense = LuFactor::new(&a).expect("nonsingular").solve(&b).expect("solves");
        let sparse = SparseLu::new(&t.to_csc().expect("valid"))
            .expect("nonsingular")
            .solve(&b)
            .expect("solves");
        let diff: Vec<f64> = dense.iter().zip(&sparse).map(|(d, s)| d - s).collect();
        prop_assert!(norm_inf(&diff) < 1e-8, "dense vs sparse differ by {}", norm_inf(&diff));
    }

    #[test]
    fn determinant_sign_consistent_with_permutation(a in diag_dominant(6)) {
        // det(A) of a diagonally dominant matrix with positive diagonal
        // is positive (it is an M-matrix-like structure); at minimum the
        // determinant must be finite and nonzero.
        let lu = LuFactor::new(&a).expect("nonsingular");
        let det = lu.determinant();
        prop_assert!(det.is_finite() && det != 0.0);
    }

    #[test]
    fn curve_eval_bounded_by_neighbors(
        ys in proptest::collection::vec(-5.0f64..5.0, 4..12),
        t in 0.0f64..1.0,
    ) {
        let n = ys.len();
        let xs = linspace(0.0, 1.0, n).expect("valid spacing");
        let curve = Curve::new(xs, ys.clone()).expect("valid curve");
        let v = curve.eval(t).expect("in domain");
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn line_intersection_exact(
        a0 in -5.0f64..5.0, a1 in -5.0f64..5.0,
        b0 in -5.0f64..5.0, b1 in -5.0f64..5.0,
    ) {
        // Two straight lines over [0, 1] cross at most once; when the
        // endpoint differences change sign, the intersection satisfies
        // both line equations.
        let la = Curve::new(vec![0.0, 1.0], vec![a0, a1]).expect("valid");
        let lb = Curve::new(vec![0.0, 1.0], vec![b0, b1]).expect("valid");
        let roots = la.intersections(&lb).expect("domains overlap");
        prop_assert!(roots.len() <= 1 || (a0 == b0 && a1 == b1));
        for r in roots {
            let va = la.eval(r).expect("in domain");
            let vb = lb.eval(r).expect("in domain");
            prop_assert!((va - vb).abs() < 1e-9, "at {r}: {va} vs {vb}");
        }
    }

    #[test]
    fn bisection_brackets_planted_threshold(
        threshold in 1.0f64..9.0,
        log_scale in proptest::bool::ANY,
    ) {
        let scale = if log_scale { Scale::Logarithmic } else { Scale::Linear };
        let t = bisect_transition(0.5, 10.0, 1e-6, scale, |x| Ok(x > threshold))
            .expect("valid bracket");
        prop_assert!(t.last_false <= threshold);
        prop_assert!(t.first_true >= threshold);
        prop_assert!(t.width() < 1e-3);
    }

    #[test]
    fn brent_finds_root_of_cubic(shift in -0.9f64..0.9) {
        // x^3 - shift has a real root at shift^(1/3) within [-2, 2].
        let root = brent(-2.0, 2.0, 1e-12, 200, |x| x * x * x - shift)
            .expect("bracketed");
        prop_assert!((root * root * root - shift).abs() < 1e-9);
    }

    #[test]
    fn sorted_data_classifies_monotone(
        mut ys in proptest::collection::vec(-100.0f64..100.0, 3..20),
    ) {
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let trend = classify(&ys, 0.0).expect("valid input");
        prop_assert!(
            trend == Trend::Increasing || trend == Trend::Flat,
            "sorted data classified {trend}"
        );
        ys.reverse();
        let trend = classify(&ys, 0.0).expect("valid input");
        prop_assert!(trend == Trend::Decreasing || trend == Trend::Flat);
    }

    #[test]
    fn logspace_is_geometric(lo in 1e-3f64..1.0, ratio in 1.5f64..1e4, n in 3usize..20) {
        let hi = lo * ratio;
        let pts = logspace(lo, hi, n).expect("valid range");
        prop_assert_eq!(pts.len(), n);
        prop_assert!(pts.windows(2).all(|w| w[0] < w[1]));
        let r0 = pts[1] / pts[0];
        for w in pts.windows(2) {
            prop_assert!((w[1] / w[0] - r0).abs() < 1e-6 * r0);
        }
    }

    #[test]
    fn triplets_duplicates_sum(entries in proptest::collection::vec(
        (0usize..5, 0usize..5, -10.0f64..10.0), 1..40,
    )) {
        let mut t = Triplets::new(5, 5);
        let mut reference = vec![0.0f64; 25];
        for &(r, c, v) in &entries {
            t.push(r, c, v);
            reference[r * 5 + c] += v;
        }
        let csc = t.to_csc().expect("finite values");
        for r in 0..5 {
            for c in 0..5 {
                prop_assert!((csc.get(r, c) - reference[r * 5 + c]).abs() < 1e-12);
            }
        }
    }
}
