//! Property-style tests of the numerical kernel.
//!
//! Driven by the in-tree deterministic [`TestRng`] rather than an external
//! property-testing crate so the suite builds with no registry access.
//! Every case derives from a fixed seed and replays bit-for-bit.

use dso_num::interp::{linspace, logspace, Curve};
use dso_num::lu::LuFactor;
use dso_num::matrix::{norm_inf, DMatrix};
use dso_num::newton::{NewtonOptions, NewtonSolver, NonlinearSystem};
use dso_num::roots::{bisect_transition, brent, Scale};
use dso_num::sparse::{SparseLu, Triplets};
use dso_num::testing::TestRng;
use dso_num::trend::{classify, Trend};
use dso_num::NumError;

const CASES: usize = 64;

/// A random diagonally dominant matrix: always nonsingular, well enough
/// conditioned that residual checks are meaningful.
fn diag_dominant(rng: &mut TestRng, n: usize) -> DMatrix {
    let mut a = DMatrix::zeros(n, n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.range(-1.0, 1.0);
                a[(i, j)] = v;
                row_sum += v.abs();
            }
        }
        a[(i, i)] = row_sum + 1.0 + rng.next_f64();
    }
    a
}

#[test]
fn lu_solves_diag_dominant() {
    let mut rng = TestRng::new(0x1001);
    for _ in 0..CASES {
        let a = diag_dominant(&mut rng, 8);
        let b = rng.vec(8, -10.0, 10.0);
        let lu = LuFactor::new(&a).expect("diagonally dominant is nonsingular");
        let x = lu.solve(&b).expect("solve succeeds");
        let ax = a.mul_vec(&x).expect("dimensions match");
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(l, r)| l - r).collect();
        assert!(norm_inf(&resid) < 1e-9, "residual {}", norm_inf(&resid));
    }
}

#[test]
fn sparse_matches_dense() {
    let mut rng = TestRng::new(0x1002);
    for _ in 0..CASES {
        let a = diag_dominant(&mut rng, 10);
        let b = rng.vec(10, -5.0, 5.0);
        let mut t = Triplets::new(10, 10);
        for i in 0..10 {
            for j in 0..10 {
                if a[(i, j)] != 0.0 {
                    t.push(i, j, a[(i, j)]);
                }
            }
        }
        let dense = LuFactor::new(&a)
            .expect("nonsingular")
            .solve(&b)
            .expect("solves");
        let sparse = SparseLu::new(&t.to_csc().expect("valid"))
            .expect("nonsingular")
            .solve(&b)
            .expect("solves");
        let diff: Vec<f64> = dense.iter().zip(&sparse).map(|(d, s)| d - s).collect();
        assert!(
            norm_inf(&diff) < 1e-8,
            "dense vs sparse differ by {}",
            norm_inf(&diff)
        );
    }
}

#[test]
fn determinant_sign_consistent_with_permutation() {
    // det(A) of a diagonally dominant matrix with positive diagonal must at
    // minimum be finite and nonzero.
    let mut rng = TestRng::new(0x1003);
    for _ in 0..CASES {
        let a = diag_dominant(&mut rng, 6);
        let lu = LuFactor::new(&a).expect("nonsingular");
        let det = lu.determinant();
        assert!(det.is_finite() && det != 0.0);
    }
}

#[test]
fn curve_eval_bounded_by_neighbors() {
    let mut rng = TestRng::new(0x1004);
    for _ in 0..CASES {
        let n = rng.index_range(4, 12);
        let ys = rng.vec(n, -5.0, 5.0);
        let t = rng.next_f64();
        let xs = linspace(0.0, 1.0, n).expect("valid spacing");
        let curve = Curve::new(xs, ys.clone()).expect("valid curve");
        let v = curve.eval(t).expect("in domain");
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

#[test]
fn line_intersection_exact() {
    // Two straight lines over [0, 1] cross at most once; when the endpoint
    // differences change sign, the intersection satisfies both line
    // equations.
    let mut rng = TestRng::new(0x1005);
    for _ in 0..CASES {
        let (a0, a1) = (rng.range(-5.0, 5.0), rng.range(-5.0, 5.0));
        let (b0, b1) = (rng.range(-5.0, 5.0), rng.range(-5.0, 5.0));
        let la = Curve::new(vec![0.0, 1.0], vec![a0, a1]).expect("valid");
        let lb = Curve::new(vec![0.0, 1.0], vec![b0, b1]).expect("valid");
        let roots = la.intersections(&lb).expect("domains overlap");
        assert!(roots.len() <= 1 || (a0 == b0 && a1 == b1));
        for r in roots {
            let va = la.eval(r).expect("in domain");
            let vb = lb.eval(r).expect("in domain");
            assert!((va - vb).abs() < 1e-9, "at {r}: {va} vs {vb}");
        }
    }
}

#[test]
fn bisection_brackets_planted_threshold() {
    let mut rng = TestRng::new(0x1006);
    for _ in 0..CASES {
        let threshold = rng.range(1.0, 9.0);
        let scale = if rng.next_bool() {
            Scale::Logarithmic
        } else {
            Scale::Linear
        };
        let t = bisect_transition(0.5, 10.0, 1e-6, scale, |x| Ok(x > threshold))
            .expect("valid bracket");
        assert!(t.last_false <= threshold);
        assert!(t.first_true >= threshold);
        assert!(t.width() < 1e-3);
    }
}

#[test]
fn brent_finds_root_of_cubic() {
    // x^3 - shift has a real root at shift^(1/3) within [-2, 2].
    let mut rng = TestRng::new(0x1007);
    for _ in 0..CASES {
        let shift = rng.range(-0.9, 0.9);
        let root = brent(-2.0, 2.0, 1e-12, 200, |x| x * x * x - shift).expect("bracketed");
        assert!((root * root * root - shift).abs() < 1e-9);
    }
}

#[test]
fn sorted_data_classifies_monotone() {
    let mut rng = TestRng::new(0x1008);
    for _ in 0..CASES {
        let n = rng.index_range(3, 20);
        let mut ys = rng.vec(n, -100.0, 100.0);
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let trend = classify(&ys, 0.0).expect("valid input");
        assert!(
            trend == Trend::Increasing || trend == Trend::Flat,
            "sorted data classified {trend}"
        );
        ys.reverse();
        let trend = classify(&ys, 0.0).expect("valid input");
        assert!(trend == Trend::Decreasing || trend == Trend::Flat);
    }
}

#[test]
fn logspace_is_geometric() {
    let mut rng = TestRng::new(0x1009);
    for _ in 0..CASES {
        let lo = rng.range(1e-3, 1.0);
        let ratio = rng.log_range(1.5, 1e4);
        let n = rng.index_range(3, 20);
        let hi = lo * ratio;
        let pts = logspace(lo, hi, n).expect("valid range");
        assert_eq!(pts.len(), n);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        let r0 = pts[1] / pts[0];
        for w in pts.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-6 * r0);
        }
    }
}

#[test]
fn triplets_duplicates_sum() {
    let mut rng = TestRng::new(0x100a);
    for _ in 0..CASES {
        let count = rng.index_range(1, 40);
        let mut t = Triplets::new(5, 5);
        let mut reference = [0.0f64; 25];
        for _ in 0..count {
            let (r, c, v) = (rng.index(5), rng.index(5), rng.range(-10.0, 10.0));
            t.push(r, c, v);
            reference[r * 5 + c] += v;
        }
        let csc = t.to_csc().expect("finite values");
        for r in 0..5 {
            for c in 0..5 {
                assert!((csc.get(r, c) - reference[r * 5 + c]).abs() < 1e-12);
            }
        }
    }
}

/// A mildly nonlinear system with a diagonally dominant linear part:
/// `F(x) = A·x + 0.1·tanh(x) − b`. Always solvable from `x = 0`, nonlinear
/// enough that the Newton iteration takes several steps.
struct TanhSystem {
    a: DMatrix,
    b: Vec<f64>,
}

impl NonlinearSystem for TanhSystem {
    fn unknowns(&self) -> usize {
        self.b.len()
    }

    fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        let n = self.b.len();
        for i in 0..n {
            let mut acc = -self.b[i] + 0.1 * x[i].tanh();
            for (j, xj) in x.iter().enumerate().take(n) {
                acc += self.a[(i, j)] * xj;
            }
            out[i] = acc;
        }
        Ok(())
    }

    fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
        let n = self.b.len();
        for i in 0..n {
            for j in 0..n {
                jac[(i, j)] = self.a[(i, j)];
            }
            let sech = 1.0 / x[i].cosh();
            jac[(i, i)] += 0.1 * sech * sech;
        }
        Ok(())
    }
}

/// An in-test copy of the solver loop as it stood before modified-Newton
/// reuse landed: assemble the Jacobian and refactor the LU on **every**
/// iteration, same voltage limiting, same damped line search, same
/// convergence tests. Returns the iterate and `(iterations, residual)`.
fn reference_full_newton(
    system: &mut TanhSystem,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> (usize, f64) {
    let n = system.unknowns();
    let mut residual = vec![0.0; n];
    let mut trial_residual = vec![0.0; n];
    let mut trial_x = vec![0.0; n];
    let mut jac = DMatrix::zeros(n, n);
    system.residual(x, &mut residual).expect("residual");
    let mut res_norm = norm_inf(&residual);
    for iter in 0..opts.max_iterations {
        if res_norm < opts.residual_tol {
            return (iter, res_norm);
        }
        jac.clear();
        system.jacobian(x, &mut jac).expect("jacobian");
        let lu = LuFactor::new(&jac).expect("nonsingular");
        let neg_f: Vec<f64> = residual.iter().map(|r| -r).collect();
        let mut dx = vec![0.0; n];
        lu.solve_in_place(&neg_f, &mut dx);
        system.limit_step(x, &mut dx, opts.max_step);
        let mut alpha = 1.0;
        let mut accepted = false;
        for _ in 0..12 {
            for i in 0..n {
                trial_x[i] = x[i] + alpha * dx[i];
            }
            system
                .residual(&trial_x, &mut trial_residual)
                .expect("residual");
            let trial_norm = norm_inf(&trial_residual);
            if trial_norm.is_finite() && (trial_norm < res_norm || alpha <= 1e-3) {
                x.copy_from_slice(&trial_x);
                residual.copy_from_slice(&trial_residual);
                res_norm = trial_norm;
                accepted = true;
                break;
            }
            alpha *= opts.damping;
        }
        if !accepted {
            x.copy_from_slice(&trial_x);
            residual.copy_from_slice(&trial_residual);
            res_norm = norm_inf(&residual);
        }
        let step_norm = norm_inf(&dx) * alpha;
        if step_norm < opts.step_tol && res_norm < opts.residual_tol * 1e3 {
            return (iter + 1, res_norm);
        }
    }
    panic!("reference Newton did not converge: residual {res_norm}");
}

fn tanh_case(rng: &mut TestRng, n: usize) -> TanhSystem {
    TanhSystem {
        a: diag_dominant(rng, n),
        b: rng.vec(n, -3.0, 3.0),
    }
}

#[test]
fn reuse_off_is_bit_identical_to_pre_reuse_solver() {
    // The compatibility contract of the modified-Newton change:
    // `lu_reuse: false` must reproduce the pre-change solver exactly —
    // same iterates to the bit, same iteration count, same final residual,
    // and zero reuse accounting.
    let mut rng = TestRng::new(0x100b);
    let opts = NewtonOptions {
        lu_reuse: false,
        ..NewtonOptions::default()
    };
    let mut solver = NewtonSolver::new(opts.clone());
    for _ in 0..CASES {
        let n = rng.index_range(2, 8);
        let mut system = tanh_case(&mut rng, n);
        let mut x = vec![0.0; n];
        let stats = solver.solve(&mut system, &mut x).expect("converges");
        let mut x_ref = vec![0.0; n];
        let (iters_ref, res_ref) = reference_full_newton(&mut system, &mut x_ref, &opts);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&x), bits(&x_ref), "iterate bits diverged");
        assert_eq!(stats.iterations, iters_ref, "iteration count diverged");
        assert_eq!(
            stats.residual.to_bits(),
            res_ref.to_bits(),
            "final residual bits diverged"
        );
        assert_eq!(stats.lu_reuses, 0, "reuse-off solve reported reuses");
        assert!(stats.lu_refactors >= stats.iterations.min(1));
    }
}

#[test]
fn reuse_on_matches_root_and_saves_refactors() {
    // Reuse changes the iteration trajectory (that is the point), but it
    // must land on the same root to solver tolerance and, in aggregate,
    // trade refactors for cheap back-substitution iterations.
    let mut rng = TestRng::new(0x100c);
    let mut fast = NewtonSolver::new(NewtonOptions::default());
    let mut slow = NewtonSolver::new(NewtonOptions {
        lu_reuse: false,
        ..NewtonOptions::default()
    });
    let (mut reuses, mut refactors) = (0usize, 0usize);
    for _ in 0..CASES {
        let n = rng.index_range(2, 8);
        let mut system = tanh_case(&mut rng, n);
        let mut x_fast = vec![0.0; n];
        let stats = fast.solve(&mut system, &mut x_fast).expect("converges");
        reuses += stats.lu_reuses;
        refactors += stats.lu_refactors;
        let mut x_slow = vec![0.0; n];
        slow.solve(&mut system, &mut x_slow).expect("converges");
        for (f, s) in x_fast.iter().zip(&x_slow) {
            assert!((f - s).abs() < 1e-6, "roots diverged: {f} vs {s}");
        }
    }
    assert!(
        reuses > refactors,
        "modified-Newton saved nothing: {reuses} reuses vs {refactors} refactors"
    );
}

#[test]
fn norm_inf_propagates_nan() {
    // A poisoned residual must never report a finite (spuriously small)
    // norm — the Newton driver's non-finite guard depends on this.
    assert!(norm_inf(&[1.0, f64::NAN, 3.0]).is_nan());
    assert!(!norm_inf(&[1.0, -4.0, 3.0]).is_nan());
    let mut m = DMatrix::zeros(2, 2);
    m[(0, 1)] = f64::NAN;
    assert!(m.norm_inf().is_nan());
}
