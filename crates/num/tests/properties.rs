//! Property-style tests of the numerical kernel.
//!
//! Driven by the in-tree deterministic [`TestRng`] rather than an external
//! property-testing crate so the suite builds with no registry access.
//! Every case derives from a fixed seed and replays bit-for-bit.

use dso_num::interp::{linspace, logspace, Curve};
use dso_num::lu::LuFactor;
use dso_num::matrix::{norm_inf, DMatrix};
use dso_num::roots::{bisect_transition, brent, Scale};
use dso_num::sparse::{SparseLu, Triplets};
use dso_num::testing::TestRng;
use dso_num::trend::{classify, Trend};

const CASES: usize = 64;

/// A random diagonally dominant matrix: always nonsingular, well enough
/// conditioned that residual checks are meaningful.
fn diag_dominant(rng: &mut TestRng, n: usize) -> DMatrix {
    let mut a = DMatrix::zeros(n, n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = rng.range(-1.0, 1.0);
                a[(i, j)] = v;
                row_sum += v.abs();
            }
        }
        a[(i, i)] = row_sum + 1.0 + rng.next_f64();
    }
    a
}

#[test]
fn lu_solves_diag_dominant() {
    let mut rng = TestRng::new(0x1001);
    for _ in 0..CASES {
        let a = diag_dominant(&mut rng, 8);
        let b = rng.vec(8, -10.0, 10.0);
        let lu = LuFactor::new(&a).expect("diagonally dominant is nonsingular");
        let x = lu.solve(&b).expect("solve succeeds");
        let ax = a.mul_vec(&x).expect("dimensions match");
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(l, r)| l - r).collect();
        assert!(norm_inf(&resid) < 1e-9, "residual {}", norm_inf(&resid));
    }
}

#[test]
fn sparse_matches_dense() {
    let mut rng = TestRng::new(0x1002);
    for _ in 0..CASES {
        let a = diag_dominant(&mut rng, 10);
        let b = rng.vec(10, -5.0, 5.0);
        let mut t = Triplets::new(10, 10);
        for i in 0..10 {
            for j in 0..10 {
                if a[(i, j)] != 0.0 {
                    t.push(i, j, a[(i, j)]);
                }
            }
        }
        let dense = LuFactor::new(&a)
            .expect("nonsingular")
            .solve(&b)
            .expect("solves");
        let sparse = SparseLu::new(&t.to_csc().expect("valid"))
            .expect("nonsingular")
            .solve(&b)
            .expect("solves");
        let diff: Vec<f64> = dense.iter().zip(&sparse).map(|(d, s)| d - s).collect();
        assert!(
            norm_inf(&diff) < 1e-8,
            "dense vs sparse differ by {}",
            norm_inf(&diff)
        );
    }
}

#[test]
fn determinant_sign_consistent_with_permutation() {
    // det(A) of a diagonally dominant matrix with positive diagonal must at
    // minimum be finite and nonzero.
    let mut rng = TestRng::new(0x1003);
    for _ in 0..CASES {
        let a = diag_dominant(&mut rng, 6);
        let lu = LuFactor::new(&a).expect("nonsingular");
        let det = lu.determinant();
        assert!(det.is_finite() && det != 0.0);
    }
}

#[test]
fn curve_eval_bounded_by_neighbors() {
    let mut rng = TestRng::new(0x1004);
    for _ in 0..CASES {
        let n = rng.index_range(4, 12);
        let ys = rng.vec(n, -5.0, 5.0);
        let t = rng.next_f64();
        let xs = linspace(0.0, 1.0, n).expect("valid spacing");
        let curve = Curve::new(xs, ys.clone()).expect("valid curve");
        let v = curve.eval(t).expect("in domain");
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

#[test]
fn line_intersection_exact() {
    // Two straight lines over [0, 1] cross at most once; when the endpoint
    // differences change sign, the intersection satisfies both line
    // equations.
    let mut rng = TestRng::new(0x1005);
    for _ in 0..CASES {
        let (a0, a1) = (rng.range(-5.0, 5.0), rng.range(-5.0, 5.0));
        let (b0, b1) = (rng.range(-5.0, 5.0), rng.range(-5.0, 5.0));
        let la = Curve::new(vec![0.0, 1.0], vec![a0, a1]).expect("valid");
        let lb = Curve::new(vec![0.0, 1.0], vec![b0, b1]).expect("valid");
        let roots = la.intersections(&lb).expect("domains overlap");
        assert!(roots.len() <= 1 || (a0 == b0 && a1 == b1));
        for r in roots {
            let va = la.eval(r).expect("in domain");
            let vb = lb.eval(r).expect("in domain");
            assert!((va - vb).abs() < 1e-9, "at {r}: {va} vs {vb}");
        }
    }
}

#[test]
fn bisection_brackets_planted_threshold() {
    let mut rng = TestRng::new(0x1006);
    for _ in 0..CASES {
        let threshold = rng.range(1.0, 9.0);
        let scale = if rng.next_bool() {
            Scale::Logarithmic
        } else {
            Scale::Linear
        };
        let t = bisect_transition(0.5, 10.0, 1e-6, scale, |x| Ok(x > threshold))
            .expect("valid bracket");
        assert!(t.last_false <= threshold);
        assert!(t.first_true >= threshold);
        assert!(t.width() < 1e-3);
    }
}

#[test]
fn brent_finds_root_of_cubic() {
    // x^3 - shift has a real root at shift^(1/3) within [-2, 2].
    let mut rng = TestRng::new(0x1007);
    for _ in 0..CASES {
        let shift = rng.range(-0.9, 0.9);
        let root = brent(-2.0, 2.0, 1e-12, 200, |x| x * x * x - shift).expect("bracketed");
        assert!((root * root * root - shift).abs() < 1e-9);
    }
}

#[test]
fn sorted_data_classifies_monotone() {
    let mut rng = TestRng::new(0x1008);
    for _ in 0..CASES {
        let n = rng.index_range(3, 20);
        let mut ys = rng.vec(n, -100.0, 100.0);
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let trend = classify(&ys, 0.0).expect("valid input");
        assert!(
            trend == Trend::Increasing || trend == Trend::Flat,
            "sorted data classified {trend}"
        );
        ys.reverse();
        let trend = classify(&ys, 0.0).expect("valid input");
        assert!(trend == Trend::Decreasing || trend == Trend::Flat);
    }
}

#[test]
fn logspace_is_geometric() {
    let mut rng = TestRng::new(0x1009);
    for _ in 0..CASES {
        let lo = rng.range(1e-3, 1.0);
        let ratio = rng.log_range(1.5, 1e4);
        let n = rng.index_range(3, 20);
        let hi = lo * ratio;
        let pts = logspace(lo, hi, n).expect("valid range");
        assert_eq!(pts.len(), n);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        let r0 = pts[1] / pts[0];
        for w in pts.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-6 * r0);
        }
    }
}

#[test]
fn triplets_duplicates_sum() {
    let mut rng = TestRng::new(0x100a);
    for _ in 0..CASES {
        let count = rng.index_range(1, 40);
        let mut t = Triplets::new(5, 5);
        let mut reference = [0.0f64; 25];
        for _ in 0..count {
            let (r, c, v) = (rng.index(5), rng.index(5), rng.range(-10.0, 10.0));
            t.push(r, c, v);
            reference[r * 5 + c] += v;
        }
        let csc = t.to_csc().expect("finite values");
        for r in 0..5 {
            for c in 0..5 {
                assert!((csc.get(r, c) - reference[r * 5 + c]).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn norm_inf_propagates_nan() {
    // A poisoned residual must never report a finite (spuriously small)
    // norm — the Newton driver's non-finite guard depends on this.
    assert!(norm_inf(&[1.0, f64::NAN, 3.0]).is_nan());
    assert!(!norm_inf(&[1.0, -4.0, 3.0]).is_nan());
    let mut m = DMatrix::zeros(2, 2);
    m[(0, 1)] = f64::NAN;
    assert!(m.norm_inf().is_nan());
}
