//! Allocation audit for the solver hot path.
//!
//! A transient simulation factors and solves the MNA system thousands of
//! times; the per-timestep loop must not touch the heap once its scratch
//! buffers are warm. This test wraps the global allocator with a
//! thread-local counter and asserts that a warmed [`NewtonSolver`] solve
//! and a warmed [`LuFactor::refactor_into`] perform zero allocations.

use dso_num::lu::LuFactor;
use dso_num::matrix::DMatrix;
use dso_num::newton::{NewtonOptions, NewtonSolver, NonlinearSystem};
use dso_num::NumError;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn count() {
        COUNTING.with(|c| {
            if c.get() {
                ALLOCS.with(|a| a.set(a.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        CountingAlloc::count();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        CountingAlloc::count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        CountingAlloc::count();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations made by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> usize {
    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    ALLOCS.with(|a| a.get())
}

/// A small nonlinear system shaped like a stamped MNA step: a dominant
/// linear part plus a diode-style exponential coupling.
struct MnaLike {
    n: usize,
}

impl NonlinearSystem for MnaLike {
    fn unknowns(&self) -> usize {
        self.n
    }
    fn residual(&mut self, x: &[f64], out: &mut [f64]) -> Result<(), NumError> {
        for i in 0..self.n {
            let prev = if i == 0 { 0.0 } else { x[i - 1] };
            out[i] = 3.0 * x[i] - prev + 0.05 * (x[i].clamp(-2.0, 2.0)).exp() - 1.0;
        }
        Ok(())
    }
    fn jacobian(&mut self, x: &[f64], jac: &mut DMatrix) -> Result<(), NumError> {
        for i in 0..self.n {
            if i > 0 {
                jac[(i, i - 1)] = -1.0;
            }
            let xi = x[i].clamp(-2.0, 2.0);
            let dclamp = if (-2.0..=2.0).contains(&x[i]) {
                1.0
            } else {
                0.0
            };
            jac[(i, i)] = 3.0 + 0.05 * xi.exp() * dclamp;
        }
        Ok(())
    }
}

#[test]
fn warmed_newton_solve_does_not_allocate() {
    let mut solver = NewtonSolver::new(NewtonOptions::default());
    let mut system = MnaLike { n: 24 };

    // Warm the scratch buffers (residual, Jacobian, LU storage, …).
    let mut x = vec![0.0; 24];
    solver.solve(&mut system, &mut x).unwrap();

    // A steady-state re-solve — same system size, converged starting point
    // perturbed as a transient step would — must be allocation-free.
    for v in x.iter_mut() {
        *v += 1e-3;
    }
    let allocs = allocations_in(|| {
        solver.solve(&mut system, &mut x).unwrap();
    });
    assert_eq!(allocs, 0, "warmed Newton solve allocated {allocs} times");
}

#[test]
fn warmed_refactor_and_solve_in_place_do_not_allocate() {
    let a = DMatrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]).unwrap();
    let mut lu = LuFactor::new(&a).unwrap();
    let b = [1.0, -2.0, 0.5];
    let mut x = vec![0.0; 3];

    let allocs = allocations_in(|| {
        lu.refactor_into(&a).unwrap();
        lu.solve_in_place(&b, &mut x);
    });
    assert_eq!(allocs, 0, "warmed refactor+solve allocated {allocs} times");

    let ax = a.mul_vec(&x).unwrap();
    for (l, r) in ax.iter().zip(&b) {
        assert!((l - r).abs() < 1e-12);
    }
}
