//! `DSO_TRACE` contract: a 30-point sweep campaign must emit a valid
//! JSONL span stream — every line parses, every exit matches an enter,
//! every parent was entered first, and the tree nests campaign →
//! chunk/sweep-point → op → transient (→ Newton solve at fine level).
//!
//! The tracer is process-global, so this file holds exactly one
//! `#[test]` — its own test binary is its isolation.

use dso_core::exec::{self, CampaignConfig};
use dso_core::Session;
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::interp::logspace;
use dso_obs::Json;
use std::collections::{HashMap, HashSet};

/// Coarse time step so debug-mode campaigns stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

fn run_campaign(points: usize, threads: usize) {
    let defect = Defect::cell_open(BitLineSide::True);
    let r_values = logspace(1e4, 1e7, points).expect("valid sweep");
    let config = CampaignConfig::with_threads(threads).with_chunk(4);
    let session = Session::with_design(fast_design()).with_config(config);
    session
        .planes(&defect, &OperatingPoint::nominal(), &r_values, 1)
        .expect("campaign runs");
}

struct Span {
    name: String,
    parent: Option<u64>,
    exited: bool,
    dur_us: Option<u64>,
}

/// Parses a JSONL trace and validates the span-tree invariants; returns
/// the spans by id.
fn parse_and_validate(text: &str) -> HashMap<u64, Span> {
    let mut spans: HashMap<u64, Span> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let ev = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: bad JSON ({e}): {line}", lineno + 1));
        let kind = ev.get("ev").and_then(Json::as_str).expect("event kind");
        match kind {
            "enter" => {
                let id = ev.get("id").and_then(Json::as_u64).expect("enter id");
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .expect("enter name")
                    .to_string();
                let parent = ev.get("parent").and_then(Json::as_u64);
                assert!(ev.get("t_mono_us").and_then(Json::as_u64).is_some());
                assert!(ev.get("t_wall_ms").and_then(Json::as_u64).is_some());
                assert!(ev.get("thread").and_then(Json::as_str).is_some());
                if let Some(p) = parent {
                    // Parents are entered (written) before their children.
                    assert!(
                        spans.contains_key(&p),
                        "line {}: span {id} ({name}) has unseen parent {p}",
                        lineno + 1
                    );
                }
                let prev = spans.insert(
                    id,
                    Span {
                        name,
                        parent,
                        exited: false,
                        dur_us: None,
                    },
                );
                assert!(
                    prev.is_none(),
                    "line {}: duplicate span id {id}",
                    lineno + 1
                );
            }
            "exit" => {
                let id = ev.get("id").and_then(Json::as_u64).expect("exit id");
                let dur = ev.get("dur_us").and_then(Json::as_u64).expect("exit dur");
                let span = spans
                    .get_mut(&id)
                    .unwrap_or_else(|| panic!("line {}: exit without enter {id}", lineno + 1));
                assert!(!span.exited, "line {}: span {id} exited twice", lineno + 1);
                span.exited = true;
                span.dur_us = Some(dur);
            }
            "note" => {
                let target = ev.get("span").and_then(Json::as_u64).expect("note span");
                assert!(
                    spans.contains_key(&target),
                    "line {}: note for unseen span {target}",
                    lineno + 1
                );
            }
            other => panic!("line {}: unknown event kind {other:?}", lineno + 1),
        }
    }
    for (id, span) in &spans {
        assert!(span.exited, "span {id} ({}) never exited", span.name);
    }
    spans
}

/// Walks `id`'s ancestor chain to the root and returns the names.
fn ancestry(spans: &HashMap<u64, Span>, mut id: u64) -> Vec<String> {
    let mut names = Vec::new();
    loop {
        let span = &spans[&id];
        names.push(span.name.clone());
        match span.parent {
            Some(p) => id = p,
            None => return names,
        }
    }
}

#[test]
fn trace_of_30_point_sweep_is_a_valid_span_tree() {
    let dir = std::env::temp_dir();
    let coarse_path = dir.join(format!("dso_trace_coarse_{}.jsonl", std::process::id()));
    let fine_path = dir.join(format!("dso_trace_fine_{}.jsonl", std::process::id()));

    // Coarse level (the DSO_TRACE default), 30 points across 4 workers.
    dso_obs::trace_to_file(&coarse_path, dso_obs::Level::Coarse).expect("open trace");
    run_campaign(30, 4);
    dso_obs::trace_shutdown();

    let text = std::fs::read_to_string(&coarse_path).expect("trace written");
    let spans = parse_and_validate(&text);

    let count = |name: &str| spans.values().filter(|s| s.name == name).count();
    assert_eq!(count("campaign.planes"), 1);
    assert_eq!(count("sweep.point"), 30);
    // 30 points with a configured chunk of 4: the small-grid policy
    // coarsens to chunks of 8 → 4 chunks, all executed off-thread.
    let chunks = exec::chunk_ranges(30, exec::effective_chunk(30, 4)).len();
    assert_eq!(chunks, 4);
    assert_eq!(count("exec.chunk"), chunks);
    assert!(count("dram.op_sequence") >= 30);
    assert!(count("spice.transient") >= count("dram.op_sequence"));
    // Fine-level spans must be filtered out at coarse level.
    assert_eq!(count("newton.solve"), 0);

    // Every sweep point hangs off the campaign root through its chunk.
    let root_id = *spans
        .iter()
        .find(|(_, s)| s.name == "campaign.planes")
        .map(|(id, _)| id)
        .expect("campaign root");
    assert!(
        spans[&root_id].parent.is_none(),
        "campaign root has a parent"
    );
    for (id, span) in &spans {
        if span.name == "sweep.point" {
            let chain = ancestry(&spans, *id);
            assert_eq!(
                chain,
                vec!["sweep.point", "exec.chunk", "campaign.planes"],
                "span {id}"
            );
        }
    }

    // Fine level adds per-Newton-solve spans nested inside transients; a
    // 2-point sweep keeps the stream small. Re-initializing the tracer
    // must start a fresh file and id space.
    dso_obs::trace_to_file(&fine_path, dso_obs::Level::Fine).expect("open fine trace");
    run_campaign(2, 1);
    dso_obs::trace_shutdown();

    let fine_text = std::fs::read_to_string(&fine_path).expect("fine trace written");
    let fine_spans = parse_and_validate(&fine_text);
    let solves: Vec<_> = fine_spans
        .iter()
        .filter(|(_, s)| s.name == "newton.solve")
        .collect();
    assert!(!solves.is_empty(), "fine level must record Newton solves");
    let mut transient_parented = HashSet::new();
    for (id, _) in &solves {
        let chain = ancestry(&fine_spans, **id);
        if chain.contains(&"spice.transient".to_string()) {
            transient_parented.insert(**id);
        }
    }
    assert!(
        !transient_parented.is_empty(),
        "Newton solves must nest inside transient spans"
    );

    let _ = std::fs::remove_file(&coarse_path);
    let _ = std::fs::remove_file(&fine_path);
}
