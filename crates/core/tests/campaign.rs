//! Acceptance tests of the fault-tolerant plane campaign: injected point
//! failures must degrade the sweep gracefully (flagged, interpolated gaps;
//! full accounting) without moving the extracted border resistance, and
//! must error clearly when a gap straddles the border.

use dso_core::analysis::{CampaignFaults, Confidence};
use dso_core::{CoreError, Session};
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::chaos::{FaultKind, FaultPlan};
use dso_num::interp::logspace;

/// Coarse time step so debug-mode campaigns stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

#[test]
fn partial_planes_preserve_border_and_accounting() {
    let session = Session::with_design(fast_design());
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = logspace(1e4, 1e7, 10).unwrap();

    // Reference: a clean campaign. (The session's cache replays later
    // campaigns' clean points bit-for-bit, accounting included.)
    let clean = session
        .planes(&defect, &op, &r_values, 1)
        .expect("clean campaign runs");
    assert!(clean.report.accounts_for(r_values.len()));
    assert_eq!(clean.report.converged(), r_values.len());
    assert_eq!(clean.report.failed(), 0);
    assert!(clean.confidence.is_full());
    assert!(clean.gaps().is_empty());
    let b0 = clean
        .border_from_intersection()
        .expect("no gap can block a clean border")
        .expect("cell open has a border in the sweep");
    assert!((1e4..1e7).contains(&b0), "clean border {b0:.3e}");

    // Pick a fault index whose gap cannot bracket the border: the border
    // must not lie between the faulted point's sweep neighbors.
    let fault_idx = (1..r_values.len() - 1)
        .find(|&i| !(r_values[i - 1] < b0 && b0 < r_values[i + 1]))
        .expect("some interior point is far from the border");

    // 10% of the sweep points (1 of 10) killed outright: the campaign
    // degrades instead of aborting, and the border does not move.
    let faults =
        CampaignFaults::new().with_fault(fault_idx, FaultPlan::always(FaultKind::NanResidual));
    let partial = session
        .planes_faulted(&defect, &op, &r_values, 1, &faults)
        .expect("partial campaign still assembles planes");
    assert!(partial.report.accounts_for(r_values.len()));
    assert_eq!(partial.report.failed(), 1);
    assert_eq!(
        partial.report.converged() + partial.report.recovered(),
        r_values.len() - 1
    );
    assert_eq!(partial.confidence, Confidence::Degraded { gaps: 1 });
    assert_eq!(
        partial.gaps(),
        &[(r_values[fault_idx - 1], r_values[fault_idx + 1])]
    );
    // The failure report pinpoints the dead simulation with campaign
    // context (measurement name and resistance).
    let failed_status = partial
        .report
        .status_at(r_values[fault_idx])
        .expect("faulted point was attempted");
    let rendered = failed_status.to_string();
    assert!(rendered.contains("failed"), "{rendered}");
    assert!(rendered.contains("R ="), "{rendered}");
    let b_partial = partial
        .border_from_intersection()
        .expect("gap does not straddle the border")
        .expect("border survives the gap");
    assert!(
        (b_partial - b0).abs() < 1e-9 * b0,
        "border moved: clean {b0:.6e} vs partial {b_partial:.6e}"
    );

    // A transient fault the recovery ladder absorbs: the point is
    // Recovered, nothing fails, confidence stays full, and the border
    // stays put within recovery tolerance.
    let faults = CampaignFaults::new().with_fault(
        fault_idx,
        FaultPlan::new().inject_at(10, FaultKind::NanResidual),
    );
    let recovered = session
        .planes_faulted(&defect, &op, &r_values, 1, &faults)
        .expect("recovered campaign runs");
    assert!(recovered.report.accounts_for(r_values.len()));
    assert_eq!(recovered.report.failed(), 0);
    assert_eq!(recovered.report.recovered(), 1);
    assert!(recovered.confidence.is_full());
    assert!(recovered.gaps().is_empty());
    let b_rec = recovered
        .border_from_intersection()
        .unwrap()
        .expect("border still present");
    assert!(
        (b_rec - b0).abs() < 0.05 * b0,
        "recovered border drifted: clean {b0:.4e} vs {b_rec:.4e}"
    );
}

#[test]
fn border_straddling_gap_is_rejected() {
    let session = Session::with_design(fast_design());
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    // The cell-open border sits between 1e6 and 1e7 on this grid (the w0 ×
    // Vsa margin changes sign there); killing the 1e6 point leaves a gap
    // bracketed by 1e5 and 1e7 that straddles the crossing.
    let r_values = [1e4, 1e5, 1e6, 1e7];
    let faults = CampaignFaults::new().with_fault(2, FaultPlan::always(FaultKind::NanResidual));
    let err = session
        .planes_faulted(&defect, &op, &r_values, 1, &faults)
        .unwrap_err();
    match err {
        CoreError::BorderInGap { gap, .. } => {
            assert!(
                gap.0 < gap.1 && gap.0 >= 1e4 && gap.1 <= 1e7,
                "gap {gap:?} outside sweep"
            );
        }
        other => panic!("expected BorderInGap, got {other}"),
    }
}

#[test]
fn failed_edge_point_is_unrecoverable() {
    let session = Session::with_design(fast_design());
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = [1e4, 1e5, 1e6, 1e7];
    let faults =
        CampaignFaults::new().with_fault(0, FaultPlan::always(FaultKind::ForcedDivergence));
    let err = session
        .planes_faulted(&defect, &op, &r_values, 1, &faults)
        .unwrap_err();
    match err {
        CoreError::SweepFailed {
            failed,
            total,
            first_reason,
            ..
        } => {
            assert_eq!(failed, 1);
            assert_eq!(total, 4);
            assert!(!first_reason.is_empty());
        }
        other => panic!("expected SweepFailed, got {other}"),
    }
}
