//! End-to-end contract of the metrics registry on a real campaign: the
//! deterministic snapshot must be **bit-identical** (as serialized JSON)
//! for thread counts 1, 2, 4, and 8, and the `DSO_METRICS` export path
//! must round-trip through the JSON parser.
//!
//! The registry and its enable flag are process-global, so this file
//! holds exactly one `#[test]` — its own test binary is its isolation.

use dso_core::exec::CampaignConfig;
use dso_core::Session;
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::interp::logspace;
use dso_obs::metrics::MetricsSnapshot;

/// Coarse time step so debug-mode campaigns stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

fn run_campaign(threads: usize) {
    let defect = Defect::cell_open(BitLineSide::True);
    let r_values = logspace(1e4, 1e7, 6).expect("valid sweep");
    let config = CampaignConfig::with_threads(threads).with_chunk(2);
    let session = Session::with_design(fast_design()).with_config(config);
    session
        .planes(&defect, &OperatingPoint::nominal(), &r_values, 1)
        .expect("campaign runs");
}

#[test]
fn deterministic_snapshot_is_bit_identical_across_thread_counts() {
    dso_obs::set_metrics_enabled(true);
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        dso_obs::metrics::reset();
        run_campaign(threads);
        let snap = dso_obs::metrics::snapshot();

        // The campaign actually flowed through every instrumented layer.
        assert_eq!(snap.counter("campaign.points"), 6, "threads = {threads}");
        assert!(snap.counter("newton.solves") > 0, "threads = {threads}");
        assert!(
            snap.counter("newton.lu_refactors") > 0,
            "threads = {threads}"
        );
        assert!(snap.counter("spice.transients") > 0, "threads = {threads}");
        assert!(snap.counter("dram.op_runs") > 0, "threads = {threads}");
        assert!(snap.counter("exec.chunks") > 0, "threads = {threads}");

        // Wall-clock metrics exist but are excluded from the deterministic
        // view; the rest must serialize to identical bytes for every
        // thread count.
        let det_json = snap.deterministic_only().to_json();
        assert!(!det_json.contains("exec.chunk_ms"), "nondet metric leaked");
        match &reference {
            None => reference = Some(det_json),
            Some(r) => assert_eq!(r, &det_json, "threads = {threads}"),
        }
    }

    // DSO_METRICS export: the campaign layer writes the snapshot to the
    // requested path; the file must parse back losslessly.
    let path = std::env::temp_dir().join(format!("dso_metrics_{}.json", std::process::id()));
    std::env::set_var("DSO_METRICS", &path);
    dso_obs::metrics::reset();
    run_campaign(2);
    std::env::remove_var("DSO_METRICS");
    let text = std::fs::read_to_string(&path).expect("DSO_METRICS file written");
    let parsed = MetricsSnapshot::from_json(&text).expect("exported snapshot parses");
    assert_eq!(parsed.counter("campaign.points"), 6);
    assert_eq!(
        parsed.to_json(),
        text,
        "export must re-serialize identically"
    );
    let _ = std::fs::remove_file(&path);

    // Disabling stops recording without losing registrations.
    dso_obs::set_metrics_enabled(false);
    dso_obs::metrics::reset();
    run_campaign(1);
    let off = dso_obs::metrics::snapshot();
    assert_eq!(
        off.counter("campaign.points"),
        0,
        "disabled registry recorded"
    );
}
