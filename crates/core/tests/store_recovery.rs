//! Property-style recovery contract of the persistent result store:
//! *opening never aborts*, whatever the file holds. A store truncated at
//! every possible byte offset of its final record, or corrupted at random
//! positions, must still open, must keep every undamaged record
//! bit-intact, and must count what it dropped.

use dso_core::store::{ResultStore, StoredResult};
use dso_core::SimValue;
use dso_num::testing::TestRng;
use dso_spice::recovery::RecoveryStats;
use std::path::PathBuf;

const CONTEXT: u64 = 0x5eed_cafe;

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dso-store-prop-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// A deterministic record whose payload exercises every value shape and
/// carries seed-dependent f64 bits worth checking for bit-identity.
fn record(rng: &mut TestRng, i: u64) -> StoredResult {
    let value = match i % 3 {
        0 => SimValue::Scalar(rng.range(-2.0, 2.0)),
        1 => SimValue::Series(rng.vec(1 + (i as usize % 5), 0.0, 1.8)),
        _ => SimValue::Outcomes {
            vc_ends: rng.vec(3, 0.0, 1.8),
            reads: (0..4)
                .map(|_| match rng.index(3) {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                })
                .collect(),
        },
    };
    let stats = RecoveryStats {
        solve_attempts: rng.index(100),
        newton_iters: rng.index(10_000),
        method_fallbacks: rng.index(5),
        subdivisions: rng.index(8),
        deepest_subdivision: rng.index(4),
        gmin_retries: rng.index(3),
        recovered_steps: rng.index(20),
        lu_refactors: rng.index(5_000),
        lu_reuses: rng.index(5_000),
        bypass_hits: rng.index(50_000),
        bypass_misses: rng.index(50_000),
    };
    StoredResult { value, stats }
}

/// Writes `n` seeded records through a store and returns the originals.
fn seed_store(path: &PathBuf, n: u64, seed: u64) -> Vec<StoredResult> {
    let store = ResultStore::open(path, CONTEXT).expect("open fresh store");
    let mut rng = TestRng::new(seed);
    let originals: Vec<StoredResult> = (0..n)
        .map(|i| {
            let r = record(&mut rng, i);
            store.put(i, &r.value, &r.stats);
            r
        })
        .collect();
    assert_eq!(store.stats().appends, n as usize, "all appends persisted");
    originals
}

#[test]
fn truncation_at_every_byte_offset_of_the_final_record_recovers() {
    let path = tmp_path("truncate-sweep");
    let originals = seed_store(&path, 4, 11);
    let full = std::fs::read(&path).expect("store bytes");

    // Length of the final record on disk = growth of the file when it was
    // appended; recompute from a 3-record prefix store.
    let prefix_path = tmp_path("truncate-prefix");
    seed_store(&prefix_path, 3, 11);
    let prefix_len = std::fs::metadata(&prefix_path).expect("prefix store").len() as usize;
    let _ = std::fs::remove_file(&prefix_path);
    assert!(prefix_len < full.len());

    // Cut the file at *every* byte offset inside the final record: from
    // "record 4 fully missing" up to "one byte short of complete".
    for cut in prefix_len..full.len() {
        std::fs::write(&path, &full[..cut]).expect("write truncated store");
        let store = ResultStore::open(&path, CONTEXT)
            .unwrap_or_else(|e| panic!("open must survive truncation at byte {cut}: {e}"));
        let stats = store.stats();
        assert_eq!(
            stats.records_loaded, 3,
            "cut at {cut}: the three complete records survive: {stats:?}"
        );
        if cut > prefix_len {
            assert!(
                stats.torn_tail_bytes > 0,
                "cut at {cut} leaves a torn tail: {stats:?}"
            );
        }
        for (i, original) in originals.iter().take(3).enumerate() {
            assert_eq!(
                store.get(i as u64).as_ref(),
                Some(original),
                "cut at {cut}: record {i} must replay bit-intact"
            );
        }
        assert!(store.get(3).is_none(), "cut at {cut}: torn record is gone");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn random_byte_corruption_never_aborts_and_spares_undamaged_records() {
    let path = tmp_path("corrupt-random");
    let n = 6u64;
    let originals = seed_store(&path, n, 23);
    let full = std::fs::read(&path).expect("store bytes");
    let mut rng = TestRng::new(97);

    for trial in 0..50 {
        // Corrupt 1–4 random bytes (bit flips and byte rewrites).
        let mut bytes = full.clone();
        for _ in 0..rng.index_range(1, 5) {
            let at = rng.index(bytes.len());
            let flip = if rng.next_bool() {
                1u8 << rng.index(8)
            } else {
                rng.next_u64() as u8 | 1 // ensure the byte changes
            };
            bytes[at] ^= flip;
        }
        std::fs::write(&path, &bytes).expect("write corrupted store");

        let store = ResultStore::open(&path, CONTEXT)
            .unwrap_or_else(|e| panic!("trial {trial}: open must survive corruption: {e}"));
        let stats = store.stats();
        assert!(
            stats.records_loaded <= n as usize,
            "trial {trial}: {stats:?}"
        );
        // Whatever was dropped is accounted for, never silently ignored.
        if stats.records_loaded < n as usize {
            assert!(
                stats.recovered_anything(),
                "trial {trial}: dropped records must be counted: {stats:?}"
            );
        }
        // Every record the recovery DID keep must be bit-identical to its
        // original — a checksum pass implies an intact payload.
        for (i, original) in originals.iter().enumerate() {
            if let Some(kept) = store.get(i as u64) {
                assert_eq!(
                    &kept, original,
                    "trial {trial}: record {i} survived but with altered bits"
                );
            }
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corruption_then_compaction_round_trips_the_survivors() {
    let path = tmp_path("compact-roundtrip");
    let originals = seed_store(&path, 5, 41);
    let mut bytes = std::fs::read(&path).expect("store bytes");
    // Stomp a 16-byte run in the middle of the file.
    let mid = bytes.len() / 2;
    let end = (mid + 16).min(bytes.len() - 1);
    for b in &mut bytes[mid..end] {
        *b = 0xaa;
    }
    std::fs::write(&path, &bytes).expect("write corrupted store");

    // First open recovers and compacts...
    let survivors: Vec<(u64, StoredResult)> = {
        let store = ResultStore::open(&path, CONTEXT).expect("recovering open");
        assert!(store.stats().recovered_anything());
        assert_eq!(store.stats().compactions, 1);
        (0..5u64)
            .filter_map(|i| store.get(i).map(|r| (i, r)))
            .collect()
    };
    assert!(
        !survivors.is_empty(),
        "mid-file damage must not drop everything"
    );

    // ...so the second open sees a clean file with exactly the survivors.
    let clean = ResultStore::open(&path, CONTEXT).expect("clean reopen");
    let stats = clean.stats();
    assert!(!stats.recovered_anything(), "{stats:?}");
    assert_eq!(stats.records_loaded, survivors.len());
    for (key, survivor) in &survivors {
        assert_eq!(clean.get(*key).as_ref(), Some(survivor));
        assert_eq!(&originals[*key as usize], survivor);
    }
    let _ = std::fs::remove_file(&path);
}
