//! Contract of the memoizing evaluation service across analysis layers:
//! cached replays are bit-identical to cold runs at every thread count,
//! cross-workload reuse (border after plane campaign, shmoo over
//! campaign) turns overlapping requests into cache hits, failed and
//! fault-armed evaluations never pollute the cache, and in-flight
//! duplicates are deduplicated to a single computation.

use dso_core::analysis::{Analyzer, CampaignFaults, DetectionCondition, PlaneCampaign};
use dso_core::exec::CampaignConfig;
use dso_core::{EvalService, Session, SimRequest};
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::chaos::{FaultKind, FaultPlan};
use dso_num::interp::logspace;

/// Coarse time step so debug-mode campaigns stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

fn fast_service() -> EvalService {
    EvalService::new(Analyzer::new(fast_design()))
}

/// A session around a fresh fast service; reconfigure between calls with
/// [`Session::with_config`] to reuse its cache at another thread count.
fn fast_session(threads: usize) -> Session {
    Session::from_parts(
        fast_service(),
        CampaignConfig::with_threads(threads).with_chunk(2),
    )
}

fn sweep() -> Vec<f64> {
    logspace(1e4, 1e7, 6).expect("valid sweep")
}

fn campaign_on(session: &Session) -> PlaneCampaign {
    session
        .planes(
            &Defect::cell_open(BitLineSide::True),
            &OperatingPoint::nominal(),
            &sweep(),
            1,
        )
        .expect("campaign runs")
}

/// Bitwise equality of the physics outputs of two campaigns (perf stats
/// are excluded: a cached run legitimately reports hits where the cold
/// run reported misses).
fn assert_bit_identical(a: &PlaneCampaign, b: &PlaneCampaign, label: &str) {
    assert_eq!(a.planes, b.planes, "{label}: planes diverged");
    assert_eq!(a.report, b.report, "{label}: sweep report diverged");
    assert_eq!(a.confidence, b.confidence, "{label}: confidence diverged");
    assert_eq!(a.gaps(), b.gaps(), "{label}: gaps diverged");
}

#[test]
fn cached_campaign_is_bit_identical_to_cold_at_every_thread_count() {
    let mut session = fast_session(1);
    let cold = campaign_on(&session);
    assert_eq!(cold.perf.cache_hits, 0, "cold run must not hit the cache");
    assert!(cold.perf.cache_misses > 0);

    for threads in [1, 2, 4, 8] {
        session = session.with_config(CampaignConfig::with_threads(threads).with_chunk(2));
        let cached = campaign_on(&session);
        assert_bit_identical(&cold, &cached, &format!("threads = {threads}"));
        assert_eq!(
            cached.perf.cache_misses, 0,
            "threads = {threads}: cached repeat re-simulated"
        );
        assert_eq!(
            cached.perf.cache_hits, cold.perf.cache_misses,
            "threads = {threads}: every cold miss must replay as a hit"
        );
    }
}

#[test]
fn border_refinement_after_campaign_replays_grid_points() {
    let session = fast_session(2);
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = sweep();

    campaign_on(&session);
    let after_campaign = session.service().cache_stats();

    // Metrics gate for the cross-layer reuse contract: the bisection's
    // grid walk re-requests plane points, so `eval.cache_hits` must move.
    dso_obs::set_metrics_enabled(true);
    let hits_metric_before = dso_obs::metrics::snapshot().counter("eval.cache_hits");

    let border = session
        .refine_border(&defect, &op, &r_values, 1, 0.05)
        .expect("refinement runs")
        .expect("sweep straddles the border");
    assert!(border.resistance.is_finite() && border.resistance > 0.0);

    let after_border = session.service().cache_stats();
    assert!(
        after_border.hits > after_campaign.hits,
        "border refinement after a plane campaign must hit the cache \
         (hits {} -> {})",
        after_campaign.hits,
        after_border.hits
    );
    let hits_metric_after = dso_obs::metrics::snapshot().counter("eval.cache_hits");
    assert!(
        hits_metric_after > hits_metric_before,
        "eval.cache_hits metric did not move ({hits_metric_before} -> {hits_metric_after})"
    );
}

#[test]
fn repeated_bisection_is_bit_identical_and_fully_cached() {
    let session = fast_session(1);
    let defect = Defect::cell_open(BitLineSide::True);
    let detection = DetectionCondition::default_for(&defect, 2);
    let op = OperatingPoint::nominal();

    let first = session
        .border(&defect, &detection, &op, 0.05)
        .expect("border exists");
    let misses_after_first = session.service().cache_stats().misses;
    let second = session
        .border(&defect, &detection, &op, 0.05)
        .expect("border exists");

    assert_eq!(
        first.resistance.to_bits(),
        second.resistance.to_bits(),
        "repeat bisection diverged"
    );
    assert_eq!(
        session.service().cache_stats().misses,
        misses_after_first,
        "repeat bisection re-simulated instead of replaying"
    );
    assert!(session.service().cache_stats().hits >= u64::try_from(second.evaluations).unwrap());
}

#[test]
fn shmoo_over_campaign_row_replays_from_cache() {
    let session = fast_session(1);
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = sweep();

    campaign_on(&session);
    let before = session.service().cache_stats();

    // The nominal-Vdd row of this shmoo issues exactly the `w0`-settle
    // and `Vsa` requests the campaign evaluated: two hits per grid point.
    let plot = session
        .shmoo(&defect, 1, &r_values, "vdd", &[op.vdd], |vdd| {
            Ok(OperatingPoint { vdd, ..op })
        })
        .expect("shmoo generates");
    assert_eq!(
        plot.outcome(0, 0),
        dso_shmoo::Outcome::Pass,
        "the lowest resistance is a healthy cell:\n{}",
        plot.render_ascii()
    );

    let after = session.service().cache_stats();
    assert!(
        after.hits - before.hits >= 2 * r_values.len() as u64,
        "expected >= {} hits from the overlapping row, got {}",
        2 * r_values.len(),
        after.hits - before.hits
    );
    assert_eq!(
        after.misses, before.misses,
        "the overlapping shmoo row must not re-simulate"
    );
}

#[test]
fn faulted_evaluations_bypass_and_never_poison_the_cache() {
    let session = Session::from_parts(fast_service(), CampaignConfig::serial().with_chunk(2));
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = sweep();

    // Kill one interior sweep point outright.
    let faults = CampaignFaults::new().with_fault(1, FaultPlan::always(FaultKind::NanResidual));
    let faulted = session
        .planes_faulted(&defect, &op, &r_values, 1, &faults)
        .expect("campaign degrades gracefully");
    assert_eq!(faulted.report.failed(), 1);

    let stats = session.service().cache_stats();
    assert!(
        stats.bypasses >= 1,
        "fault-armed requests must skip the cache"
    );
    let entries_after_faulted = stats.entries;

    // A clean campaign on the same service must find no poisoned entry:
    // the faulted point simulates fresh (misses grow) and succeeds.
    let clean = session
        .planes(&defect, &op, &r_values, 1)
        .expect("clean campaign runs");
    assert_eq!(clean.report.failed(), 0);
    let clean_stats = session.service().cache_stats();
    assert!(
        clean_stats.misses > stats.misses,
        "the previously faulted point must re-simulate, not replay"
    );
    assert!(
        clean_stats.entries > entries_after_faulted,
        "the fresh result must now be cached"
    );
}

#[test]
fn concurrent_duplicate_requests_compute_once() {
    let service = fast_service();
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let n = 8;

    // Eight identical requests fanned out across chunks (the small-grid
    // policy coarsens the chunk-1 request to pairs): one computes, the
    // rest either wait on the in-flight slot or hit the fresh entry.
    let requests: Vec<SimRequest> = (0..n).map(|_| SimRequest::vsa(&defect, 2e5, &op)).collect();
    let config = CampaignConfig::with_threads(4).with_chunk(1);
    let values: Vec<f64> = service
        .eval_batch(&requests, &config)
        .into_iter()
        .map(|r| r.expect("vsa solves").scalar().expect("scalar shape"))
        .collect();
    assert!(values.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));

    let stats = service.cache_stats();
    assert_eq!(stats.inserts, 1, "duplicates must compute exactly once");
    assert_eq!(stats.misses, 1);
    // Every duplicate replays as a hit; the ones that arrived while the
    // first computation was still in flight additionally blocked on it.
    assert_eq!(
        stats.hits,
        n as u64 - 1,
        "every duplicate must replay: {stats:?}"
    );
    assert!(stats.dedup_waits <= stats.hits);
    assert_eq!(stats.entries, 1);
}
