//! Acceptance tests of the campaign service daemon: protocol robustness
//! (malformed and oversized frames get structured errors without killing
//! the connection), deadline and backpressure semantics, and
//! killed-client cleanup (in-flight campaigns cancel cooperatively while
//! their persisted chunks stay replayable).

use dso_core::analysis::Analyzer;
use dso_core::eval::EvalService;
use dso_core::exec::CampaignConfig;
use dso_core::service::{
    serve_connection, Daemon, ErrorCode, JobKind, JobRequest, Priority, Reply, ReplySink,
    ServeConfig,
};
use dso_core::store::ResultStore;
use dso_core::Session;
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::interp::logspace;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Coarse time step so debug-mode simulations stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

fn fast_session() -> Session {
    Session::from_parts(
        EvalService::new(Analyzer::new(fast_design())),
        CampaignConfig::with_threads(1).with_chunk(1),
    )
}

/// A deadline-0 campaign: aborts at the pre-run check, so it exercises
/// queue/deadline plumbing without simulating anything.
fn instant_campaign(id: &str) -> JobRequest {
    JobRequest {
        id: id.into(),
        kind: JobKind::Campaign {
            defect: Defect::cell_open(BitLineSide::True),
            op: OperatingPoint::nominal(),
            r_values: vec![1e4, 1e5, 1e6],
            n_ops: 1,
        },
        priority: Priority::Bulk,
        deadline_ms: Some(0.0),
    }
}

#[test]
fn malformed_and_oversized_frames_get_errors_without_killing_the_daemon() {
    let daemon = Daemon::start(
        fast_session(),
        ServeConfig {
            workers: 1,
            max_frame_bytes: 128,
            ..ServeConfig::default()
        },
    );
    // A garbage line, an oversized line, a structurally bad job, a job
    // with an unknown kind — then proof of life: a stats frame must still
    // be answered on the same connection.
    let script = format!(
        "this is not json\n{}\n{{\"id\":7,\"kind\":\"border\"}}\n\
         {{\"id\":\"j\",\"kind\":\"warp\",\"defect\":{{\"site\":\"O3\",\"side\":\"true\"}}}}\n\
         {{\"control\":\"stats\",\"id\":\"s1\"}}\n{{\"control\":\"shutdown\"}}\n",
        "x".repeat(200)
    );
    let mut out: Vec<u8> = Vec::new();
    serve_connection(&daemon.handle(), Cursor::new(script.into_bytes()), &mut out)
        .expect("read side stays healthy");
    let stats = daemon.shutdown();

    let replies: Vec<Reply> = String::from_utf8(out)
        .expect("utf8 replies")
        .lines()
        .map(|l| Reply::parse(l).expect("well-formed reply"))
        .collect();
    assert_eq!(replies.len(), 5, "{replies:?}");
    let code_of = |r: &Reply| match r {
        Reply::Error { code, .. } => *code,
        other => panic!("expected error reply, got {other:?}"),
    };
    assert_eq!(code_of(&replies[0]), ErrorCode::ParseError);
    assert_eq!(code_of(&replies[1]), ErrorCode::OversizedFrame);
    assert_eq!(code_of(&replies[2]), ErrorCode::BadRequest);
    assert_eq!(code_of(&replies[3]), ErrorCode::BadRequest);
    assert!(
        matches!(&replies[4], Reply::Stats { id, .. } if id == "s1"),
        "daemon must still answer after bad frames: {:?}",
        replies[4]
    );
    // Nothing ever reached the admission queue.
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn expired_deadline_reports_deadline_exceeded() {
    let daemon = Daemon::start(
        fast_session(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let handle = daemon.handle();
    let replies: Arc<Mutex<Vec<Reply>>> = Arc::new(Mutex::new(Vec::new()));
    let sink: ReplySink = {
        let replies = Arc::clone(&replies);
        Arc::new(move |reply| {
            replies.lock().unwrap().push(reply);
            true
        })
    };
    let request = instant_campaign("late");
    let control = handle.make_control(&request);
    assert!(handle.submit(request, control, sink));
    let stats = daemon.shutdown();

    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.completed, 0);
    let replies = replies.lock().unwrap();
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert!(matches!(&replies[0], Reply::Accepted { id, .. } if id == "late"));
    assert!(
        matches!(
            &replies[1],
            Reply::Error {
                id: Some(id),
                code: ErrorCode::DeadlineExceeded,
                ..
            } if id == "late"
        ),
        "{:?}",
        replies[1]
    );
}

#[test]
fn full_admission_queue_replies_queue_full() {
    let daemon = Daemon::start(
        fast_session(),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
    );
    let handle = daemon.handle();

    // Job A's sink parks the only worker on its terminal reply until we
    // release it, so admissions below stay deterministic: B fills the
    // one-slot queue, C must bounce.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Mutex::new(release_rx);
    let blocking_sink: ReplySink = Arc::new(move |reply| {
        if reply.is_terminal() {
            let _ = entered_tx.send(());
            let _ = release_rx.lock().unwrap().recv();
        }
        true
    });
    let a = instant_campaign("a");
    let control = handle.make_control(&a);
    assert!(handle.submit(a, control, blocking_sink));
    entered_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("worker picked up job a");

    let replies: Arc<Mutex<Vec<Reply>>> = Arc::new(Mutex::new(Vec::new()));
    let sink: ReplySink = {
        let replies = Arc::clone(&replies);
        Arc::new(move |reply| {
            replies.lock().unwrap().push(reply);
            true
        })
    };
    let b = instant_campaign("b");
    let control = handle.make_control(&b);
    assert!(handle.submit(b, control, Arc::clone(&sink)), "b fits");
    let c = instant_campaign("c");
    let control = handle.make_control(&c);
    assert!(!handle.submit(c, control, Arc::clone(&sink)), "c bounces");

    release_tx.send(()).expect("release worker");
    let stats = daemon.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.rejected, 1);

    let replies = replies.lock().unwrap();
    let rejection = replies
        .iter()
        .find(|r| matches!(r, Reply::Error { id: Some(id), .. } if id == "c"))
        .expect("c got a terminal reply");
    assert!(
        matches!(
            rejection,
            Reply::Error {
                code: ErrorCode::QueueFull,
                ..
            }
        ),
        "{rejection:?}"
    );
    // b was admitted and ran (its zero deadline aborted it at pickup).
    assert_eq!(stats.deadline_exceeded, 2);
}

#[test]
fn design_sweep_jobs_run_and_bad_configs_get_bad_request() {
    let daemon = Daemon::start(
        fast_session(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    // A real two-design sweep (same electricals under two names, so the
    // healthy reference dedups), a config that fails validation at parse
    // time, a space that fails semantic validation at run time (duplicate
    // names), and proof of life.
    let script = concat!(
        r#"{"id":"ds","kind":"design_sweep","designs":[{"name":"a","dt_fraction":0.004},{"name":"b","dt_fraction":0.004}],"defects":[{"site":"O3","side":"true"}],"r_points":2,"n_ops":1}"#,
        "\n",
        r#"{"id":"bad","kind":"design_sweep","designs":[{"name":"x","cell_cap":-1.0}],"defects":[{"site":"O3","side":"true"}]}"#,
        "\n",
        r#"{"id":"dup","kind":"design_sweep","designs":[{"name":"x","dt_fraction":0.004},{"name":"x","dt_fraction":0.004}],"defects":[{"site":"O3","side":"true"}],"r_points":2,"n_ops":1}"#,
        "\n",
        r#"{"control":"stats","id":"s1"}"#,
        "\n",
        r#"{"control":"shutdown"}"#,
        "\n",
    );
    let mut out: Vec<u8> = Vec::new();
    serve_connection(
        &daemon.handle(),
        Cursor::new(script.as_bytes().to_vec()),
        &mut out,
    )
    .expect("read side stays healthy");
    daemon.shutdown();

    let replies: Vec<Reply> = String::from_utf8(out)
        .expect("utf8 replies")
        .lines()
        .map(|l| Reply::parse(l).expect("well-formed reply"))
        .collect();

    // The sweep completed with both designs and at least one shared
    // healthy-reference grid (the acceptance dedup counter on the wire).
    let done = replies
        .iter()
        .find_map(|r| match r {
            Reply::Done { id, result, .. } if id == "ds" => Some(result),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no done for ds: {replies:?}"));
    let designs = done
        .get("designs")
        .and_then(|d| d.as_arr())
        .expect("designs array");
    assert_eq!(designs.len(), 2);
    let dedup = done
        .get("cross_design_dedup")
        .and_then(|d| d.as_u64())
        .expect("dedup count");
    assert!(dedup >= 1, "equal-plan designs must dedup: {done}");

    // The invalid config was refused at parse time, the duplicate-name
    // space at run time — both as structured bad_request, and the daemon
    // kept serving afterwards.
    for id in ["bad", "dup"] {
        assert!(
            replies.iter().any(|r| matches!(
                r,
                Reply::Error {
                    id: Some(rid),
                    code: ErrorCode::BadRequest,
                    ..
                } if rid == id
            )),
            "no bad_request for {id}: {replies:?}"
        );
    }
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, Reply::Stats { id, .. } if id == "s1")),
        "daemon must still answer after bad design sweeps: {replies:?}"
    );
}

#[cfg(unix)]
#[test]
fn killed_client_cancels_campaign_but_persisted_chunks_replay() {
    let analyzer = Analyzer::new(fast_design());
    let context = EvalService::context_for(&analyzer);
    let store_path = std::env::temp_dir().join(format!(
        "dso-service-test-{}-{:?}.bin",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&store_path);
    let store = ResultStore::open(&store_path, context).expect("open store");
    let session = Session::from_parts(
        EvalService::with_store(analyzer.clone(), store).expect("context matches"),
        CampaignConfig::with_threads(1).with_chunk(1),
    );
    let daemon = Daemon::start(
        session,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let handle = daemon.handle();

    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = logspace(1e4, 1e7, 8).expect("valid sweep");

    let (client, server) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let conn = std::thread::spawn({
        let handle = handle.clone();
        move || {
            let reader = BufReader::new(server.try_clone().expect("clone stream"));
            let _ = serve_connection(&handle, reader, server);
        }
    });

    // Submit a campaign, wait for the first progress frame (>= 1 chunk
    // simulated and persisted), then vanish without a shutdown frame.
    let frame = format!(
        "{{\"id\":\"doomed\",\"kind\":\"campaign\",\
         \"defect\":{{\"site\":\"O3\",\"side\":\"true\"}},\
         \"r_values\":{:?},\"n_ops\":1}}\n",
        r_values.as_slice()
    );
    let mut writer = client.try_clone().expect("clone client");
    writer.write_all(frame.as_bytes()).expect("send frame");
    writer.flush().expect("flush frame");
    let mut reader = BufReader::new(client);
    let mut saw_chunk = false;
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read reply") > 0 {
        let reply = Reply::parse(line.trim_end()).expect("well-formed reply");
        line.clear();
        if matches!(reply, Reply::Chunk { .. }) {
            saw_chunk = true;
            break;
        }
        assert!(
            !reply.is_terminal(),
            "campaign ended before the client died: {reply:?}"
        );
    }
    assert!(saw_chunk, "no progress frame before EOF");
    drop(reader);
    drop(writer);

    conn.join().expect("connection thread");
    let stats = daemon.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(
        stats.cancelled, 1,
        "dead client's campaign must cancel, not complete: {stats:?}"
    );

    // The chunks persisted before the cancellation replay from disk on a
    // fresh service against the reopened store.
    let store = ResultStore::open(&store_path, context).expect("reopen store");
    let resume = Session::from_parts(
        EvalService::with_store(analyzer, store).expect("context matches"),
        CampaignConfig::with_threads(1).with_chunk(1),
    );
    let replayed = resume
        .planes(&defect, &op, &r_values, 1)
        .expect("resumed campaign runs");
    assert!(replayed.report.accounts_for(r_values.len()));
    assert!(
        replayed.perf.disk_hits >= 1,
        "no persisted chunk replayed from disk: {:?}",
        replayed.perf
    );
    let _ = std::fs::remove_file(&store_path);
}
