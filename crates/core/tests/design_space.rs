//! Acceptance tests of the design-space engine: a config-generated
//! column must drive campaigns bit-identically to the directly
//! constructed legacy [`ColumnDesign`] at every thread count, and a
//! multi-design sweep must reuse the shared healthy-reference grid
//! across equal-plan designs (the `cross_design_dedup` counter).

use dso_core::analysis::Analyzer;
use dso_core::analysis::{DesignParam, DesignSpace, DesignSweepRequest};
use dso_core::eval::EvalService;
use dso_core::exec::CampaignConfig;
use dso_core::Session;
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, DesignConfig, ReferenceScheme};
use dso_num::interp::logspace;

/// Coarse time step so debug-mode simulations stay affordable.
const FAST_DT: f64 = 1.0 / 250.0;

fn fast_config(name: &str) -> DesignConfig {
    DesignConfig {
        name: name.to_string(),
        dt_fraction: FAST_DT,
        ..DesignConfig::paper_default()
    }
}

fn session_for(design: ColumnDesign, threads: usize) -> Session {
    Session::from_parts(
        EvalService::new(Analyzer::new(design)),
        CampaignConfig::with_threads(threads).with_chunk(1),
    )
}

#[test]
fn config_generated_column_campaigns_bit_identically_to_the_legacy_design() {
    // The same electricals, reached two ways: through the declarative
    // config pipeline and by constructing the legacy struct directly.
    let generated = fast_config("paper-fast")
        .expand()
        .expect("config expands")
        .generate_design();
    let legacy = ColumnDesign {
        dt_fraction: FAST_DT,
        ..ColumnDesign::default()
    };
    assert_eq!(generated, legacy, "expansion must reproduce the struct");

    let defect = Defect::cell_open(BitLineSide::True);
    let op = dso_dram::design::OperatingPoint::nominal();
    let r_values = logspace(1e4, 1e7, 3).expect("valid sweep");

    let reference = session_for(legacy.clone(), 1)
        .planes(&defect, &op, &r_values, 1)
        .expect("legacy campaign runs");
    for threads in [1, 2, 4, 8] {
        let campaign = session_for(generated.clone(), threads)
            .planes(&defect, &op, &r_values, 1)
            .expect("generated campaign runs");
        assert_eq!(
            campaign.planes, reference.planes,
            "thread count {threads}: config-generated planes diverged"
        );
    }
}

#[test]
fn three_design_sweep_reuses_the_shared_healthy_reference() {
    // "skewed" spells out the exact skew the "dummy" scheme resolves to,
    // so the two configs expand to one electrical plan; "tall" is a
    // genuinely different design (two cells per bit line doubles Cbl).
    let base = fast_config("skewed");
    let dummy_skew = ReferenceScheme::DummyCell.resolve_skew(
        base.cell_cap,
        base.cells_per_bitline as f64 * base.bl_cap_per_cell,
    );
    let skewed = DesignConfig {
        reference: ReferenceScheme::SkewedRef { skew: dummy_skew },
        ..base
    };
    let dummy = DesignConfig {
        name: "dummy".to_string(),
        reference: ReferenceScheme::DummyCell,
        ..skewed.clone()
    };
    let tall = DesignConfig {
        name: "tall".to_string(),
        cells_per_bitline: 2,
        ..skewed.clone()
    };
    let space = DesignSpace::new(vec![skewed, dummy, tall]).expect("valid space");
    assert_eq!(space.len(), 3);
    assert_eq!(space.distinct_plans(), 2);

    let session = session_for(ColumnDesign::default(), 1);
    let request = DesignSweepRequest::new(vec![Defect::cell_open(BitLineSide::True)])
        .with_r_points(2)
        .with_n_ops(1);
    let result = session
        .design_sweep(&space, &request)
        .expect("sweep completes");

    assert_eq!(result.designs.len(), 3);
    assert_eq!(result.distinct_plans, 2);
    assert!(
        result.cross_design_dedup() >= 1,
        "equal-plan designs must share the healthy-reference grid: {:?}",
        result.perf
    );
    // The shared-plan designs report identical coverage; the tall design
    // is electrically different.
    assert_eq!(result.designs[0].cells, result.designs[1].cells);
    assert_ne!(result.designs[0].fingerprint, result.designs[2].fingerprint);
    // The dedup count surfaces in the perf display and the trend table
    // orders all three designs.
    assert!(
        format!("{}", result.perf).contains("cross-design reuse"),
        "{}",
        result.perf
    );
    let trend = result.trend_table(DesignParam::TransferRatio);
    assert!(trend.contains("transfer ratio"), "{trend}");
    for report in &result.designs {
        let matrix = report.coverage_matrix();
        assert!(matrix.contains("O3 (true)"), "{matrix}");
    }
}
