//! Kill-and-resume contract of the persistent result store: a campaign
//! killed mid-write leaves a torn store; a restarted campaign against
//! that store replays every completed point from disk — bit-identically
//! at every thread count — and recomputes only what is missing. A full
//! replay against a complete store reproduces the original campaign
//! bit-for-bit without a single solve.

use dso_core::analysis::{Analyzer, PlaneCampaign};
use dso_core::exec::CampaignConfig;
use dso_core::store::ResultStore;
use dso_core::{EvalService, Session};
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::chaos::{FaultPlan, IoFaultKind};
use dso_num::interp::logspace;
use std::path::PathBuf;

/// Coarse time step so debug-mode campaigns stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

fn analyzer() -> Analyzer {
    Analyzer::new(fast_design())
}

fn sweep() -> Vec<f64> {
    logspace(1e4, 1e7, 6).expect("valid sweep")
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dso-store-resume-{}-{name}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Wraps a prepared service (usually store-backed) in a session running
/// at `threads` workers.
fn session_on(service: EvalService, threads: usize) -> Session {
    Session::from_parts(service, CampaignConfig::with_threads(threads).with_chunk(2))
}

fn campaign_on(session: &Session) -> PlaneCampaign {
    session
        .planes(
            &Defect::cell_open(BitLineSide::True),
            &OperatingPoint::nominal(),
            &sweep(),
            1,
        )
        .expect("campaign runs")
}

/// Bitwise equality of the physics outputs of two campaigns.
fn assert_bit_identical(a: &PlaneCampaign, b: &PlaneCampaign, label: &str) {
    assert_eq!(a.planes, b.planes, "{label}: planes diverged");
    assert_eq!(a.report, b.report, "{label}: sweep report diverged");
    assert_eq!(a.confidence, b.confidence, "{label}: confidence diverged");
    assert_eq!(a.gaps(), b.gaps(), "{label}: gaps diverged");
    let border = |c: &PlaneCampaign| {
        c.border_from_intersection()
            .expect("no gap straddles the border")
            .map(f64::to_bits)
    };
    assert_eq!(border(a), border(b), "{label}: border bits diverged");
}

#[test]
fn killed_campaign_resumes_from_disk_bit_identically_at_every_thread_count() {
    // Reference: the uninterrupted cold campaign, no store.
    let reference_session = session_on(EvalService::new(analyzer()), 1);
    let reference = campaign_on(&reference_session);
    let total_requests = reference.perf.cache_hits + reference.perf.cache_misses;

    // "Kill" a campaign mid-write: from I/O ordinal 10 on, every append
    // short-writes (a prefix lands on disk, then the write "dies") —
    // after ordinal 0 is consumed by the open, appends 1–9 persist
    // cleanly and everything later leaves torn fragments, exactly the
    // on-disk state of a process killed during its 10th store write.
    let torn_path = tmp_path("torn");
    let plan = FaultPlan::new().inject_io_span(10, usize::MAX, IoFaultKind::ShortWrite);
    let context = EvalService::context_for(&analyzer());
    let store = ResultStore::open_with_faults(&torn_path, context, plan).expect("open store");
    let interrupted_session = session_on(
        EvalService::with_store(analyzer(), store).expect("context matches"),
        1,
    );
    let interrupted = campaign_on(&interrupted_session);
    let persisted = interrupted_session
        .service()
        .store()
        .expect("store attached")
        .stats()
        .appends;
    assert_eq!(persisted, 9, "appends before the injected kill");
    // The interrupted run itself still completed (write errors are
    // absorbed) and matches the reference — durability, not correctness,
    // is what the faults degraded.
    assert_bit_identical(&reference, &interrupted, "interrupted vs reference");
    drop(interrupted_session);
    let torn_bytes = std::fs::read(&torn_path).expect("torn store bytes");
    let _ = std::fs::remove_file(&torn_path);

    // Probe what recovery finds in the torn file.
    let probe_path = tmp_path("probe");
    std::fs::write(&probe_path, &torn_bytes).expect("write probe copy");
    let probe = ResultStore::open(&probe_path, context).expect("recovering open");
    let loaded = probe.stats().records_loaded;
    assert_eq!(loaded, persisted, "every clean append survives recovery");
    assert!(
        probe.stats().corrupt_skipped > 0 || probe.stats().torn_tail_bytes > 0,
        "the kill left damage to recover from: {:?}",
        probe.stats()
    );
    drop(probe);
    let _ = std::fs::remove_file(&probe_path);

    // Resume from identical torn bytes at every thread count: each run
    // must replay the persisted points from disk and produce the same
    // bits as every other thread count.
    let mut resumed: Vec<(usize, PlaneCampaign)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let path = tmp_path(&format!("resume-t{threads}"));
        std::fs::write(&path, &torn_bytes).expect("write resume copy");
        let store = ResultStore::open(&path, context).expect("recovering open");
        let session = session_on(
            EvalService::with_store(analyzer(), store).expect("context matches"),
            threads,
        );
        let campaign = campaign_on(&session);

        assert_eq!(
            campaign.perf.disk_hits, loaded,
            "threads = {threads}: every recovered record is replayed from disk"
        );
        assert_eq!(
            campaign.perf.cache_hits as u64 + campaign.perf.cache_misses as u64,
            total_requests as u64,
            "threads = {threads}: same request volume as the reference"
        );
        assert_eq!(
            campaign.perf.cache_misses,
            total_requests - loaded,
            "threads = {threads}: only the unpersisted points recompute"
        );
        let svc_stats = session.service().cache_stats();
        assert_eq!(svc_stats.disk_hits, loaded as u64);
        assert!(
            svc_stats.hit_rate() > 0.0,
            "cold resume must hit the disk tier"
        );
        let _ = std::fs::remove_file(&path);
        resumed.push((threads, campaign));
    }
    let (_, first) = &resumed[0];
    for (threads, campaign) in &resumed[1..] {
        assert_bit_identical(first, campaign, &format!("resume threads = {threads}"));
    }

    // The resumed campaign answers the same physics as the reference: the
    // replayed points are the reference's exact bits, and the recomputed
    // ones agree on the extracted border to well under the ≥3% tolerance
    // border consumers use.
    let ref_border = reference
        .border_from_intersection()
        .unwrap()
        .expect("border exists");
    let res_border = first
        .border_from_intersection()
        .unwrap()
        .expect("border exists");
    assert!(
        (res_border - ref_border).abs() < 0.01 * ref_border,
        "resumed border {res_border:.4e} vs reference {ref_border:.4e}"
    );
}

#[test]
fn full_replay_from_a_complete_store_is_bit_identical_and_solve_free() {
    let context = EvalService::context_for(&analyzer());
    let path = tmp_path("full");

    // Original campaign, fully persisted.
    let store = ResultStore::open(&path, context).expect("open store");
    let original_session = session_on(
        EvalService::with_store(analyzer(), store).expect("context matches"),
        2,
    );
    let original = campaign_on(&original_session);
    assert_eq!(
        original_session
            .service()
            .store()
            .unwrap()
            .stats()
            .write_errors,
        0
    );
    drop(original_session);

    // Replay on a fresh process (fresh service, reopened store): every
    // request is served from disk, no transient runs.
    let store = ResultStore::open(&path, context).expect("reopen store");
    assert!(
        !store.stats().recovered_anything(),
        "clean shutdown left a clean file"
    );
    let replay_session = session_on(
        EvalService::with_store(analyzer(), store).expect("context matches"),
        4,
    );
    let replay = campaign_on(&replay_session);
    assert_bit_identical(&original, &replay, "full replay");
    assert_eq!(
        replay.perf.cache_misses, 0,
        "nothing recomputes on full replay"
    );
    assert_eq!(
        replay.perf.disk_hits, replay.perf.cache_hits,
        "every hit comes from the disk tier on a fresh service"
    );
    // Replayed recovery accounting matches the original computation.
    assert_eq!(replay.perf.newton_iters, original.perf.newton_iters);
    assert_eq!(replay.perf.solve_attempts, original.perf.solve_attempts);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn changed_design_invalidates_the_store_instead_of_replaying_stale_bits() {
    let path = tmp_path("stale-design");
    let context = EvalService::context_for(&analyzer());
    let store = ResultStore::open(&path, context).expect("open store");
    let session = session_on(
        EvalService::with_store(analyzer(), store).expect("context matches"),
        1,
    );
    campaign_on(&session);
    let persisted = session.service().store().unwrap().stats().appends;
    assert!(persisted > 0);
    drop(session);

    // A different column design is a different context: the old records
    // are stale generations, skipped and compacted away — and attaching
    // the store under the WRONG context is a hard error.
    let changed = Analyzer::new(ColumnDesign {
        dt_fraction: 1.0 / 300.0,
        ..ColumnDesign::default()
    });
    let changed_context = EvalService::context_for(&changed);
    assert_ne!(context, changed_context);
    let store = ResultStore::open(&path, changed_context).expect("open under new context");
    assert_eq!(store.stats().stale_skipped, persisted);
    assert_eq!(store.stats().records_loaded, 0);
    assert!(EvalService::with_store(analyzer(), store).is_err());
    let _ = std::fs::remove_file(&path);
}
