//! Bit-identity contract of the batched structure-of-arrays solver path.
//!
//! A campaign run with `lanes > 1` routes every clean sweep point through
//! the SoA Newton backend (`dso_num::batch`), which advances several
//! points per iteration in lockstep. The contract: its planes, sweep
//! report, gaps, and border are **bit-identical** to the scalar path with
//! warm-start disabled, at every lane width and every thread count —
//! including partial lane tails (grids that don't divide the width) and
//! faulted points that fall out of the batch onto the scalar recovery
//! ladder mid-campaign.

use std::sync::OnceLock;

use dso_core::analysis::{Analyzer, CampaignFaults, PlaneCampaign};
use dso_core::exec::CampaignConfig;
use dso_core::{EvalService, Session};
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::chaos::{FaultKind, FaultPlan};
use dso_num::interp::logspace;
use dso_spice::SolverTuning;

/// Very coarse time step: this suite runs ~10 full campaigns in debug
/// mode, and bit-identity between two code paths holds at any step size.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 100.0,
        ..ColumnDesign::default()
    }
}

/// One campaign with a fresh service (no memo carry-over between runs —
/// a shared cache would make the comparison trivially true). Built with
/// an explicit [`SolverTuning`] so the suite covers both the
/// modified-Newton fast path (default tuning: LU reuse + device bypass)
/// and the legacy full-Newton path (`SolverTuning::legacy()`), rather
/// than whatever `DSO_LU_REUSE`/`DSO_BYPASS_TOL` happen to be set to.
fn campaign_tuned(
    config: CampaignConfig,
    faults: &CampaignFaults,
    r_values: &[f64],
    tuning: SolverTuning,
) -> PlaneCampaign {
    let analyzer = Analyzer::new(fast_design()).with_tuning(tuning);
    let session = Session::from_parts(EvalService::new(analyzer), config);
    session
        .planes_faulted(
            &Defect::cell_open(BitLineSide::True),
            &OperatingPoint::nominal(),
            r_values,
            1,
            faults,
        )
        .expect("campaign runs")
}

/// The scalar reference the batched path must reproduce exactly: lane
/// width 1, warm-start chaining off (lanes run every point cold), one
/// thread.
fn scalar_cold(faults: &CampaignFaults, r_values: &[f64]) -> PlaneCampaign {
    campaign_tuned(
        CampaignConfig::serial().with_warm_start(false),
        faults,
        r_values,
        SolverTuning::default(),
    )
}

/// Default-tuning campaign (modified-Newton LU reuse + device bypass on).
fn campaign(config: CampaignConfig, faults: &CampaignFaults, r_values: &[f64]) -> PlaneCampaign {
    campaign_tuned(config, faults, r_values, SolverTuning::default())
}

/// Bitwise equality of two campaigns: every plane curve, every report
/// entry, every gap, and the extracted border.
fn assert_bit_identical(a: &PlaneCampaign, b: &PlaneCampaign, label: &str) {
    assert_eq!(a.planes, b.planes, "{label}: planes diverged");
    assert_eq!(a.report, b.report, "{label}: sweep report diverged");
    assert_eq!(a.confidence, b.confidence, "{label}: confidence diverged");
    assert_eq!(a.gaps(), b.gaps(), "{label}: gaps diverged");
    let border = |c: &PlaneCampaign| {
        c.border_from_intersection()
            .expect("no gap straddles the border")
            .map(f64::to_bits)
    };
    assert_eq!(border(a), border(b), "{label}: border bits diverged");
}

/// The 30-point reference sweep of the acceptance criteria, shared across
/// the thread-count tests (computed once, scalar and cold).
fn reference_30() -> &'static (Vec<f64>, PlaneCampaign) {
    static REF: OnceLock<(Vec<f64>, PlaneCampaign)> = OnceLock::new();
    REF.get_or_init(|| {
        let r_values = logspace(1e4, 1e7, 30).expect("valid sweep");
        let clean = CampaignFaults::new();
        let reference = scalar_cold(&clean, &r_values);
        assert_eq!(reference.report.failed(), 0, "reference sweep is clean");
        (r_values, reference)
    })
}

/// Full lane width (8) over the 30-point reference sweep: the small-grid
/// chunk policy decomposes it 8 + 8 + 8 + 6, so the last chunk is a
/// partial lane tail. Each thread count must reproduce the scalar bits.
fn lanes8_at(threads: usize) {
    let (r_values, reference) = reference_30();
    let config = CampaignConfig::with_threads(threads).with_lanes(8);
    let batched = campaign(config, &CampaignFaults::new(), r_values);
    assert_bit_identical(
        reference,
        &batched,
        &format!("lanes = 8, threads = {threads}"),
    );
}

#[test]
fn lanes8_bit_identical_threads_1() {
    lanes8_at(1);
}

#[test]
fn lanes8_bit_identical_threads_2() {
    lanes8_at(2);
}

#[test]
fn lanes8_bit_identical_threads_4() {
    lanes8_at(4);
}

#[test]
fn lanes8_bit_identical_threads_8() {
    lanes8_at(8);
}

#[test]
fn every_lane_width_bit_identical_with_partial_tails() {
    // A 7-point sweep: no lane width divides it, so every width leaves a
    // partial tail group. Widths 2 and 3 exercise the 2-wide SoA backend
    // (3 additionally splits groups), 4 the 4-wide one; width 8 rides the
    // 30-point tests above.
    let r_values = logspace(2e4, 5e6, 7).expect("valid sweep");
    let clean = CampaignFaults::new();
    let reference = scalar_cold(&clean, &r_values);
    assert_eq!(reference.report.failed(), 0);
    for lanes in [2usize, 3, 4] {
        let config = CampaignConfig::with_threads(2).with_lanes(lanes);
        let batched = campaign(config, &clean, &r_values);
        assert_bit_identical(&reference, &batched, &format!("lanes = {lanes}"));
    }
}

#[test]
fn faulted_point_falls_back_mid_batch() {
    // Kill one interior point outright: in a lanes = 4 campaign the
    // faulted point drops out of the batch onto the scalar recovery
    // ladder while its chunk-mates stay batched. The degraded campaign —
    // gap, report accounting, confidence, surviving curve bits — must
    // match the scalar cold run under the identical fault plan.
    let r_values = logspace(1e4, 1e7, 6).expect("valid sweep");
    let faults = CampaignFaults::new().with_fault(1, FaultPlan::always(FaultKind::NanResidual));
    let reference = scalar_cold(&faults, &r_values);
    assert_eq!(reference.report.failed(), 1);
    assert_eq!(reference.gaps().len(), 1);
    let config = CampaignConfig::with_threads(2).with_lanes(4);
    let batched = campaign(config, &faults, &r_values);
    assert_eq!(batched.report.failed(), 1);
    assert_bit_identical(&reference, &batched, "faulted, lanes = 4");
}

#[test]
fn reference_sweep_exercises_lu_reuse_and_bypass() {
    // The fast path must actually fire on the reference sweep, or every
    // identity test above is vacuous: under default tuning the
    // modified-Newton policy should reuse more factorizations than it
    // builds, and the device bypass should land hits.
    let (_, reference) = reference_30();
    assert!(
        reference.perf.lu_reuse_rate() > 0.5,
        "LU reuse rate {:.2} never cleared 0.5 on the reference sweep",
        reference.perf.lu_reuse_rate()
    );
    assert!(
        reference.perf.bypass_hits > 0,
        "device bypass never hit on the reference sweep"
    );
}

#[test]
fn legacy_tuning_lanes_bit_identical_every_thread_count() {
    // The same scalar-vs-lanes contract with the fast path switched off
    // (`SolverTuning::legacy()`: no LU reuse, bypass tolerance 0): the
    // identity must hold for both tuning modes independently.
    let r_values = logspace(1e4, 1e7, 10).expect("valid sweep");
    let clean = CampaignFaults::new();
    let reference = campaign_tuned(
        CampaignConfig::serial().with_warm_start(false),
        &clean,
        &r_values,
        SolverTuning::legacy(),
    );
    assert_eq!(reference.report.failed(), 0, "legacy reference is clean");
    assert!(
        reference.perf.lu_reuses == 0 && reference.perf.bypass_hits == 0,
        "legacy tuning must not touch the fast path"
    );
    for (lanes, threads) in [(2usize, 1usize), (4, 2), (8, 4), (8, 8)] {
        let config = CampaignConfig::with_threads(threads).with_lanes(lanes);
        let batched = campaign_tuned(config, &clean, &r_values, SolverTuning::legacy());
        assert_bit_identical(
            &reference,
            &batched,
            &format!("legacy tuning, lanes = {lanes}, threads = {threads}"),
        );
    }
}

#[test]
fn legacy_tuning_faulted_lane_bit_identical() {
    // Mid-campaign lane fault under legacy tuning: the faulted point falls
    // out of the batch onto the scalar recovery ladder exactly as it does
    // with the fast path on.
    let r_values = logspace(1e4, 1e7, 6).expect("valid sweep");
    let faults = CampaignFaults::new().with_fault(2, FaultPlan::always(FaultKind::NanResidual));
    let reference = campaign_tuned(
        CampaignConfig::serial().with_warm_start(false),
        &faults,
        &r_values,
        SolverTuning::legacy(),
    );
    assert_eq!(reference.report.failed(), 1);
    let config = CampaignConfig::with_threads(2).with_lanes(4);
    let batched = campaign_tuned(config, &faults, &r_values, SolverTuning::legacy());
    assert_bit_identical(&reference, &batched, "legacy tuning, faulted, lanes = 4");
}
