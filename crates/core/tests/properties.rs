//! Property-based tests of the analysis layer's pure (non-electrical)
//! logic: detection conditions, side mappings, border bookkeeping, stress
//! kinds.

use dso_core::analysis::{BorderResistance, DetectionCondition, PhysOp};
use dso_core::stress::{Direction, StressKind};
use dso_defects::{BitLineSide, Defect};
use dso_dram::column::DefectSite;
use dso_dram::design::OperatingPoint;
use dso_dram::ops::Operation;
use proptest::prelude::*;

fn arb_site() -> impl Strategy<Value = DefectSite> {
    proptest::sample::select(DefectSite::ALL.to_vec())
}

fn arb_phys_ops() -> impl Strategy<Value = Vec<PhysOp>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::bool::ANY.prop_map(|high| PhysOp::Write { high }),
            proptest::bool::ANY.prop_map(|expect_high| PhysOp::Read { expect_high }),
        ],
        1..10,
    )
    .prop_filter("needs a read", |ops| {
        ops.iter().any(|o| matches!(o, PhysOp::Read { .. }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn detection_logic_mapping_is_an_involution(ops in arb_phys_ops()) {
        // Mapping to the comp side twice must recover the true-side
        // sequence: w0 <-> w1 swap and read expectations invert.
        let cond = DetectionCondition::new(ops).expect("has a read");
        let (true_seq, true_exp) = cond.to_logic(BitLineSide::True);
        let (comp_seq, comp_exp) = cond.to_logic(BitLineSide::Comp);
        prop_assert_eq!(true_seq.len(), comp_seq.len());
        for (t, c) in true_seq.iter().zip(&comp_seq) {
            match (t, c) {
                (Operation::W0, Operation::W1)
                | (Operation::W1, Operation::W0)
                | (Operation::R, Operation::R) => {}
                other => prop_assert!(false, "bad pair {other:?}"),
            }
        }
        prop_assert_eq!(true_exp.len(), comp_exp.len());
        for (t, c) in true_exp.iter().zip(&comp_exp) {
            prop_assert_eq!(*t, !*c);
        }
    }

    #[test]
    fn detection_display_is_side_consistent(ops in arb_phys_ops()) {
        let cond = DetectionCondition::new(ops).expect("has a read");
        let t = cond.display_for(BitLineSide::True);
        let c = cond.display_for(BitLineSide::Comp);
        // Swapping every 0 and 1 in the true rendering gives the comp one.
        let swapped: String = t
            .chars()
            .map(|ch| match ch {
                '0' => '1',
                '1' => '0',
                other => other,
            })
            .collect();
        prop_assert_eq!(swapped, c);
    }

    #[test]
    fn default_conditions_end_in_a_read(site in arb_site(), k in 1usize..6) {
        for side in [BitLineSide::True, BitLineSide::Comp] {
            let defect = Defect::new(site, side);
            let cond = DetectionCondition::default_for(&defect, k);
            let ends_in_read = matches!(cond.ops().last(), Some(PhysOp::Read { .. }));
            prop_assert!(ends_in_read);
            prop_assert!(cond.critical_write().is_some());
            // The first read checks the level the last write set — the
            // condition verifies its own critical write.
            let first_read_expect = cond.expected_level();
            prop_assert_eq!(Some(first_read_expect), cond.critical_write());
        }
    }

    #[test]
    fn border_stressfulness_is_a_strict_order(
        r1 in 1e3f64..1e9,
        r2 in 1e3f64..1e9,
        fails_above in proptest::bool::ANY,
    ) {
        let a = BorderResistance { resistance: r1, fails_above, evaluations: 0 };
        let b = BorderResistance { resistance: r2, fails_above, evaluations: 0 };
        // Exactly one of <, >, == holds.
        let a_less = a.less_stressful_than(&b);
        let b_less = b.less_stressful_than(&a);
        prop_assert!(!(a_less && b_less));
        if r1 != r2 {
            prop_assert!(a_less || b_less);
        }
        // failing_decades agrees with the order.
        let sweep = (1e2, 1e11);
        if a_less {
            prop_assert!(a.failing_decades(sweep) <= b.failing_decades(sweep) + 1e-12);
        }
    }

    #[test]
    fn stress_endpoints_stay_in_spec(kind_idx in 0usize..4, increase in proptest::bool::ANY) {
        let kind = StressKind::ALL[kind_idx];
        let dir = if increase { Direction::Increase } else { Direction::Decrease };
        let endpoint = dir.endpoint(kind);
        let (lo, hi) = kind.spec_range();
        prop_assert!(endpoint == lo || endpoint == hi);
        // Applying the endpoint to the nominal point yields a valid
        // operating point.
        let op = kind
            .apply_to(&OperatingPoint::nominal(), endpoint)
            .expect("spec endpoints are valid");
        prop_assert!((kind.value_in(&op) - endpoint).abs() < 1e-15);
    }

    #[test]
    fn initial_level_is_complement_of_first_write(ops in arb_phys_ops()) {
        let cond = DetectionCondition::new(ops.clone()).expect("has a read");
        if let Some(PhysOp::Write { high }) = ops.first() {
            prop_assert_eq!(cond.initial_level(), !high);
        }
    }
}
