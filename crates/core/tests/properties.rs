//! Property-style tests of the analysis layer's pure (non-electrical)
//! logic: detection conditions, side mappings, border bookkeeping, stress
//! kinds. Driven by the in-tree deterministic [`TestRng`].

use dso_core::analysis::{BorderResistance, DetectionCondition, PhysOp};
use dso_core::stress::{Direction, StressKind};
use dso_defects::{BitLineSide, Defect};
use dso_dram::column::DefectSite;
use dso_dram::design::OperatingPoint;
use dso_dram::ops::Operation;
use dso_num::testing::TestRng;

const CASES: usize = 256;

/// 1–9 physical operations containing at least one read.
fn arb_phys_ops(rng: &mut TestRng) -> Vec<PhysOp> {
    loop {
        let n = rng.index_range(1, 10);
        let ops: Vec<PhysOp> = (0..n)
            .map(|_| {
                if rng.next_bool() {
                    PhysOp::Write {
                        high: rng.next_bool(),
                    }
                } else {
                    PhysOp::Read {
                        expect_high: rng.next_bool(),
                    }
                }
            })
            .collect();
        if ops.iter().any(|o| matches!(o, PhysOp::Read { .. })) {
            return ops;
        }
    }
}

#[test]
fn detection_logic_mapping_is_an_involution() {
    let mut rng = TestRng::new(0x4001);
    for _ in 0..CASES {
        let ops = arb_phys_ops(&mut rng);
        // Mapping to the comp side twice must recover the true-side
        // sequence: w0 <-> w1 swap and read expectations invert.
        let cond = DetectionCondition::new(ops).expect("has a read");
        let (true_seq, true_exp) = cond.to_logic(BitLineSide::True);
        let (comp_seq, comp_exp) = cond.to_logic(BitLineSide::Comp);
        assert_eq!(true_seq.len(), comp_seq.len());
        for (t, c) in true_seq.iter().zip(&comp_seq) {
            match (t, c) {
                (Operation::W0, Operation::W1)
                | (Operation::W1, Operation::W0)
                | (Operation::R, Operation::R) => {}
                other => panic!("bad pair {other:?}"),
            }
        }
        assert_eq!(true_exp.len(), comp_exp.len());
        for (t, c) in true_exp.iter().zip(&comp_exp) {
            assert_eq!(*t, !*c);
        }
    }
}

#[test]
fn detection_display_is_side_consistent() {
    let mut rng = TestRng::new(0x4002);
    for _ in 0..CASES {
        let ops = arb_phys_ops(&mut rng);
        let cond = DetectionCondition::new(ops).expect("has a read");
        let t = cond.display_for(BitLineSide::True);
        let c = cond.display_for(BitLineSide::Comp);
        // Swapping every 0 and 1 in the true rendering gives the comp one.
        let swapped: String = t
            .chars()
            .map(|ch| match ch {
                '0' => '1',
                '1' => '0',
                other => other,
            })
            .collect();
        assert_eq!(swapped, c);
    }
}

#[test]
fn default_conditions_end_in_a_read() {
    let mut rng = TestRng::new(0x4003);
    for _ in 0..CASES {
        let site = *rng.choose(&DefectSite::ALL);
        let k = rng.index_range(1, 6);
        for side in [BitLineSide::True, BitLineSide::Comp] {
            let defect = Defect::new(site, side);
            let cond = DetectionCondition::default_for(&defect, k);
            let ends_in_read = matches!(cond.ops().last(), Some(PhysOp::Read { .. }));
            assert!(ends_in_read);
            assert!(cond.critical_write().is_some());
            // The first read checks the level the last write set — the
            // condition verifies its own critical write.
            let first_read_expect = cond.expected_level();
            assert_eq!(Some(first_read_expect), cond.critical_write());
        }
    }
}

#[test]
fn border_stressfulness_is_a_strict_order() {
    let mut rng = TestRng::new(0x4004);
    for _ in 0..CASES {
        let r1 = rng.log_range(1e3, 1e9);
        let r2 = rng.log_range(1e3, 1e9);
        let fails_above = rng.next_bool();
        let a = BorderResistance {
            resistance: r1,
            fails_above,
            evaluations: 0,
        };
        let b = BorderResistance {
            resistance: r2,
            fails_above,
            evaluations: 0,
        };
        // Exactly one of <, >, == holds.
        let a_less = a.less_stressful_than(&b);
        let b_less = b.less_stressful_than(&a);
        assert!(!(a_less && b_less));
        if r1 != r2 {
            assert!(a_less || b_less);
        }
        // failing_decades agrees with the order.
        let sweep = (1e2, 1e11);
        if a_less {
            assert!(a.failing_decades(sweep) <= b.failing_decades(sweep) + 1e-12);
        }
    }
}

#[test]
fn stress_endpoints_stay_in_spec() {
    let mut rng = TestRng::new(0x4005);
    for _ in 0..CASES {
        let kind = *rng.choose(&StressKind::ALL);
        let dir = if rng.next_bool() {
            Direction::Increase
        } else {
            Direction::Decrease
        };
        let endpoint = dir.endpoint(kind);
        let (lo, hi) = kind.spec_range();
        assert!(endpoint == lo || endpoint == hi);
        // Applying the endpoint to the nominal point yields a valid
        // operating point.
        let op = kind
            .apply_to(&OperatingPoint::nominal(), endpoint)
            .expect("spec endpoints are valid");
        assert!((kind.value_in(&op) - endpoint).abs() < 1e-15);
    }
}

#[test]
fn initial_level_is_complement_of_first_write() {
    let mut rng = TestRng::new(0x4006);
    for _ in 0..CASES {
        let ops = arb_phys_ops(&mut rng);
        let cond = DetectionCondition::new(ops.clone()).expect("has a read");
        if let Some(PhysOp::Write { high }) = ops.first() {
            assert_eq!(cond.initial_level(), !high);
        }
    }
}
