//! Determinism contract of the parallel campaign executor.
//!
//! The planes, sweep report, gaps, and extracted border of a campaign must
//! be **bit-identical** for every thread count — with and without injected
//! faults — because chunk decomposition, warm-seed chains, and fault-plan
//! resolution are keyed on sweep index, never on scheduling. This suite
//! pins that contract, plus the warm-start payoff (fewer Newton
//! iterations) and a loom-free interleaving smoke test that executes the
//! chunks of a real simulation grid in a seeded-shuffled order.

use dso_core::analysis::{Analyzer, CampaignFaults, PlaneCampaign};
use dso_core::exec::{self, CampaignConfig};
use dso_core::{EvalService, Session};
use dso_defects::{BitLineSide, Defect};
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_num::chaos::{FaultKind, FaultPlan};
use dso_num::interp::logspace;
use dso_num::testing::TestRng;

/// Coarse time step so debug-mode campaigns stay affordable.
fn fast_design() -> ColumnDesign {
    ColumnDesign {
        dt_fraction: 1.0 / 250.0,
        ..ColumnDesign::default()
    }
}

fn sweep() -> Vec<f64> {
    logspace(1e4, 1e7, 6).expect("valid sweep")
}

fn campaign_at(threads: usize, faults: &CampaignFaults) -> PlaneCampaign {
    let defect = Defect::cell_open(BitLineSide::True);
    let config = CampaignConfig::with_threads(threads).with_chunk(2);
    // A fresh session (fresh service) per run: every thread count
    // recomputes from scratch instead of replaying a shared cache.
    let session = Session::with_design(fast_design()).with_config(config);
    session
        .planes_faulted(&defect, &OperatingPoint::nominal(), &sweep(), 1, faults)
        .expect("campaign runs")
}

/// Bitwise equality of two campaigns: every plane curve, every report
/// entry, every gap, and the extracted border.
fn assert_bit_identical(a: &PlaneCampaign, b: &PlaneCampaign, label: &str) {
    // `ResultPlanes: PartialEq` compares every f64 of every curve; equal
    // finite f64s are equal bit patterns (no NaNs survive a campaign, and
    // the sweeps never produce -0.0 vs 0.0 splits on curve data).
    assert_eq!(a.planes, b.planes, "{label}: planes diverged");
    assert_eq!(a.report, b.report, "{label}: sweep report diverged");
    assert_eq!(a.confidence, b.confidence, "{label}: confidence diverged");
    assert_eq!(a.gaps(), b.gaps(), "{label}: gaps diverged");
    let border = |c: &PlaneCampaign| {
        c.border_from_intersection()
            .expect("no gap straddles the border")
            .map(f64::to_bits)
    };
    assert_eq!(border(a), border(b), "{label}: border bits diverged");
}

#[test]
fn parallel_campaign_bit_identical_to_serial() {
    let clean = CampaignFaults::new();
    let serial = campaign_at(1, &clean);
    assert_eq!(serial.report.failed(), 0);
    for threads in [2, 4, 8] {
        let parallel = campaign_at(threads, &clean);
        assert_bit_identical(&serial, &parallel, &format!("threads = {threads}"));
    }
}

#[test]
fn parallel_campaign_bit_identical_under_faults() {
    // Kill one interior sweep point outright; the chaos ordinals are keyed
    // on sweep index, so every thread count must see the identical gap.
    let faults = CampaignFaults::new().with_fault(1, FaultPlan::always(FaultKind::NanResidual));
    let serial = campaign_at(1, &faults);
    assert_eq!(serial.report.failed(), 1);
    assert_eq!(serial.gaps().len(), 1);
    for threads in [2, 4, 8] {
        let parallel = campaign_at(threads, &faults);
        assert_eq!(parallel.report.failed(), 1, "threads = {threads}");
        assert_bit_identical(&serial, &parallel, &format!("threads = {threads} faulted"));
    }
}

#[test]
fn result_planes_parallel_matches_serial_and_warm_start_pays() {
    let analyzer = Analyzer::new(fast_design());
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = sweep();

    let run = |config: &CampaignConfig| {
        let session = Session::from_parts(EvalService::new(analyzer.clone()), config.clone());
        session
            .planes_strict(&defect, &op, &r_values, 1)
            .expect("planes build")
    };

    // One chunk spanning the whole sweep maximizes the warm chain.
    let whole = CampaignConfig::serial().with_chunk(r_values.len());
    let (warm_planes, warm_perf) = run(&whole);
    let (cold_planes, cold_perf) = run(&whole.clone().with_warm_start(false));

    // Warm starts actually happened and saved Newton work.
    assert_eq!(warm_perf.points, r_values.len());
    assert_eq!(warm_perf.warm_hits, 4 * (r_values.len() - 1));
    assert_eq!(cold_perf.warm_hits, 0);
    assert!(
        warm_perf.newton_iters < cold_perf.newton_iters,
        "warm {} !< cold {} Newton iterations",
        warm_perf.newton_iters,
        cold_perf.newton_iters
    );
    let saved = 1.0 - warm_perf.newton_iters as f64 / cold_perf.newton_iters as f64;
    assert!(
        saved >= 0.10,
        "warm start saved only {:.1}% of Newton iterations",
        saved * 100.0
    );
    // Warm and cold solve the same physics to the same tolerance.
    let warm_border = warm_planes.border_from_intersection().unwrap().unwrap();
    let cold_border = cold_planes.border_from_intersection().unwrap().unwrap();
    assert!(
        (warm_border - cold_border).abs() < 0.05 * cold_border,
        "warm {warm_border:.4e} vs cold {cold_border:.4e}"
    );

    // Thread count never changes the bits (same chunking, warm on).
    let serial = run(&CampaignConfig::with_threads(1).with_chunk(2));
    for threads in [2, 4, 8] {
        let parallel = run(&CampaignConfig::with_threads(threads).with_chunk(2));
        assert_eq!(serial.0, parallel.0, "threads = {threads}");
        assert_eq!(serial.1, parallel.1, "threads = {threads}: perf stats");
    }
}

#[test]
fn metrics_shard_merge_is_order_invariant() {
    // The observability registry merges per-thread metric shards with
    // commutative operations only, so any drain order — 1, 2, 4, or 8
    // workers finishing in any interleaving — must produce identical
    // totals. Exercised on standalone shards (no global state) so it can
    // run alongside the campaign tests in this binary.
    use dso_obs::metrics::Shard;

    let edges: &[f64] = &[2.0, 8.0, 32.0];
    let worker_shard = |w: u64| {
        let mut s = Shard::new();
        // Slot 0: counter, slot 1: gauge (max), slot 2: histogram.
        s.add_counter(0, 10 + w);
        s.set_gauge(1, w as f64 * 1.5);
        for i in 0..w {
            s.observe(2, edges, i as f64);
        }
        s
    };
    let shards: Vec<Shard> = (1..=8).map(worker_shard).collect();

    let merge_in = |order: &[usize]| {
        let mut acc = Shard::new();
        for &i in order {
            acc.merge(&shards[i]);
        }
        acc
    };
    let in_order: Vec<usize> = (0..shards.len()).collect();
    let reference = merge_in(&in_order);

    // Seeded-shuffled drain orders, modelling 8 workers finishing in any
    // interleaving.
    let mut rng = TestRng::new(0x0B5_CAFE);
    for round in 0..5 {
        let mut order = in_order.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.index(i + 1));
        }
        assert_eq!(merge_in(&order), reference, "round {round}: {order:?}");
    }

    // Hierarchical (tree) merge, modelling nested scopes at thread counts
    // 2 and 4: pairwise-merge halves, then merge the halves.
    let tree = |groups: &[&[usize]]| {
        let mut acc = Shard::new();
        for g in groups {
            acc.merge(&merge_in(g));
        }
        acc
    };
    assert_eq!(tree(&[&[0, 1, 2, 3], &[4, 5, 6, 7]]), reference);
    assert_eq!(tree(&[&[7, 5], &[3, 1], &[6, 4], &[2, 0]]), reference);
    assert_eq!(
        tree(&[&[0], &[1], &[2], &[3], &[4], &[5], &[6], &[7]]),
        reference
    );
}

#[test]
fn shuffled_chunk_interleaving_is_bit_identical() {
    // Loom-free interleaving smoke test: execute the chunks of a real
    // simulation grid in a seeded-shuffled completion order and require
    // the reassembled output to match the in-order run bit for bit. Chunk
    // completion order is the only scheduling freedom the executor has, so
    // permuting it covers the interleavings a scheduler could produce.
    let analyzer = Analyzer::new(fast_design());
    let defect = Defect::cell_open(BitLineSide::True);
    let op = OperatingPoint::nominal();
    let r_values = sweep();
    let config = CampaignConfig::serial().with_chunk(2);

    // A fresh service per run keeps every order recomputing from scratch
    // (a shared memo cache would make the comparison trivially true).
    let run_in = |order: &[usize]| {
        let service = EvalService::new(analyzer.clone());
        exec::map_chunked_in_order(r_values.len(), &config, order, |range| {
            range
                .map(|i| {
                    let vcs = service
                        .settle_sequence(&defect, r_values[i], &op, false, 1)
                        .expect("settle converges");
                    vcs[0].to_bits()
                })
                .collect::<Vec<_>>()
        })
    };

    let n_chunks = exec::chunk_ranges(
        r_values.len(),
        exec::effective_chunk(r_values.len(), config.chunk),
    )
    .len();
    let in_order: Vec<usize> = (0..n_chunks).collect();
    let reference = run_in(&in_order);

    let mut rng = TestRng::new(0xD5_0C0DE);
    for round in 0..3 {
        // Fisher-Yates with the repo's deterministic test RNG.
        let mut order = in_order.clone();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.index(i + 1));
        }
        assert_eq!(
            run_in(&order),
            reference,
            "round {round}: order {order:?} diverged"
        );
    }
}
