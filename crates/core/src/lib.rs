//! Fault analysis and stress optimization for DRAM cell defects — the
//! primary contribution of *Optimizing Stresses for Testing DRAM Cell
//! Defects Using Electrical Simulation* (Al-Ars et al., DATE 2003).
//!
//! The crate has two halves:
//!
//! * [`analysis`] — the fault-analysis machinery of Section 3: result
//!   planes for the `w0`/`w1`/`r` operations across a defect-resistance
//!   sweep, the sense-amplifier threshold curve `Vsa(R)`, border-resistance
//!   extraction (both by curve intersection and by pass/fail bisection),
//!   detection-condition derivation, and electrically calibrated fault
//!   dictionaries for the behavioral memory model.
//! * [`stress`] — the optimization methodology of Section 4: directional
//!   stress probes (a handful of simulations per stress), non-monotonic
//!   fallback via border-resistance comparison, stress-combination
//!   evaluation and the Table-1 pipeline over all defects.
//!
//! Sweeps are fault-tolerant: [`Session::planes`] records every
//! attempted point in a [`analysis::SweepReport`] (converged / recovered /
//! failed), interpolates bracketed gaps instead of aborting, and refuses
//! to interpolate across a border crossing. Failures carry campaign
//! context ([`CoreError`]'s `AtPoint`) pinpointing the exact simulation
//! that died, and partial results carry an explicit
//! [`analysis::Confidence`] downgrade.
//!
//! # Example
//!
//! Optimize the stresses for the paper's running-example cell open:
//!
//! ```no_run
//! use dso_core::stress::{OperatingPoint, StressOptimizer};
//! use dso_defects::{BitLineSide, Defect};
//! use dso_dram::design::ColumnDesign;
//!
//! # fn main() -> Result<(), dso_core::CoreError> {
//! let optimizer = StressOptimizer::new(ColumnDesign::default());
//! let report = optimizer.optimize(
//!     &Defect::cell_open(BitLineSide::True),
//!     &OperatingPoint::nominal(),
//! )?;
//! println!("{report}");
//! assert!(report.stressed.border() <= report.nominal.border());
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(clippy::redundant_clone)]
#![warn(clippy::large_enum_variant)]

pub mod analysis;
pub mod bench;
pub mod env;
pub mod error;
pub mod eval;
pub mod exec;
pub mod service;
pub mod session;
pub mod store;
pub mod stress;

pub use error::CoreError;
pub use eval::{CacheStats, EvalService, SimRequest, SimTask, SimValue};
pub use exec::{CampaignConfig, CampaignPerfStats};
pub use session::{Session, SessionBuilder};
pub use store::{ResultStore, StoreStats, StoredResult};
