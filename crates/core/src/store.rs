//! Crash-safe persistent result store: the disk tier under
//! [`crate::eval::EvalService`].
//!
//! A multi-hour stress-characterization campaign is a batch job; whether
//! it *completes* is decided by durability and restartability, not by raw
//! speed. The memo cache of the evaluation service dies with the process,
//! so this module persists every successful `(content_key, SimValue,
//! RecoveryStats)` evaluation to an append-only file. A campaign killed
//! mid-run and restarted against the same store replays its completed
//! points bit-identically from disk and recomputes only what is missing.
//!
//! # File format
//!
//! The store is a flat sequence of self-delimiting records (no file
//! header — every record carries everything needed to validate it):
//!
//! ```text
//! ┌──────────┬──────────┬───────────┬───────────────────┐
//! │ magic u32│ len  u32 │ crc   u64 │ payload (len B)   │
//! │ "DSR1"   │ LE       │ FNV-1a LE │                   │
//! └──────────┴──────────┴───────────┴───────────────────┘
//! payload := context u64 · content_key u64 · SimValue · RecoveryStats
//! ```
//!
//! Scalars use the fixed-width little-endian codec of [`dso_obs::codec`];
//! `f64`s are stored by exact bit pattern, so a replayed value is the
//! bits the first execution produced.
//!
//! # Crash consistency
//!
//! Appends are a single `write_all` of a complete record through an
//! `O_APPEND` handle guarded by a process-wide mutex, so records from one
//! process never interleave. A crash mid-append leaves at most one torn
//! record at the *tail* of the file — the only region an append ever
//! touches — and recovery on the next open drops exactly that tail.
//!
//! # Recovery semantics
//!
//! [`ResultStore::open`] never refuses a damaged file. The scan validates
//! each record's magic, length plausibility, and checksum; anything
//! invalid is skipped and *counted* ([`StoreStats`]), resynchronizing on
//! the next record magic. Records whose context fingerprint differs from
//! the opening service's (a changed design, model, or recovery policy)
//! are stale generations: skipped, counted, and dropped by the automatic
//! compaction that rewrites the file (atomically, via temp file + rename)
//! whenever the scan had to discard anything.
//!
//! # Fault injection
//!
//! [`ResultStore::open_with_faults`] arms the I/O axis of a
//! [`FaultPlan`]: short writes (torn tails on demand), flush failures,
//! and read bit-flips, so the recovery paths above are testable without a
//! real `kill -9`.

use crate::eval::SimValue;
use crate::CoreError;
use dso_num::chaos::{FaultPlan, IoFaultKind};
use dso_num::fingerprint::Fingerprint;
use dso_obs::codec::{ByteReader, ByteWriter, CodecError};
use dso_spice::recovery::RecoveryStats;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Record magic: `b"DSR1"`. Bump the digit for incompatible layouts —
/// old-version records then fail the magic check and are dropped by
/// recovery like any other unreadable bytes.
const MAGIC: [u8; 4] = *b"DSR1";
/// Bytes before the payload: magic + length + checksum.
const RECORD_HEADER: usize = 4 + 4 + 8;
/// Upper bound on a plausible payload. A length field above this is
/// treated as corruption, not as a request to allocate gigabytes.
const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// FNV-1a over a byte slice, via the workspace's stable fingerprint
/// hasher (the checksum must be identical across runs and platforms).
fn checksum(bytes: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    for &b in bytes {
        fp.write_u8(b);
    }
    fp.finish()
}

/// One stored evaluation: the value and the recovery accounting its
/// computation accrued (replayed on hits so resumed campaigns reproduce
/// their `PointStatus` bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    /// The evaluated value.
    pub value: SimValue,
    /// Recovery counters of the original computation.
    pub stats: RecoveryStats,
}

/// Counters describing a store's lifetime since open, including what the
/// recovery scan found. Mirrored into `store.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Valid current-context records loaded at open.
    pub records_loaded: usize,
    /// Records skipped because their context fingerprint belongs to a
    /// different design/model/recovery generation.
    pub stale_skipped: usize,
    /// Records dropped for a failed checksum, implausible length, bad
    /// magic run, or undecodable payload.
    pub corrupt_skipped: usize,
    /// Trailing bytes discarded as an incomplete append (torn tail).
    pub torn_tail_bytes: usize,
    /// Records appended through this handle.
    pub appends: usize,
    /// Appends or flushes that failed (the store keeps serving; the
    /// record may be torn on disk and will be dropped by the next open).
    pub write_errors: usize,
    /// Lookups answered from the store.
    pub hits: usize,
    /// Lookups the store could not answer.
    pub misses: usize,
    /// Compactions performed (open-time cleanup rewrites).
    pub compactions: usize,
}

impl StoreStats {
    /// `true` when the recovery scan had to discard anything.
    pub fn recovered_anything(&self) -> bool {
        self.stale_skipped > 0 || self.corrupt_skipped > 0 || self.torn_tail_bytes > 0
    }
}

/// The append-only persistent result store. See the module docs for
/// format, crash-consistency, and recovery semantics.
///
/// The store is keyed by the owning service's context fingerprint; use
/// [`crate::eval::EvalService::context_for`] to derive it from an
/// analyzer. All methods take `&self`: the in-memory index and the append
/// handle are internally synchronized (single-writer discipline per
/// process).
pub struct ResultStore {
    path: PathBuf,
    context: u64,
    inner: Mutex<Inner>,
    faults: Option<FaultPlan>,
}

struct Inner {
    file: File,
    index: HashMap<u64, StoredResult>,
    stats: StoreStats,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("context", &self.context)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResultStore {
    /// Opens (creating if absent) the store at `path` for the given
    /// context fingerprint, recovering whatever the file holds. Corrupt
    /// or stale records are skipped and counted — never an error — and
    /// trigger an automatic compaction; only real I/O failures (missing
    /// parent directory, permissions) are surfaced.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] when the file cannot be opened, read, or (for
    /// compaction) rewritten.
    pub fn open(path: impl AsRef<Path>, context: u64) -> Result<ResultStore, CoreError> {
        ResultStore::open_inner(path.as_ref(), context, None)
    }

    /// [`ResultStore::open`] with an armed I/O fault plan: each append
    /// consumes one I/O ordinal (short write / flush failure), and the
    /// open-time scan consumes one (read bit-flip).
    ///
    /// # Errors
    ///
    /// As [`ResultStore::open`].
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        context: u64,
        faults: FaultPlan,
    ) -> Result<ResultStore, CoreError> {
        ResultStore::open_inner(path.as_ref(), context, Some(faults))
    }

    fn open_inner(
        path: &Path,
        context: u64,
        faults: Option<FaultPlan>,
    ) -> Result<ResultStore, CoreError> {
        let span = dso_obs::span("store.open");
        let store_err = |what: &str, e: std::io::Error| {
            CoreError::Store(format!("{what} {}: {e}", path.display()))
        };
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| store_err("cannot read", e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(store_err("cannot open", e)),
        }
        // A read bit-flip fault corrupts one mid-file bit before the scan
        // sees the bytes — the checksum must catch it.
        if let Some(plan) = &faults {
            if let Some(IoFaultKind::BitFlipRead) = plan.begin_io() {
                if !bytes.is_empty() {
                    let at = bytes.len() / 2;
                    bytes[at] ^= 0x01;
                }
            }
        }
        let (index, mut stats) = recover(&bytes, context);
        span.note("records", stats.records_loaded as f64);
        dso_obs::counter!("store.records_loaded").add(stats.records_loaded as u64);
        dso_obs::counter!("store.stale_skipped").add(stats.stale_skipped as u64);
        dso_obs::counter!("store.corrupt_skipped").add(stats.corrupt_skipped as u64);
        dso_obs::counter!("store.torn_tail_bytes").add(stats.torn_tail_bytes as u64);

        // Compaction: rewrite the file with only the surviving records of
        // the current context, atomically (temp + rename), whenever the
        // scan discarded anything. Stale generations and torn tails are
        // dropped exactly once instead of being re-skipped forever.
        if stats.recovered_anything() {
            let mut w = ByteWriter::new();
            for (&key, result) in &index {
                append_record(&mut w, context, key, result);
            }
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, w.as_bytes())
                .map_err(|e| store_err("cannot write compaction temp for", e))?;
            std::fs::rename(&tmp, path).map_err(|e| store_err("cannot compact", e))?;
            stats.compactions += 1;
            dso_obs::counter!("store.compactions").incr();
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| store_err("cannot open for append", e))?;
        Ok(ResultStore {
            path: path.to_path_buf(),
            context,
            inner: Mutex::new(Inner { file, index, stats }),
            faults,
        })
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The context fingerprint this store was opened for.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Records currently indexed.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// `true` when no record is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned store must not take the campaign down with it: the
        // index and stats are plain data, safe to keep serving.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a stored result by content key.
    pub fn get(&self, content_key: u64) -> Option<StoredResult> {
        let mut inner = self.lock();
        let found = inner.index.get(&content_key).cloned();
        if found.is_some() {
            inner.stats.hits += 1;
            dso_obs::counter!("store.hits").incr();
        } else {
            inner.stats.misses += 1;
            dso_obs::counter!("store.misses").incr();
        }
        found
    }

    /// Appends one result durably and indexes it. Write failures are
    /// *absorbed*: counted in [`StoreStats::write_errors`] (and
    /// `store.write_errors`), the result stays served from memory, and a
    /// torn on-disk record is dropped by the next open's recovery. A
    /// campaign must never die because its cache could not persist.
    pub fn put(&self, content_key: u64, value: &SimValue, stats: &RecoveryStats) {
        let result = StoredResult {
            value: value.clone(),
            stats: *stats,
        };
        let mut w = ByteWriter::new();
        append_record(&mut w, self.context, content_key, &result);
        let bytes = w.as_bytes();
        let fault = self.faults.as_ref().and_then(|p| p.begin_io());
        let mut inner = self.lock();
        let write_outcome = match fault {
            Some(IoFaultKind::ShortWrite) => {
                // Persist only a prefix — the torn tail a mid-write kill
                // leaves — then report the failure.
                let _ = inner.file.write_all(&bytes[..bytes.len() / 2]);
                let _ = inner.file.flush();
                Err(std::io::Error::other("injected short write"))
            }
            Some(IoFaultKind::FlushFail) => inner
                .file
                .write_all(bytes)
                .and(Err(std::io::Error::other("injected flush failure"))),
            _ => inner
                .file
                .write_all(bytes)
                .and_then(|()| inner.file.flush()),
        };
        match write_outcome {
            Ok(()) => {
                inner.stats.appends += 1;
                dso_obs::counter!("store.appends").incr();
            }
            Err(e) => {
                inner.stats.write_errors += 1;
                dso_obs::counter!("store.write_errors").incr();
                warn_once_write_error(&self.path, &e);
            }
        }
        inner.index.insert(content_key, result);
    }
}

fn warn_once_write_error(path: &Path, e: &std::io::Error) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: result store {} append failed ({e}); continuing without \
             durability for the affected record(s)",
            path.display()
        );
    });
}

/// Serializes one record (header + payload) into `w`.
fn append_record(w: &mut ByteWriter, context: u64, content_key: u64, result: &StoredResult) {
    let mut payload = ByteWriter::new();
    payload.put_u64(context);
    payload.put_u64(content_key);
    encode_value(&mut payload, &result.value);
    encode_stats(&mut payload, &result.stats);
    let payload = payload.into_bytes();
    w.put_bytes(&MAGIC);
    w.put_u32(payload.len() as u32);
    w.put_u64(checksum(&payload));
    w.put_bytes(&payload);
}

fn encode_value(w: &mut ByteWriter, value: &SimValue) {
    match value {
        SimValue::Series(vcs) => {
            w.put_u8(0);
            w.put_f64_slice(vcs);
        }
        SimValue::Outcomes { vc_ends, reads } => {
            w.put_u8(1);
            w.put_f64_slice(vc_ends);
            w.put_u32(reads.len() as u32);
            for r in reads {
                // 0 = no outcome, 1 = read low, 2 = read high; any other
                // byte is corruption and must fail the decode.
                w.put_u8(match r {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                });
            }
        }
        SimValue::Scalar(v) => {
            w.put_u8(2);
            w.put_f64(*v);
        }
    }
}

fn decode_value(r: &mut ByteReader<'_>) -> Result<SimValue, CodecError> {
    match r.u8()? {
        0 => Ok(SimValue::Series(r.f64_vec()?)),
        1 => {
            let vc_ends = r.f64_vec()?;
            let start = r.position();
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(CodecError {
                    expected: "reads length",
                    offset: start,
                });
            }
            let reads = (0..n)
                .map(|_| {
                    let at = r.position();
                    match r.u8()? {
                        0 => Ok(None),
                        1 => Ok(Some(false)),
                        2 => Ok(Some(true)),
                        _ => Err(CodecError {
                            expected: "read outcome",
                            offset: at,
                        }),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SimValue::Outcomes { vc_ends, reads })
        }
        2 => Ok(SimValue::Scalar(r.f64()?)),
        _ => Err(CodecError {
            expected: "value tag",
            offset: r.position().saturating_sub(1),
        }),
    }
}

fn encode_stats(w: &mut ByteWriter, s: &RecoveryStats) {
    w.put_usize(s.solve_attempts);
    w.put_usize(s.newton_iters);
    w.put_usize(s.method_fallbacks);
    w.put_usize(s.subdivisions);
    w.put_usize(s.deepest_subdivision);
    w.put_usize(s.gmin_retries);
    w.put_usize(s.recovered_steps);
    w.put_usize(s.lu_refactors);
    w.put_usize(s.lu_reuses);
    w.put_usize(s.bypass_hits);
    w.put_usize(s.bypass_misses);
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<RecoveryStats, CodecError> {
    Ok(RecoveryStats {
        solve_attempts: r.usize()?,
        newton_iters: r.usize()?,
        method_fallbacks: r.usize()?,
        subdivisions: r.usize()?,
        deepest_subdivision: r.usize()?,
        gmin_retries: r.usize()?,
        recovered_steps: r.usize()?,
        lu_refactors: r.usize()?,
        lu_reuses: r.usize()?,
        bypass_hits: r.usize()?,
        bypass_misses: r.usize()?,
    })
}

/// Decodes one validated payload into `(context, key, result)`.
fn decode_payload(payload: &[u8]) -> Result<(u64, u64, StoredResult), CodecError> {
    let mut r = ByteReader::new(payload);
    let context = r.u64()?;
    let key = r.u64()?;
    let value = decode_value(&mut r)?;
    let stats = decode_stats(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError {
            expected: "end of payload",
            offset: r.position(),
        });
    }
    Ok((context, key, StoredResult { value, stats }))
}

/// Finds the next offset at or after `from` where the record magic
/// occurs, or `bytes.len()` when there is none.
fn next_magic(bytes: &[u8], from: usize) -> usize {
    let mut pos = from;
    while pos + MAGIC.len() <= bytes.len() {
        if bytes[pos..pos + MAGIC.len()] == MAGIC {
            return pos;
        }
        pos += 1;
    }
    bytes.len()
}

/// The recovery scan: walks `bytes`, keeping every record that passes
/// magic, length, checksum, and decode for the given `context`. Invalid
/// regions are skipped with a resynchronizing scan for the next magic —
/// a damaged record never takes its neighbors down — and everything
/// skipped is counted. Later records win duplicate keys (append order is
/// chronological).
fn recover(bytes: &[u8], context: u64) -> (HashMap<u64, StoredResult>, StoreStats) {
    let mut index = HashMap::new();
    let mut stats = StoreStats::default();
    let mut pos = 0;
    // End offset of the last structurally complete record (valid or
    // skipped-in-full); everything between here and EOF at loop exit is a
    // torn tail.
    let mut consumed = 0;
    while pos + RECORD_HEADER <= bytes.len() {
        if bytes[pos..pos + MAGIC.len()] != MAGIC {
            stats.corrupt_skipped += 1;
            pos = next_magic(bytes, pos + 1);
            continue;
        }
        let mut header = ByteReader::new(&bytes[pos + MAGIC.len()..pos + RECORD_HEADER]);
        let (len, crc) = match (header.u32(), header.u64()) {
            (Ok(len), Ok(crc)) => (len, crc),
            _ => unreachable!("header bounds checked above"),
        };
        if len > MAX_PAYLOAD {
            // An implausible length is corruption in the length field
            // itself; resync right after this magic.
            stats.corrupt_skipped += 1;
            pos = next_magic(bytes, pos + MAGIC.len());
            continue;
        }
        let end = pos + RECORD_HEADER + len as usize;
        if end > bytes.len() {
            // Runs past EOF: a torn tail if nothing follows, otherwise a
            // corrupt length field mid-file.
            let resync = next_magic(bytes, pos + MAGIC.len());
            if resync >= bytes.len() {
                break; // counted as torn tail below
            }
            stats.corrupt_skipped += 1;
            pos = resync;
            continue;
        }
        let payload = &bytes[pos + RECORD_HEADER..end];
        if checksum(payload) != crc {
            stats.corrupt_skipped += 1;
            pos = next_magic(bytes, pos + MAGIC.len());
            continue;
        }
        match decode_payload(payload) {
            Ok((ctx, key, result)) => {
                if ctx == context {
                    stats.records_loaded += 1;
                    index.insert(key, result);
                } else {
                    stats.stale_skipped += 1;
                }
                pos = end;
                consumed = end;
            }
            Err(_) => {
                stats.corrupt_skipped += 1;
                pos = next_magic(bytes, pos + MAGIC.len());
            }
        }
    }
    stats.torn_tail_bytes = bytes.len().saturating_sub(consumed.max(pos));
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dso_num::chaos::FaultPlan;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dso-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample(i: u64) -> StoredResult {
        StoredResult {
            value: match i % 3 {
                0 => SimValue::Scalar(1.5 + i as f64),
                1 => SimValue::Series(vec![0.1 * i as f64, -0.0, f64::MIN_POSITIVE]),
                _ => SimValue::Outcomes {
                    vc_ends: vec![1.0, 2.0],
                    reads: vec![None, Some(true), Some(false)],
                },
            },
            stats: RecoveryStats {
                solve_attempts: i as usize,
                newton_iters: 10 * i as usize,
                ..RecoveryStats::default()
            },
        }
    }

    #[test]
    fn round_trips_all_value_shapes() {
        let path = tmp_path("roundtrip");
        let store = ResultStore::open(&path, 7).unwrap();
        for i in 0..6u64 {
            let s = sample(i);
            store.put(i, &s.value, &s.stats);
        }
        assert_eq!(store.len(), 6);
        drop(store);

        let reopened = ResultStore::open(&path, 7).unwrap();
        let stats = reopened.stats();
        assert_eq!(stats.records_loaded, 6);
        assert!(!stats.recovered_anything(), "{stats:?}");
        for i in 0..6u64 {
            assert_eq!(reopened.get(i).unwrap(), sample(i), "record {i}");
        }
        assert!(reopened.get(99).is_none());
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses), (6, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_contexts_are_skipped_and_compacted_away() {
        let path = tmp_path("stale");
        let old = ResultStore::open(&path, 1).unwrap();
        let s = sample(0);
        old.put(10, &s.value, &s.stats);
        old.put(11, &s.value, &s.stats);
        drop(old);

        // A new generation: old records are stale, the file is compacted.
        let new = ResultStore::open(&path, 2).unwrap();
        assert_eq!(new.stats().stale_skipped, 2);
        assert_eq!(new.stats().compactions, 1);
        assert!(new.is_empty());
        let s2 = sample(1);
        new.put(20, &s2.value, &s2.stats);
        drop(new);

        // The stale generation is gone from disk: reopening under the old
        // context finds nothing of it.
        let back = ResultStore::open(&path, 1).unwrap();
        assert_eq!(back.stats().records_loaded, 0);
        assert_eq!(back.stats().stale_skipped, 1); // only the new record
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_earlier_records_survive() {
        let path = tmp_path("torn");
        let store = ResultStore::open(&path, 3).unwrap();
        for i in 0..4u64 {
            let s = sample(i);
            store.put(i, &s.value, &s.stats);
        }
        drop(store);
        // Tear the tail: chop half of the final record off.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let recovered = ResultStore::open(&path, 3).unwrap();
        let stats = recovered.stats();
        assert_eq!(stats.records_loaded, 3, "{stats:?}");
        assert!(stats.torn_tail_bytes > 0, "{stats:?}");
        assert_eq!(stats.compactions, 1);
        for i in 0..3u64 {
            assert_eq!(recovered.get(i).unwrap(), sample(i));
        }
        assert!(recovered.get(3).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_skips_only_the_damaged_record() {
        let path = tmp_path("midfile");
        let store = ResultStore::open(&path, 3).unwrap();
        let ends: Vec<usize> = (0..4u64)
            .map(|i| {
                let s = sample(i);
                store.put(i, &s.value, &s.stats);
                std::fs::metadata(&path).unwrap().len() as usize
            })
            .collect();
        drop(store);
        // Flip a byte inside record #1's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = ends[0] + RECORD_HEADER + 3;
        bytes[target] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let recovered = ResultStore::open(&path, 3).unwrap();
        let stats = recovered.stats();
        assert_eq!(stats.records_loaded, 3, "{stats:?}");
        assert_eq!(stats.corrupt_skipped, 1, "{stats:?}");
        assert!(recovered.get(1).is_none());
        for i in [0u64, 2, 3] {
            assert_eq!(recovered.get(i).unwrap(), sample(i), "record {i}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_write_fault_tears_the_tail_for_the_next_open() {
        let path = tmp_path("shortwrite");
        let plan = FaultPlan::new().inject_io_at(2, IoFaultKind::ShortWrite);
        let store = ResultStore::open_with_faults(&path, 5, plan).unwrap();
        // Ordinal 0 is consumed by the open-time read arm.
        let a = sample(0);
        store.put(0, &a.value, &a.stats); // io ordinal 1: clean
        let b = sample(1);
        store.put(1, &b.value, &b.stats); // io ordinal 2: short write
        let stats = store.stats();
        assert_eq!(stats.appends, 1, "{stats:?}");
        assert_eq!(stats.write_errors, 1, "{stats:?}");
        // The memory index still serves the unpersisted record.
        assert!(store.get(1).is_some());
        drop(store);

        let recovered = ResultStore::open(&path, 5).unwrap();
        let stats = recovered.stats();
        assert_eq!(stats.records_loaded, 1, "{stats:?}");
        assert!(stats.torn_tail_bytes > 0, "{stats:?}");
        assert!(recovered.get(1).is_none());
        assert_eq!(recovered.get(0).unwrap(), a);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_fail_fault_counts_but_keeps_serving() {
        let path = tmp_path("flushfail");
        let plan = FaultPlan::io_always(IoFaultKind::FlushFail);
        let store = ResultStore::open_with_faults(&path, 5, plan).unwrap();
        let a = sample(2);
        store.put(0, &a.value, &a.stats);
        assert_eq!(store.stats().write_errors, 1);
        assert_eq!(store.get(0).unwrap(), a);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_read_fault_is_caught_by_the_checksum() {
        let path = tmp_path("bitflip");
        let store = ResultStore::open(&path, 5).unwrap();
        for i in 0..3u64 {
            let s = sample(i);
            store.put(i, &s.value, &s.stats);
        }
        drop(store);

        let plan = FaultPlan::new().inject_io_at(0, IoFaultKind::BitFlipRead);
        let flipped = ResultStore::open_with_faults(&path, 5, plan).unwrap();
        let stats = flipped.stats();
        assert_eq!(
            stats.corrupt_skipped, 1,
            "the flipped record must fail its checksum: {stats:?}"
        );
        assert_eq!(stats.records_loaded, 2, "{stats:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_garbage_files_open_cleanly() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"not a store at all, definitely").unwrap();
        let store = ResultStore::open(&path, 1).unwrap();
        assert!(store.is_empty());
        assert!(store.stats().recovered_anything());
        drop(store);
        // After compaction the file is clean.
        let clean = ResultStore::open(&path, 1).unwrap();
        assert!(!clean.stats().recovered_anything());
        let _ = std::fs::remove_file(&path);

        let path2 = tmp_path("empty");
        std::fs::write(&path2, b"").unwrap();
        let store = ResultStore::open(&path2, 1).unwrap();
        assert!(store.is_empty());
        assert!(!store.stats().recovered_anything());
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn open_error_paths_surface_store_errors() {
        let missing_dir = std::env::temp_dir().join("dso-no-such-dir-xyz/store.bin");
        let err = ResultStore::open(&missing_dir, 1).unwrap_err();
        assert!(matches!(err, CoreError::Store(_)), "{err}");
        assert!(err.to_string().contains("result store"), "{err}");
    }
}
