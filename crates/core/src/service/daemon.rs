//! The resident campaign daemon: worker pool, admission control,
//! deadlines, chunk-granular preemption, and service statistics.

use super::protocol::{self, ErrorCode, JobKind, JobRequest, Priority, Reply};
use super::queue::AdmissionQueue;
use crate::analysis::detection::DetectionCondition;
use crate::analysis::planes::plane_campaign_hooked;
use crate::analysis::shmoo::margin_shmoo;
use crate::analysis::sweep::CampaignFaults;
use crate::analysis::{derive_detection, find_border, DesignSpace, DesignSweepRequest};
use crate::exec::ExecHooks;
use crate::session::Session;
use dso_obs::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Latency-histogram bucket edges, milliseconds. Shared by both class
/// histograms so snapshots line up column-for-column.
pub const LATENCY_EDGES_MS: &[f64] = &[
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4,
];

/// Daemon tuning, normally read from `DSO_SERVE_*` environment knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue (`DSO_SERVE_WORKERS`,
    /// default 2).
    pub workers: usize,
    /// Admission-queue capacity across both classes (`DSO_SERVE_QUEUE`,
    /// default 64). Admission past this depth gets a `queue_full` reply.
    pub queue_capacity: usize,
    /// Largest accepted request line, bytes (`DSO_SERVE_MAX_FRAME`,
    /// default 65536). Longer lines get an `oversized_frame` reply.
    pub max_frame_bytes: usize,
    /// Deadline applied to requests that name none, milliseconds
    /// (`DSO_SERVE_DEADLINE_MS`, default 0 = unlimited).
    pub default_deadline_ms: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: 65536,
            default_deadline_ms: 0.0,
        }
    }
}

impl ServeConfig {
    /// The default configuration overridden by any `DSO_SERVE_*`
    /// variables present in the environment (invalid values warn once
    /// and fall back, matching the other `DSO_*` knobs).
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            workers: crate::env::positive_usize("DSO_SERVE_WORKERS", "the default worker count")
                .unwrap_or(d.workers),
            queue_capacity: crate::env::positive_usize(
                "DSO_SERVE_QUEUE",
                "the default queue capacity",
            )
            .unwrap_or(d.queue_capacity),
            max_frame_bytes: crate::env::positive_usize(
                "DSO_SERVE_MAX_FRAME",
                "the default frame limit",
            )
            .unwrap_or(d.max_frame_bytes),
            default_deadline_ms: crate::env::non_negative_f64(
                "DSO_SERVE_DEADLINE_MS",
                "no default deadline",
            )
            .unwrap_or(d.default_deadline_ms),
        }
    }
}

/// Cooperative cancellation state shared between a job's submitter and
/// the worker running it. Checked at chunk boundaries, so an abort frees
/// the remaining chunks of an in-flight campaign.
#[derive(Debug)]
pub struct JobControl {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl JobControl {
    fn new(deadline: Option<Instant>) -> Arc<JobControl> {
        Arc::new(JobControl {
            cancelled: AtomicBool::new(false),
            deadline,
        })
    }

    /// Requests cooperative cancellation (explicit `cancel` frame or a
    /// vanished client).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// The structured code the job should abort with right now, if any.
    /// Explicit cancellation wins over deadline expiry.
    pub fn should_stop(&self) -> Option<ErrorCode> {
        if self.cancelled.load(Ordering::Acquire) {
            return Some(ErrorCode::Cancelled);
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(ErrorCode::DeadlineExceeded),
            _ => None,
        }
    }
}

/// Where a job's replies go. Returns `false` when the client is gone;
/// the daemon then cancels the job cooperatively.
pub type ReplySink = Arc<dyn Fn(Reply) -> bool + Send + Sync>;

struct QueuedJob {
    request: JobRequest,
    control: Arc<JobControl>,
    sink: ReplySink,
    admitted: Instant,
}

/// Aggregate service counters and latency samples. Counters are
/// deterministic for a fixed workload; latency figures are wall-clock and
/// therefore nondeterministic.
#[derive(Debug, Default)]
struct StatsInner {
    accepted: u64,
    rejected: u64,
    completed: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    failed: u64,
    preemptions: u64,
    queue_peak: usize,
    latency_interactive_ms: Vec<f64>,
    latency_bulk_ms: Vec<f64>,
}

/// A point-in-time copy of the daemon's statistics.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs rejected with `queue_full` backpressure.
    pub rejected: u64,
    /// Jobs that finished with a `done` reply.
    pub completed: u64,
    /// Jobs that ended `cancelled`.
    pub cancelled: u64,
    /// Jobs that ended `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Jobs that ended `failed` (simulation error).
    pub failed: u64,
    /// Interactive jobs a bulk campaign ran inline between its chunks.
    pub preemptions: u64,
    /// Highest queue depth observed at admission.
    pub queue_peak: usize,
    /// Admission-to-done wall latencies of completed interactive jobs,
    /// milliseconds (nondeterministic).
    pub latency_interactive_ms: Vec<f64>,
    /// Admission-to-done wall latencies of completed bulk jobs,
    /// milliseconds (nondeterministic).
    pub latency_bulk_ms: Vec<f64>,
}

impl ServiceStats {
    /// The stats document sent in reply to a `stats` control frame.
    /// Counter fields are deterministic for a fixed workload; everything
    /// under `"latency_ms"` is wall-clock.
    pub fn to_json(&self, queue_depth: usize) -> Json {
        let class = |samples: &[f64]| {
            Json::Obj(BTreeMap::from([
                ("count".to_string(), Json::Num(samples.len() as f64)),
                ("p50".to_string(), Json::Num(percentile(samples, 0.50))),
                ("p95".to_string(), Json::Num(percentile(samples, 0.95))),
                ("p99".to_string(), Json::Num(percentile(samples, 0.99))),
            ]))
        };
        Json::Obj(BTreeMap::from([
            ("accepted".to_string(), Json::Num(self.accepted as f64)),
            ("rejected".to_string(), Json::Num(self.rejected as f64)),
            ("completed".to_string(), Json::Num(self.completed as f64)),
            ("cancelled".to_string(), Json::Num(self.cancelled as f64)),
            (
                "deadline_exceeded".to_string(),
                Json::Num(self.deadline_exceeded as f64),
            ),
            ("failed".to_string(), Json::Num(self.failed as f64)),
            (
                "preemptions".to_string(),
                Json::Num(self.preemptions as f64),
            ),
            ("queue_depth".to_string(), Json::Num(queue_depth as f64)),
            ("queue_peak".to_string(), Json::Num(self.queue_peak as f64)),
            (
                "latency_ms".to_string(),
                Json::Obj(BTreeMap::from([
                    (
                        "interactive".to_string(),
                        class(&self.latency_interactive_ms),
                    ),
                    ("bulk".to_string(), class(&self.latency_bulk_ms)),
                ])),
            ),
        ]))
    }
}

/// Nearest-rank percentile of `samples` (`q` in `[0, 1]`); 0 when empty.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

struct Inner {
    session: Session,
    queue: AdmissionQueue<QueuedJob>,
    stats: Mutex<StatsInner>,
    config: ServeConfig,
}

/// Shared handle onto a running [`Daemon`]; transports submit through it.
#[derive(Clone)]
pub struct DaemonHandle {
    inner: Arc<Inner>,
}

/// A resident worker pool wrapping a [`Session`] behind the admission
/// queue. Dropping the daemon (or calling [`Daemon::shutdown`]) closes
/// the queue, drains the remaining jobs, and joins the workers.
pub struct Daemon {
    handle: DaemonHandle,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Starts `config.workers` worker threads over `session`.
    pub fn start(session: Session, config: ServeConfig) -> Daemon {
        let inner = Arc::new(Inner {
            session,
            queue: AdmissionQueue::new(config.queue_capacity),
            stats: Mutex::new(StatsInner::default()),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dso-serve-{i}"))
                    .spawn(move || {
                        while let Some(job) = inner.queue.pop_blocking() {
                            run_job(&inner, job);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Daemon {
            handle: DaemonHandle {
                inner: Arc::clone(&inner),
            },
            workers,
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> DaemonHandle {
        self.handle.clone()
    }

    /// Closes the admission queue, lets queued jobs drain, and joins the
    /// workers.
    pub fn shutdown(mut self) -> ServiceStats {
        self.handle.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.handle.stats()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl DaemonHandle {
    /// The daemon's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// The cancellation control for a job about to be submitted,
    /// applying the daemon's default deadline when the request names
    /// none. Created *before* [`DaemonHandle::submit`] so the transport
    /// can index it for `cancel` frames without racing the job's replies.
    pub fn make_control(&self, request: &JobRequest) -> Arc<JobControl> {
        let deadline_ms = match request.deadline_ms {
            Some(ms) => Some(ms),
            None if self.inner.config.default_deadline_ms > 0.0 => {
                Some(self.inner.config.default_deadline_ms)
            }
            None => None,
        };
        JobControl::new(
            deadline_ms.map(|ms| Instant::now() + std::time::Duration::from_secs_f64(ms / 1e3)),
        )
    }

    /// Submits a job. Sends `accepted` (and later exactly one terminal
    /// reply) through `sink`, or a terminal `queue_full` error right away
    /// under backpressure; returns whether the job was admitted. The
    /// slot is reserved and `accepted` emitted *before* the job becomes
    /// visible to workers, so the terminal reply can never overtake
    /// `accepted` on the sink.
    pub fn submit(&self, request: JobRequest, control: Arc<JobControl>, sink: ReplySink) -> bool {
        let class = request.priority;
        let id = request.id.clone();
        match self.inner.queue.try_reserve() {
            Some(depth) => {
                {
                    let mut stats = self.inner.stats.lock().expect("stats poisoned");
                    stats.accepted += 1;
                    stats.queue_peak = stats.queue_peak.max(depth);
                }
                dso_obs::counter!("serve.accepted").add(1);
                dso_obs::gauge!("serve.queue_depth", nondet).set(depth as f64);
                sink(Reply::Accepted {
                    id: id.clone(),
                    class,
                    queue_depth: depth,
                });
                let job = QueuedJob {
                    request,
                    control,
                    sink: Arc::clone(&sink),
                    admitted: Instant::now(),
                };
                if self.inner.queue.push_reserved(job, class).is_err() {
                    // The daemon shut down between the reservation and
                    // the push; honor the reply contract with a terminal
                    // error since `accepted` already went out.
                    self.inner.stats.lock().expect("stats poisoned").cancelled += 1;
                    dso_obs::counter!("serve.cancelled").add(1);
                    sink(Reply::Error {
                        id: Some(id),
                        code: ErrorCode::Cancelled,
                        detail: "daemon shut down before the job could run".to_string(),
                    });
                    return false;
                }
                true
            }
            None => {
                self.inner.stats.lock().expect("stats poisoned").rejected += 1;
                dso_obs::counter!("serve.rejected").add(1);
                sink(Reply::Error {
                    id: Some(id),
                    code: ErrorCode::QueueFull,
                    detail: format!(
                        "admission queue full ({} jobs); resubmit later",
                        self.inner.config.queue_capacity
                    ),
                });
                false
            }
        }
    }

    /// A snapshot of the service statistics.
    pub fn stats(&self) -> ServiceStats {
        let stats = self.inner.stats.lock().expect("stats poisoned");
        ServiceStats {
            accepted: stats.accepted,
            rejected: stats.rejected,
            completed: stats.completed,
            cancelled: stats.cancelled,
            deadline_exceeded: stats.deadline_exceeded,
            failed: stats.failed,
            preemptions: stats.preemptions,
            queue_peak: stats.queue_peak,
            latency_interactive_ms: stats.latency_interactive_ms.clone(),
            latency_bulk_ms: stats.latency_bulk_ms.clone(),
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }
}

/// Runs one job to its terminal reply. Bulk campaigns get a
/// between-chunks hook that streams progress, steals pending interactive
/// jobs (chunk-granular preemption), and honors cancellation/deadline.
fn run_job(inner: &Arc<Inner>, job: QueuedJob) {
    let QueuedJob {
        request,
        control,
        sink,
        admitted,
    } = job;
    let id = request.id.clone();
    let class = request.priority;

    // A job whose deadline expired (or that was cancelled) while queued
    // never starts.
    if let Some(code) = control.should_stop() {
        finish_aborted(inner, &sink, id, code);
        return;
    }

    let hooks = {
        let control = Arc::clone(&control);
        let sink = Arc::clone(&sink);
        let sink_id = id.clone();
        let inner = Arc::clone(inner);
        let preempt = class == Priority::Bulk;
        let stream = matches!(request.kind, JobKind::Campaign { .. });
        let last_sent = Mutex::new(0usize);
        ExecHooks::between_chunks(move |progress| {
            if stream && progress.completed > 0 {
                let mut last = last_sent.lock().expect("progress poisoned");
                if progress.completed > *last {
                    *last = progress.completed;
                    drop(last);
                    if !sink(Reply::Chunk {
                        id: sink_id.clone(),
                        completed: progress.completed,
                        total: progress.total,
                    }) {
                        // Client gone: cancel cooperatively.
                        control.cancel();
                    }
                }
            }
            if preempt {
                while let Some(stolen) = inner.queue.try_pop_interactive() {
                    // How often stealing fires depends on scheduling, so
                    // the count lives in the (nondeterministic) stats and
                    // gauge, never in a deterministic counter.
                    inner.stats.lock().expect("stats poisoned").preemptions += 1;
                    run_job(&inner, stolen);
                }
            }
            control.should_stop().is_none()
        })
    };

    let session = &inner.session;
    let result = match &request.kind {
        JobKind::Campaign {
            defect,
            op,
            r_values,
            n_ops,
        }
        | JobKind::Planes {
            defect,
            op,
            r_values,
            n_ops,
        } => plane_campaign_hooked(
            session.service(),
            defect,
            op,
            r_values,
            *n_ops,
            &CampaignFaults::new(),
            session.config(),
            &hooks,
        )
        .map(|c| protocol::campaign_result(&c)),
        JobKind::Border {
            defect,
            op,
            settling,
            rel_tol,
        } => {
            let detection = DetectionCondition::default_for(defect, *settling);
            find_border(session.service(), defect, &detection, op, *rel_tol)
                .map(|b| protocol::border_result(&b))
        }
        JobKind::Detection {
            defect,
            op,
            r_target,
            max_settling,
        } => derive_detection(session.service(), defect, *r_target, op, *max_settling)
            .map(|d| protocol::detection_result(&d)),
        JobKind::Shmoo {
            defect,
            op,
            r_values,
            n_ops,
            stress,
            values,
        } => {
            let base = *op;
            let axis = *stress;
            margin_shmoo(
                session.service(),
                defect,
                *n_ops,
                r_values,
                axis.label(),
                values,
                move |v| Ok(axis.apply(&base, v)),
            )
            .map(|p| protocol::shmoo_result(&p))
        }
        JobKind::DesignSweep {
            designs,
            defects,
            op,
            r_points,
            n_ops,
        } => DesignSpace::new(designs.clone())
            .and_then(|space| {
                let sweep = DesignSweepRequest::new(defects.clone())
                    .with_op_points(vec![*op])
                    .with_r_points(*r_points)
                    .with_n_ops(*n_ops);
                session.design_sweep(&space, &sweep)
            })
            .map(|r| protocol::design_sweep_result(&r)),
    };

    match result {
        Ok(payload) => {
            let wall_ms = admitted.elapsed().as_secs_f64() * 1e3;
            {
                let mut stats = inner.stats.lock().expect("stats poisoned");
                stats.completed += 1;
                match class {
                    Priority::Interactive => stats.latency_interactive_ms.push(wall_ms),
                    Priority::Bulk => stats.latency_bulk_ms.push(wall_ms),
                }
            }
            dso_obs::counter!("serve.completed").add(1);
            match class {
                Priority::Interactive => {
                    dso_obs::histogram!("serve.latency_ms.interactive", LATENCY_EDGES_MS, nondet)
                        .observe(wall_ms)
                }
                Priority::Bulk => {
                    dso_obs::histogram!("serve.latency_ms.bulk", LATENCY_EDGES_MS, nondet)
                        .observe(wall_ms)
                }
            }
            sink(Reply::Done {
                id,
                result: payload,
                wall_ms,
            });
        }
        Err(e) => {
            // Map an exec-layer abort to the *reason* it was requested:
            // an expired deadline reports deadline_exceeded even though
            // the mechanism is the same cooperative chunk abort.
            let code = match (&e, control.should_stop()) {
                (crate::CoreError::Cancelled { .. }, Some(code)) => code,
                _ => protocol::code_for(&e),
            };
            if matches!(code, ErrorCode::Cancelled | ErrorCode::DeadlineExceeded) {
                finish_aborted(inner, &sink, id, code);
            } else {
                inner.stats.lock().expect("stats poisoned").failed += 1;
                dso_obs::counter!("serve.failed").add(1);
                sink(Reply::Error {
                    id: Some(id),
                    code,
                    detail: e.to_string(),
                });
            }
        }
    }
}

fn finish_aborted(inner: &Arc<Inner>, sink: &ReplySink, id: String, code: ErrorCode) {
    {
        let mut stats = inner.stats.lock().expect("stats poisoned");
        match code {
            ErrorCode::DeadlineExceeded => stats.deadline_exceeded += 1,
            _ => stats.cancelled += 1,
        }
    }
    match code {
        ErrorCode::DeadlineExceeded => dso_obs::counter!("serve.deadline_exceeded").add(1),
        _ => dso_obs::counter!("serve.cancelled").add(1),
    }
    let detail = match code {
        ErrorCode::DeadlineExceeded => "deadline expired before the job finished".to_string(),
        _ => "job cancelled".to_string(),
    };
    sink(Reply::Error {
        id: Some(id),
        code,
        detail,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[5.0], 0.5), 5.0);
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), 50.0);
        assert_eq!(percentile(&xs, 0.95), 95.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        // Order-insensitive.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.99), 3.0);
    }

    #[test]
    fn serve_config_env_round_trip() {
        let d = ServeConfig::default();
        assert_eq!(d.workers, 2);
        assert_eq!(d.queue_capacity, 64);
        assert_eq!(d.max_frame_bytes, 65536);
        assert_eq!(d.default_deadline_ms, 0.0);
    }

    #[test]
    fn job_control_precedence() {
        let c = JobControl::new(Some(Instant::now() - std::time::Duration::from_millis(1)));
        assert_eq!(c.should_stop(), Some(ErrorCode::DeadlineExceeded));
        c.cancel();
        assert_eq!(c.should_stop(), Some(ErrorCode::Cancelled));
        let c = JobControl::new(None);
        assert_eq!(c.should_stop(), None);
    }
}
