//! Connection plumbing: JSONL framing over any `BufRead`/`Write` pair
//! (stdin/stdout) and, on Unix, a Unix-domain socket acceptor.
//!
//! One connection is one request stream multiplexing any number of jobs
//! by id. The connection stays alive through malformed frames — they get
//! structured `error` replies — and a client that vanishes (EOF or a
//! failed write) has all of its in-flight jobs cancelled cooperatively,
//! so a bulk campaign stops at the next chunk boundary while its
//! completed chunks stay in the store.

use super::daemon::{DaemonHandle, JobControl};
use super::protocol::{parse_frame, ControlRequest, ErrorCode, Frame, Reply};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::{mpsc, Arc, Mutex};

/// Reads one newline-terminated frame, never buffering more than
/// `max + 1` bytes. Returns `None` at EOF, otherwise the line (without
/// the newline) and whether it blew the size limit (the overlong tail is
/// discarded so the stream stays framed).
fn read_bounded_line(
    reader: &mut impl BufRead,
    max: usize,
) -> std::io::Result<Option<(String, bool)>> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF. A final unterminated line still counts as a frame.
            return Ok(if line.is_empty() && !oversized {
                None
            } else {
                Some((String::from_utf8_lossy(&line).into_owned(), oversized))
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let upto = newline.unwrap_or(buf.len());
        if !oversized {
            if line.len() + upto > max {
                oversized = true;
                line.clear();
            } else {
                line.extend_from_slice(&buf[..upto]);
            }
        }
        let consumed = newline.map_or(upto, |n| n + 1);
        reader.consume(consumed);
        if newline.is_some() {
            return Ok(Some((
                String::from_utf8_lossy(&line).into_owned(),
                oversized,
            )));
        }
    }
}

/// Serves one client connection until EOF or a `shutdown` control frame.
///
/// Replies are written by a dedicated thread so a slow simulation never
/// blocks frame intake (cancel frames must land while a campaign runs).
///
/// # Errors
///
/// Only I/O failures on the *read* side surface; a broken write side
/// cancels the connection's jobs and ends the loop cleanly.
pub fn serve_connection(
    handle: &DaemonHandle,
    mut reader: impl BufRead,
    writer: impl Write + Send,
) -> std::io::Result<()> {
    let max_frame = handle.config().max_frame_bytes;
    let active: Arc<Mutex<HashMap<String, Arc<JobControl>>>> = Arc::new(Mutex::new(HashMap::new()));
    let (tx, rx) = mpsc::channel::<Reply>();

    std::thread::scope(|scope| -> std::io::Result<()> {
        let writer_active = Arc::clone(&active);
        scope.spawn(move || {
            let mut writer = writer;
            let mut broken = false;
            // Drain until every sender (the read loop and all in-flight
            // job sinks) is gone, so job replies never block on a dead
            // channel.
            for reply in rx {
                if let (true, Some(id)) = (reply.is_terminal(), reply.id()) {
                    writer_active.lock().expect("active poisoned").remove(id);
                }
                if broken {
                    continue;
                }
                if writeln!(writer, "{}", reply.to_line())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // Client gone: stop writing, cancel everything still
                    // in flight, keep draining.
                    broken = true;
                    for control in writer_active.lock().expect("active poisoned").values() {
                        control.cancel();
                    }
                }
            }
        });

        // A `shutdown` frame is a graceful close: in-flight jobs run to
        // completion and their replies drain. EOF without it means the
        // client vanished, which cancels everything still in flight.
        let mut graceful = false;
        let result = loop {
            let (line, oversized) = match read_bounded_line(&mut reader, max_frame) {
                Ok(Some(frame)) => frame,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            };
            if oversized {
                dso_obs::counter!("serve.protocol_errors").add(1);
                let _ = tx.send(Reply::Error {
                    id: None,
                    code: ErrorCode::OversizedFrame,
                    detail: format!("frame exceeds {max_frame} bytes"),
                });
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            match parse_frame(&line) {
                Err(e) => {
                    dso_obs::counter!("serve.protocol_errors").add(1);
                    let _ = tx.send(Reply::Error {
                        id: e.id,
                        code: e.code,
                        detail: e.detail,
                    });
                }
                Ok(Frame::Control(ControlRequest::Cancel { id })) => {
                    // Idempotent: cancelling a finished or unknown job is
                    // a no-op.
                    if let Some(control) = active.lock().expect("active poisoned").get(&id) {
                        control.cancel();
                    }
                }
                Ok(Frame::Control(ControlRequest::Stats { id })) => {
                    let body = handle.stats().to_json(handle.queue_depth());
                    let _ = tx.send(Reply::Stats { id, body });
                }
                Ok(Frame::Control(ControlRequest::Shutdown)) => {
                    graceful = true;
                    break Ok(());
                }
                Ok(Frame::Job(request)) => {
                    let id = request.id.clone();
                    let control = handle.make_control(&request);
                    {
                        let mut active = active.lock().expect("active poisoned");
                        if active.contains_key(&id) {
                            dso_obs::counter!("serve.protocol_errors").add(1);
                            let _ = tx.send(Reply::Error {
                                id: Some(id),
                                code: ErrorCode::BadRequest,
                                detail: "duplicate id: a job with this id is in flight".into(),
                            });
                            continue;
                        }
                        // Index the control before submitting so cancel
                        // frames and the terminal reply's cleanup always
                        // find it.
                        active.insert(id, Arc::clone(&control));
                    }
                    let sink_tx = tx.clone();
                    let sink: super::daemon::ReplySink =
                        Arc::new(move |reply: Reply| sink_tx.send(reply).is_ok());
                    // On queue_full the rejection already went out as a
                    // terminal reply and the writer thread clears the
                    // slot.
                    handle.submit(request, control, sink);
                }
            }
        };

        // Dead client (EOF/read error without shutdown): cancel whatever
        // is still in flight. Either way, drop our sender so the writer
        // thread exits once the in-flight jobs release theirs.
        if !graceful {
            for control in active.lock().expect("active poisoned").values() {
                control.cancel();
            }
        }
        drop(tx);
        result
    })
}

/// Binds `path` and serves each accepted connection on its own thread.
/// Runs until the listener fails (e.g. the socket file is removed).
///
/// # Errors
///
/// Propagates bind failures; per-connection errors only end that
/// connection.
#[cfg(unix)]
pub fn serve_unix(handle: &DaemonHandle, path: &std::path::Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    std::thread::scope(|scope| loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                scope.spawn(move || {
                    let reader = std::io::BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let _ = serve_connection(&handle, reader, stream);
                });
            }
            Err(e) => break Err(e),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_line_reader_frames_and_limits() {
        let mut input = Cursor::new(b"short\ntoolongline\nnext\nlast".to_vec());
        assert_eq!(
            read_bounded_line(&mut input, 8).expect("read"),
            Some(("short".into(), false))
        );
        // Overlong line reports oversized and is fully discarded.
        assert_eq!(
            read_bounded_line(&mut input, 8).expect("read"),
            Some((String::new(), true))
        );
        assert_eq!(
            read_bounded_line(&mut input, 8).expect("read"),
            Some(("next".into(), false))
        );
        // Unterminated trailing line still arrives, then EOF.
        assert_eq!(
            read_bounded_line(&mut input, 8).expect("read"),
            Some(("last".into(), false))
        );
        assert_eq!(read_bounded_line(&mut input, 8).expect("read"), None);
    }

    #[test]
    fn bounded_line_reader_exact_boundary() {
        let mut input = Cursor::new(b"12345678\n123456789\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut input, 8).expect("read"),
            Some(("12345678".into(), false))
        );
        assert_eq!(
            read_bounded_line(&mut input, 8).expect("read"),
            Some((String::new(), true))
        );
    }
}
