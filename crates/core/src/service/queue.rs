//! Bounded two-class admission queue.
//!
//! Admission is non-blocking and bounded: [`AdmissionQueue::try_push`]
//! rejects immediately when the queue is at capacity, which the daemon
//! turns into an explicit `queue_full` backpressure reply instead of
//! stalling the client's connection. Workers pop interactive jobs ahead
//! of bulk jobs regardless of arrival order; bulk workers additionally
//! steal interactive jobs between campaign chunks via
//! [`AdmissionQueue::try_pop_interactive`] (chunk-granular preemption).

use super::protocol::Priority;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Slots<T> {
    interactive: VecDeque<T>,
    bulk: VecDeque<T>,
    /// Slots claimed by [`AdmissionQueue::try_reserve`] whose jobs are
    /// not yet visible to poppers. Counted against capacity so a
    /// reserved slot can never be stolen by a concurrent push.
    reserved: usize,
    closed: bool,
}

impl<T> Slots<T> {
    fn occupied(&self) -> usize {
        self.interactive.len() + self.bulk.len() + self.reserved
    }
}

/// A bounded MPMC queue with two strict priority classes.
pub struct AdmissionQueue<T> {
    slots: Mutex<Slots<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` jobs across both
    /// classes. A zero capacity is clamped to one so admission is never
    /// structurally impossible.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            slots: Mutex::new(Slots {
                interactive: VecDeque::new(),
                bulk: VecDeque::new(),
                reserved: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Attempts to admit a job. Returns the queue depth right after
    /// admission, or `Err(job)` (backpressure — the caller replies
    /// `queue_full`) when the queue is at capacity or closed. Never
    /// blocks.
    pub fn try_push(&self, job: T, class: Priority) -> Result<usize, T> {
        let mut slots = self.slots.lock().expect("queue poisoned");
        if slots.closed || slots.occupied() >= self.capacity {
            return Err(job);
        }
        match class {
            Priority::Interactive => slots.interactive.push_back(job),
            Priority::Bulk => slots.bulk.push_back(job),
        }
        let depth = slots.occupied();
        drop(slots);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Claims a slot without making any job visible to poppers. Returns
    /// the queue depth including the reservation, or `None` under
    /// backpressure. The caller must follow up with
    /// [`AdmissionQueue::push_reserved`]; the split lets the daemon emit
    /// the `accepted` reply *before* a worker can possibly pop the job,
    /// so a fast worker can never reorder the terminal reply ahead of
    /// `accepted` on the same sink.
    pub fn try_reserve(&self) -> Option<usize> {
        let mut slots = self.slots.lock().expect("queue poisoned");
        if slots.closed || slots.occupied() >= self.capacity {
            return None;
        }
        slots.reserved += 1;
        Some(slots.occupied())
    }

    /// Fills a slot claimed by [`AdmissionQueue::try_reserve`], making
    /// the job poppable. Returns the job back if the queue was closed
    /// between the reservation and the push (daemon shutting down).
    pub fn push_reserved(&self, job: T, class: Priority) -> Result<(), T> {
        let mut slots = self.slots.lock().expect("queue poisoned");
        debug_assert!(slots.reserved > 0, "push_reserved without try_reserve");
        slots.reserved = slots.reserved.saturating_sub(1);
        if slots.closed {
            return Err(job);
        }
        match class {
            Priority::Interactive => slots.interactive.push_back(job),
            Priority::Bulk => slots.bulk.push_back(job),
        }
        drop(slots);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (interactive first) or the queue
    /// is closed and drained; `None` means shut down.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut slots = self.slots.lock().expect("queue poisoned");
        loop {
            if let Some(job) = slots.interactive.pop_front() {
                return Some(job);
            }
            if let Some(job) = slots.bulk.pop_front() {
                return Some(job);
            }
            if slots.closed {
                return None;
            }
            slots = self.ready.wait(slots).expect("queue poisoned");
        }
    }

    /// Pops a pending interactive job without blocking. Bulk workers call
    /// this between campaign chunks to run interactive queries inline —
    /// the preemption mechanism.
    pub fn try_pop_interactive(&self) -> Option<T> {
        self.slots
            .lock()
            .expect("queue poisoned")
            .interactive
            .pop_front()
    }

    /// Current depth across both classes, including reserved slots.
    pub fn depth(&self) -> usize {
        self.slots.lock().expect("queue poisoned").occupied()
    }

    /// Closes the queue: pending jobs still drain, new pushes are
    /// rejected, and blocked poppers wake with `None` once empty.
    pub fn close(&self) {
        self.slots.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_overtakes_bulk() {
        let q = AdmissionQueue::new(8);
        q.try_push("b1", Priority::Bulk).expect("push");
        q.try_push("b2", Priority::Bulk).expect("push");
        q.try_push("i1", Priority::Interactive).expect("push");
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop_blocking(), Some("i1"));
        assert_eq!(q.pop_blocking(), Some("b1"));
        assert_eq!(q.pop_blocking(), Some("b2"));
    }

    #[test]
    fn capacity_rejects_without_blocking() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1, Priority::Bulk), Ok(1));
        assert_eq!(q.try_push(2, Priority::Interactive), Ok(2));
        assert_eq!(q.try_push(3, Priority::Interactive), Err(3));
        // Draining one slot readmits.
        assert_eq!(q.pop_blocking(), Some(2));
        assert_eq!(q.try_push(3, Priority::Interactive), Ok(2));
    }

    #[test]
    fn steal_only_touches_interactive() {
        let q = AdmissionQueue::new(4);
        q.try_push("bulk", Priority::Bulk).expect("push");
        assert_eq!(q.try_pop_interactive(), None);
        q.try_push("query", Priority::Interactive).expect("push");
        assert_eq!(q.try_pop_interactive(), Some("query"));
        assert_eq!(q.pop_blocking(), Some("bulk"));
    }

    #[test]
    fn reserve_holds_capacity_until_pushed() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_reserve(), Some(1));
        assert_eq!(q.try_reserve(), Some(2));
        // Reserved slots count against capacity for both entry points.
        assert_eq!(q.try_reserve(), None);
        assert_eq!(q.try_push(9, Priority::Bulk), Err(9));
        // Nothing is poppable until the reservation is filled.
        assert_eq!(q.try_pop_interactive(), None);
        q.push_reserved(1, Priority::Interactive).expect("push");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_blocking(), Some(1));
        q.push_reserved(2, Priority::Bulk).expect("push");
        assert_eq!(q.pop_blocking(), Some(2));

        // Closing between reserve and push hands the job back.
        let q2 = AdmissionQueue::new(1);
        assert_eq!(q2.try_reserve(), Some(1));
        q2.close();
        assert_eq!(q2.push_reserved(5, Priority::Bulk), Err(5));
    }

    #[test]
    fn close_drains_then_wakes_poppers() {
        let q = std::sync::Arc::new(AdmissionQueue::new(4));
        q.try_push(7, Priority::Bulk).expect("push");
        q.close();
        assert_eq!(q.try_push(8, Priority::Bulk), Err(8));
        assert_eq!(q.pop_blocking(), Some(7));
        assert_eq!(q.pop_blocking(), None);

        // A popper blocked on an empty queue wakes on close.
        let q2 = std::sync::Arc::new(AdmissionQueue::<i32>::new(1));
        let waiter = {
            let q2 = q2.clone();
            std::thread::spawn(move || q2.pop_blocking())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q2.close();
        assert_eq!(waiter.join().expect("join"), None);
    }
}
