//! JSONL wire protocol of the campaign service daemon.
//!
//! One JSON object per line in both directions, built on the in-tree
//! [`dso_obs::json`] reader/writer — the workspace stays zero-dependency
//! and `f64` payloads round-trip bit-exactly (shortest-round-trip
//! formatting), which is what lets the serve drill compare daemon replies
//! against direct [`crate::Session`] results for *bit* identity.
//!
//! # Request frames
//!
//! Job frames carry a client-chosen `id`, a `kind`, and kind-specific
//! parameters; `priority` and `deadline_ms` are optional:
//!
//! ```json
//! {"id":"b1","kind":"border","defect":{"site":"O3","side":"true"},
//!  "op":{"vdd":2.4},"settling":2,"rel_tol":0.05,
//!  "priority":"interactive","deadline_ms":5000}
//! ```
//!
//! | kind        | parameters                                   | default priority |
//! |-------------|----------------------------------------------|------------------|
//! | `campaign`  | `defect`, `op`, `r_values`, `n_ops` (streams per-chunk progress) | `bulk` |
//! | `planes`    | `defect`, `op`, `r_values`, `n_ops`          | `interactive`    |
//! | `border`    | `defect`, `op`, `settling`, `rel_tol`        | `interactive`    |
//! | `detection` | `defect`, `op`, `r_target`, `max_settling`   | `interactive`    |
//! | `shmoo`     | `defect`, `op`, `r_values`, `n_ops`, `stress` (`vdd`/`tcyc`), `values` | `interactive` |
//! | `design_sweep` | `designs` (array of design-config objects), `defects` (array), `op`, `r_points`, `n_ops` | `bulk` |
//!
//! Control frames use `control` instead of `kind`: `cancel` (with the
//! target `id`), `stats`, and `shutdown`.
//!
//! # Reply frames
//!
//! Every job receives exactly one `accepted` *or* one terminal
//! `error(queue_full)` at admission, and — if accepted — exactly one
//! terminal frame later: `done` or `error`. Bulk campaigns additionally
//! stream `chunk` progress frames between the two. Structured error codes:
//! `bad_request`, `parse_error`, `oversized_frame`, `queue_full`,
//! `deadline_exceeded`, `cancelled`, and `failed` (simulation failure).

use crate::CoreError;
use dso_defects::{BitLineSide, Defect};
use dso_dram::column::DefectSite;
use dso_dram::design::{DesignConfig, OperatingPoint};
use dso_obs::json::Json;
use std::collections::BTreeMap;

/// Builds a JSON object from key/value pairs.
fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Scheduling class of a job. Interactive jobs overtake bulk jobs in the
/// admission queue and preempt running bulk campaigns at chunk
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Short engineer-in-the-loop queries (border, detection, …).
    Interactive,
    /// Long grinding campaigns.
    Bulk,
}

impl Priority {
    /// The wire label (`"interactive"` / `"bulk"`).
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }

    fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "bulk" => Some(Priority::Bulk),
            _ => None,
        }
    }
}

/// Structured error codes of `error` reply frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame parsed but the request is invalid (unknown kind, bad
    /// parameters, duplicate id, …).
    BadRequest,
    /// The frame is not valid JSON or lacks required structure.
    ParseError,
    /// The frame exceeds the `DSO_SERVE_MAX_FRAME` byte limit.
    OversizedFrame,
    /// The admission queue is full — explicit backpressure; resubmit
    /// later.
    QueueFull,
    /// The per-request deadline expired before the job finished; any
    /// in-flight campaign chunks were freed at the next boundary.
    DeadlineExceeded,
    /// The job was cancelled (explicit `cancel` frame or client gone).
    Cancelled,
    /// The simulation itself failed (convergence, sweep unusable, …).
    Failed,
}

impl ErrorCode {
    /// The wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadRequest,
            ErrorCode::ParseError,
            ErrorCode::OversizedFrame,
            ErrorCode::QueueFull,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Cancelled,
            ErrorCode::Failed,
        ]
        .into_iter()
        .find(|c| c.label() == s)
    }
}

/// The analysis a job frame asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Fault-tolerant plane campaign, streamed chunk-by-chunk
    /// (bulk-class by default).
    Campaign {
        /// Defect under analysis.
        defect: Defect,
        /// Stress combination.
        op: OperatingPoint,
        /// Swept defect resistances.
        r_values: Vec<f64>,
        /// Operations per trajectory.
        n_ops: usize,
    },
    /// The same campaign without streaming (interactive-class by
    /// default).
    Planes {
        /// Defect under analysis.
        defect: Defect,
        /// Stress combination.
        op: OperatingPoint,
        /// Swept defect resistances.
        r_values: Vec<f64>,
        /// Operations per trajectory.
        n_ops: usize,
    },
    /// Border resistance by pass/fail bisection under the defect class's
    /// default detection condition.
    Border {
        /// Defect under analysis.
        defect: Defect,
        /// Stress combination.
        op: OperatingPoint,
        /// Settling writes of the detection condition.
        settling: usize,
        /// Relative bisection tolerance.
        rel_tol: f64,
    },
    /// Detection-condition derivation at a target resistance.
    Detection {
        /// Defect under analysis.
        defect: Defect,
        /// Stress combination.
        op: OperatingPoint,
        /// Defect resistance to derive the condition at.
        r_target: f64,
        /// Maximum settling writes to grow to.
        max_settling: usize,
    },
    /// Write-margin Shmoo over a resistance × stress grid.
    Shmoo {
        /// Defect under analysis.
        defect: Defect,
        /// Base stress combination (the swept axis overrides one field).
        op: OperatingPoint,
        /// Swept defect resistances.
        r_values: Vec<f64>,
        /// Operations per trajectory.
        n_ops: usize,
        /// Which operating-point field the stress axis sweeps.
        stress: StressAxis,
        /// Stress axis values.
        values: Vec<f64>,
    },
    /// One-pass cross-design coverage sweep over declarative design
    /// configs (bulk-class by default).
    DesignSweep {
        /// Declarative design configs, in sweep order.
        designs: Vec<DesignConfig>,
        /// Defects to analyze per design.
        defects: Vec<Defect>,
        /// Stress combination every campaign runs at.
        op: OperatingPoint,
        /// Log-spaced resistance points per defect class.
        r_points: usize,
        /// Operations per trajectory.
        n_ops: usize,
    },
}

impl JobKind {
    /// The wire label of the kind.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Campaign { .. } => "campaign",
            JobKind::Planes { .. } => "planes",
            JobKind::Border { .. } => "border",
            JobKind::Detection { .. } => "detection",
            JobKind::Shmoo { .. } => "shmoo",
            JobKind::DesignSweep { .. } => "design_sweep",
        }
    }

    /// The scheduling class used when the frame names none.
    pub fn default_priority(&self) -> Priority {
        match self {
            JobKind::Campaign { .. } | JobKind::DesignSweep { .. } => Priority::Bulk,
            _ => Priority::Interactive,
        }
    }
}

/// The operating-point field a Shmoo stress axis sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressAxis {
    /// Supply voltage, volts.
    Vdd,
    /// Cycle time, seconds.
    Tcyc,
}

impl StressAxis {
    /// The wire label.
    pub fn label(&self) -> &'static str {
        match self {
            StressAxis::Vdd => "vdd",
            StressAxis::Tcyc => "tcyc",
        }
    }

    /// The operating point with this axis set to `value`.
    pub fn apply(&self, base: &OperatingPoint, value: f64) -> OperatingPoint {
        let mut op = *base;
        match self {
            StressAxis::Vdd => op.vdd = value,
            StressAxis::Tcyc => op.tcyc = value,
        }
        op
    }
}

/// A parsed job frame.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen correlation id; echoed on every reply.
    pub id: String,
    /// The requested analysis.
    pub kind: JobKind,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional deadline in milliseconds from admission.
    pub deadline_ms: Option<f64>,
}

/// A parsed control frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlRequest {
    /// Cooperatively cancel the job with this id.
    Cancel {
        /// Target job id.
        id: String,
    },
    /// Request a service-stats frame.
    Stats {
        /// Correlation id for the stats reply.
        id: String,
    },
    /// Close this connection after draining its replies.
    Shutdown,
}

/// Any parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An analysis job.
    Job(JobRequest),
    /// A control action.
    Control(ControlRequest),
}

/// A parse/validation failure: the offending frame's id when one could be
/// extracted, the structured code, and a human detail.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// The frame's id, when extractable (addressed error replies).
    pub id: Option<String>,
    /// Structured error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

fn frame_err(id: Option<String>, code: ErrorCode, detail: impl Into<String>) -> FrameError {
    FrameError {
        id,
        code,
        detail: detail.into(),
    }
}

fn site_from_label(s: &str) -> Option<DefectSite> {
    DefectSite::ALL.into_iter().find(|site| site.label() == s)
}

fn side_from_label(s: &str) -> Option<BitLineSide> {
    match s {
        "true" => Some(BitLineSide::True),
        "comp" => Some(BitLineSide::Comp),
        _ => None,
    }
}

/// Serializes a defect as its wire object (`{"site":"O3","side":"true"}`).
pub fn defect_to_json(defect: &Defect) -> Json {
    obj([
        ("site", Json::Str(defect.site().label().to_string())),
        ("side", Json::Str(defect.side().label().to_string())),
    ])
}

fn defect_from_json(v: Option<&Json>) -> Result<Defect, String> {
    let v = v.ok_or("missing \"defect\"")?;
    let site = v
        .get("site")
        .and_then(Json::as_str)
        .ok_or("defect missing string \"site\"")?;
    let side = v
        .get("side")
        .and_then(Json::as_str)
        .ok_or("defect missing string \"side\"")?;
    Ok(Defect::new(
        site_from_label(site).ok_or_else(|| format!("unknown defect site {site:?}"))?,
        side_from_label(side).ok_or_else(|| format!("unknown bit-line side {side:?}"))?,
    ))
}

/// Serializes an operating point as its wire object.
pub fn op_to_json(op: &OperatingPoint) -> Json {
    obj([
        ("vdd", Json::Num(op.vdd)),
        ("tcyc", Json::Num(op.tcyc)),
        ("duty", Json::Num(op.duty)),
        ("temp_c", Json::Num(op.temp_c)),
    ])
}

fn op_from_json(v: Option<&Json>) -> Result<OperatingPoint, String> {
    let mut op = OperatingPoint::nominal();
    let Some(v) = v else { return Ok(op) };
    if !matches!(v, Json::Obj(_)) {
        return Err("\"op\" must be an object".into());
    }
    let field = |name: &str, current: f64| -> Result<f64, String> {
        match v.get(name) {
            None => Ok(current),
            Some(x) => x
                .as_f64()
                .ok_or_else(|| format!("op field {name:?} must be a number")),
        }
    };
    op.vdd = field("vdd", op.vdd)?;
    op.tcyc = field("tcyc", op.tcyc)?;
    op.duty = field("duty", op.duty)?;
    op.temp_c = field("temp_c", op.temp_c)?;
    op.validate().map_err(|e| e.to_string())?;
    Ok(op)
}

fn f64_array(v: Option<&Json>, name: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array {name:?}"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("{name:?} must contain only numbers"))
        })
        .collect()
}

fn usize_field(doc: &Json, name: &str, default: usize) -> Result<usize, String> {
    match doc.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("{name:?} must be a non-negative integer")),
    }
}

fn f64_field(doc: &Json, name: &str, default: f64) -> Result<f64, String> {
    match doc.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("{name:?} must be a number")),
    }
}

/// Parses one request line into a [`Frame`].
///
/// # Errors
///
/// Returns a [`FrameError`] carrying the structured code (and the frame's
/// id when it could be extracted) for malformed JSON, unknown kinds, or
/// invalid parameters. The daemon answers these with an `error` reply and
/// keeps serving — a bad frame never kills the connection.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    let doc = Json::parse(line)
        .map_err(|e| frame_err(None, ErrorCode::ParseError, format!("invalid JSON: {e}")))?;
    if doc.as_obj().is_none() {
        return Err(frame_err(
            None,
            ErrorCode::ParseError,
            "frame must be a JSON object",
        ));
    }
    let id = doc.get("id").and_then(Json::as_str).map(str::to_string);

    if let Some(control) = doc.get("control").and_then(Json::as_str) {
        return match control {
            "cancel" => Ok(Frame::Control(ControlRequest::Cancel {
                id: id.ok_or_else(|| {
                    frame_err(None, ErrorCode::BadRequest, "cancel needs a string \"id\"")
                })?,
            })),
            "stats" => Ok(Frame::Control(ControlRequest::Stats {
                id: id.unwrap_or_else(|| "stats".to_string()),
            })),
            "shutdown" => Ok(Frame::Control(ControlRequest::Shutdown)),
            other => Err(frame_err(
                id,
                ErrorCode::BadRequest,
                format!("unknown control {other:?}"),
            )),
        };
    }

    let Some(id) = id else {
        return Err(frame_err(
            None,
            ErrorCode::BadRequest,
            "job frame needs a string \"id\"",
        ));
    };
    let bad = |detail: String| frame_err(Some(id.clone()), ErrorCode::BadRequest, detail);
    let kind_label = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("job frame needs a string \"kind\"".into()))?;

    // `design_sweep` carries design/defect *arrays*, not the single
    // `defect` every other kind requires — handle it before the shared
    // extraction.
    if kind_label == "design_sweep" {
        let design_docs = doc
            .get("designs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("design_sweep needs an array \"designs\"".into()))?;
        let designs = design_docs
            .iter()
            .map(|d| DesignConfig::from_json(d).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(&bad)?;
        let defect_docs = doc
            .get("defects")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("design_sweep needs an array \"defects\"".into()))?;
        let defects = defect_docs
            .iter()
            .map(|d| defect_from_json(Some(d)))
            .collect::<Result<Vec<_>, _>>()
            .map_err(&bad)?;
        let kind = JobKind::DesignSweep {
            designs,
            defects,
            op: op_from_json(doc.get("op")).map_err(&bad)?,
            r_points: usize_field(&doc, "r_points", 12).map_err(&bad)?,
            n_ops: usize_field(&doc, "n_ops", 2).map_err(&bad)?,
        };
        return finish_job_frame(&doc, id, kind);
    }

    let defect = defect_from_json(doc.get("defect")).map_err(&bad)?;
    let op = op_from_json(doc.get("op")).map_err(&bad)?;
    let kind = match kind_label {
        "campaign" | "planes" => {
            let r_values = f64_array(doc.get("r_values"), "r_values").map_err(&bad)?;
            let n_ops = usize_field(&doc, "n_ops", 2).map_err(&bad)?;
            if kind_label == "campaign" {
                JobKind::Campaign {
                    defect,
                    op,
                    r_values,
                    n_ops,
                }
            } else {
                JobKind::Planes {
                    defect,
                    op,
                    r_values,
                    n_ops,
                }
            }
        }
        "border" => JobKind::Border {
            defect,
            op,
            settling: usize_field(&doc, "settling", 2).map_err(&bad)?,
            rel_tol: f64_field(&doc, "rel_tol", 0.05).map_err(&bad)?,
        },
        "detection" => JobKind::Detection {
            defect,
            op,
            r_target: doc
                .get("r_target")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("detection needs a numeric \"r_target\"".into()))?,
            max_settling: usize_field(&doc, "max_settling", 8).map_err(&bad)?,
        },
        "shmoo" => {
            let stress_label = doc
                .get("stress")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("shmoo needs a string \"stress\"".into()))?;
            let stress = match stress_label {
                "vdd" => StressAxis::Vdd,
                "tcyc" => StressAxis::Tcyc,
                other => return Err(bad(format!("unknown stress axis {other:?}"))),
            };
            JobKind::Shmoo {
                defect,
                op,
                r_values: f64_array(doc.get("r_values"), "r_values").map_err(&bad)?,
                n_ops: usize_field(&doc, "n_ops", 2).map_err(&bad)?,
                stress,
                values: f64_array(doc.get("values"), "values").map_err(&bad)?,
            }
        }
        other => return Err(bad(format!("unknown kind {other:?}"))),
    };
    finish_job_frame(&doc, id, kind)
}

/// Applies the kind-independent tail of a job frame: `priority` and
/// `deadline_ms`.
fn finish_job_frame(doc: &Json, id: String, kind: JobKind) -> Result<Frame, FrameError> {
    let bad = |detail: String| frame_err(Some(id.clone()), ErrorCode::BadRequest, detail);
    let priority = match doc.get("priority").and_then(Json::as_str) {
        None => kind.default_priority(),
        Some(s) => Priority::parse(s).ok_or_else(|| bad(format!("unknown priority {s:?}")))?,
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| bad("\"deadline_ms\" must be a non-negative number".into()))?,
        ),
    };

    Ok(Frame::Job(JobRequest {
        id,
        kind,
        priority,
        deadline_ms,
    }))
}

impl JobRequest {
    /// Serializes the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut map = BTreeMap::from([
            ("id".to_string(), Json::Str(self.id.clone())),
            ("kind".to_string(), Json::Str(self.kind.label().to_string())),
            (
                "priority".to_string(),
                Json::Str(self.priority.label().to_string()),
            ),
        ]);
        if let Some(ms) = self.deadline_ms {
            map.insert("deadline_ms".to_string(), Json::Num(ms));
        }
        let nums = |xs: &[f64]| Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect());
        match &self.kind {
            JobKind::Campaign {
                defect,
                op,
                r_values,
                n_ops,
            }
            | JobKind::Planes {
                defect,
                op,
                r_values,
                n_ops,
            } => {
                map.insert("defect".to_string(), defect_to_json(defect));
                map.insert("op".to_string(), op_to_json(op));
                map.insert("r_values".to_string(), nums(r_values));
                map.insert("n_ops".to_string(), Json::Num(*n_ops as f64));
            }
            JobKind::Border {
                defect,
                op,
                settling,
                rel_tol,
            } => {
                map.insert("defect".to_string(), defect_to_json(defect));
                map.insert("op".to_string(), op_to_json(op));
                map.insert("settling".to_string(), Json::Num(*settling as f64));
                map.insert("rel_tol".to_string(), Json::Num(*rel_tol));
            }
            JobKind::Detection {
                defect,
                op,
                r_target,
                max_settling,
            } => {
                map.insert("defect".to_string(), defect_to_json(defect));
                map.insert("op".to_string(), op_to_json(op));
                map.insert("r_target".to_string(), Json::Num(*r_target));
                map.insert("max_settling".to_string(), Json::Num(*max_settling as f64));
            }
            JobKind::Shmoo {
                defect,
                op,
                r_values,
                n_ops,
                stress,
                values,
            } => {
                map.insert("defect".to_string(), defect_to_json(defect));
                map.insert("op".to_string(), op_to_json(op));
                map.insert("r_values".to_string(), nums(r_values));
                map.insert("n_ops".to_string(), Json::Num(*n_ops as f64));
                map.insert("stress".to_string(), Json::Str(stress.label().to_string()));
                map.insert("values".to_string(), nums(values));
            }
            JobKind::DesignSweep {
                designs,
                defects,
                op,
                r_points,
                n_ops,
            } => {
                map.insert(
                    "designs".to_string(),
                    Json::Arr(designs.iter().map(DesignConfig::to_json).collect()),
                );
                map.insert(
                    "defects".to_string(),
                    Json::Arr(defects.iter().map(defect_to_json).collect()),
                );
                map.insert("op".to_string(), op_to_json(op));
                map.insert("r_points".to_string(), Json::Num(*r_points as f64));
                map.insert("n_ops".to_string(), Json::Num(*n_ops as f64));
            }
        }
        Json::Obj(map).to_string()
    }
}

/// One reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The job passed admission and is queued.
    Accepted {
        /// Echoed job id.
        id: String,
        /// Scheduling class the job was admitted under.
        class: Priority,
        /// Queue depth right after admission (both classes).
        queue_depth: usize,
    },
    /// Bulk-campaign progress: chunks completed so far.
    Chunk {
        /// Echoed job id.
        id: String,
        /// Chunks completed.
        completed: usize,
        /// Total chunks in the deterministic decomposition.
        total: usize,
    },
    /// Terminal success, carrying the result payload.
    Done {
        /// Echoed job id.
        id: String,
        /// Kind-specific result payload (see the result builders).
        result: Json,
        /// Wall-clock milliseconds from admission to completion
        /// (nondeterministic; excluded from bit-identity comparisons).
        wall_ms: f64,
    },
    /// Terminal failure with a structured code.
    Error {
        /// Echoed job id (`None` when the frame had no extractable id).
        id: Option<String>,
        /// Structured code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Service statistics (reply to a `stats` control frame).
    Stats {
        /// Echoed correlation id.
        id: String,
        /// The stats document.
        body: Json,
    },
}

impl Reply {
    /// The job id the reply addresses, when any.
    pub fn id(&self) -> Option<&str> {
        match self {
            Reply::Accepted { id, .. }
            | Reply::Chunk { id, .. }
            | Reply::Done { id, .. }
            | Reply::Stats { id, .. } => Some(id),
            Reply::Error { id, .. } => id.as_deref(),
        }
    }

    /// `true` for frames that end a job's lifecycle (`done` / `error`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Reply::Done { .. } | Reply::Error { .. })
    }

    /// Serializes the reply as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Reply::Accepted {
                id,
                class,
                queue_depth,
            } => obj([
                ("event", Json::Str("accepted".into())),
                ("id", Json::Str(id.clone())),
                ("class", Json::Str(class.label().into())),
                ("queue_depth", Json::Num(*queue_depth as f64)),
            ]),
            Reply::Chunk {
                id,
                completed,
                total,
            } => obj([
                ("event", Json::Str("chunk".into())),
                ("id", Json::Str(id.clone())),
                ("completed", Json::Num(*completed as f64)),
                ("total", Json::Num(*total as f64)),
            ]),
            Reply::Done {
                id,
                result,
                wall_ms,
            } => obj([
                ("event", Json::Str("done".into())),
                ("id", Json::Str(id.clone())),
                ("result", result.clone()),
                ("wall_ms", Json::Num(*wall_ms)),
            ]),
            Reply::Error { id, code, detail } => obj([
                ("event", Json::Str("error".into())),
                (
                    "id",
                    id.as_ref().map_or(Json::Null, |s| Json::Str(s.clone())),
                ),
                ("code", Json::Str(code.label().into())),
                ("detail", Json::Str(detail.clone())),
            ]),
            Reply::Stats { id, body } => obj([
                ("event", Json::Str("stats".into())),
                ("id", Json::Str(id.clone())),
                ("body", body.clone()),
            ]),
        }
        .to_string()
    }

    /// Parses one reply line (the client half of the protocol; used by
    /// the serve drill and tests).
    ///
    /// # Errors
    ///
    /// Returns a rendered message for malformed frames.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        let id = || {
            doc.get("id")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| "reply missing string \"id\"".to_string())
        };
        match doc.get("event").and_then(Json::as_str) {
            Some("accepted") => Ok(Reply::Accepted {
                id: id()?,
                class: doc
                    .get("class")
                    .and_then(Json::as_str)
                    .and_then(Priority::parse)
                    .ok_or("accepted missing class")?,
                queue_depth: doc
                    .get("queue_depth")
                    .and_then(Json::as_u64)
                    .ok_or("accepted missing queue_depth")? as usize,
            }),
            Some("chunk") => Ok(Reply::Chunk {
                id: id()?,
                completed: doc
                    .get("completed")
                    .and_then(Json::as_u64)
                    .ok_or("chunk missing completed")? as usize,
                total: doc
                    .get("total")
                    .and_then(Json::as_u64)
                    .ok_or("chunk missing total")? as usize,
            }),
            Some("done") => Ok(Reply::Done {
                id: id()?,
                result: doc.get("result").cloned().ok_or("done missing result")?,
                wall_ms: doc
                    .get("wall_ms")
                    .and_then(Json::as_f64)
                    .ok_or("done missing wall_ms")?,
            }),
            Some("error") => Ok(Reply::Error {
                id: doc.get("id").and_then(Json::as_str).map(str::to_string),
                code: doc
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .ok_or("error missing code")?,
                detail: doc
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            Some("stats") => Ok(Reply::Stats {
                id: id()?,
                body: doc.get("body").cloned().unwrap_or(Json::Null),
            }),
            other => Err(format!("unknown reply event {other:?}")),
        }
    }
}

// ---- result payload builders --------------------------------------------

/// Serializes a plane campaign as the `done` payload of `campaign` /
/// `planes` jobs. Every `f64` survives the wire bit-exactly (shortest
/// round-trip formatting), so two payloads are string-equal iff the
/// campaigns are bit-identical.
pub fn campaign_result(c: &crate::analysis::planes::PlaneCampaign) -> Json {
    let curves = |tracks: &[dso_num::interp::Curve]| {
        Json::Arr(
            tracks
                .iter()
                .map(|t| Json::Arr(t.ys().iter().map(|&y| Json::Num(y)).collect()))
                .collect(),
        )
    };
    let border = match c.border_from_intersection() {
        Ok(Some(b)) => Json::Num(b),
        Ok(None) => Json::Null,
        // BorderInGap renders deterministically; keep the payload total.
        Err(e) => Json::Str(e.to_string()),
    };
    let confidence = match c.confidence {
        crate::analysis::Confidence::Full => "full".to_string(),
        crate::analysis::Confidence::Degraded { gaps } => format!("degraded:{gaps}"),
    };
    obj([
        ("border", border),
        ("confidence", Json::Str(confidence)),
        ("points", Json::Num(c.planes.w0.r_values.len() as f64)),
        (
            "gaps",
            Json::Arr(
                c.gaps()
                    .iter()
                    .map(|&(lo, hi)| Json::Arr(vec![Json::Num(lo), Json::Num(hi)]))
                    .collect(),
            ),
        ),
        ("vmp", Json::Num(c.planes.vmp)),
        (
            "r_values",
            Json::Arr(c.planes.w0.r_values.iter().map(|&r| Json::Num(r)).collect()),
        ),
        ("w0", curves(&c.planes.w0.curves)),
        ("w1", curves(&c.planes.w1.curves)),
        (
            "vsa",
            Json::Arr(c.planes.r.vsa.ys().iter().map(|&y| Json::Num(y)).collect()),
        ),
        ("read_below", curves(&c.planes.r.from_below)),
        ("read_above", curves(&c.planes.r.from_above)),
    ])
}

/// Serializes a border resistance as the `done` payload of `border` jobs.
pub fn border_result(b: &crate::analysis::border::BorderResistance) -> Json {
    obj([
        ("resistance", Json::Num(b.resistance)),
        ("fails_above", Json::Bool(b.fails_above)),
        ("evaluations", Json::Num(b.evaluations as f64)),
    ])
}

/// Serializes a detection condition as the `done` payload of `detection`
/// jobs.
pub fn detection_result(d: &crate::analysis::detection::DetectionCondition) -> Json {
    use crate::analysis::detection::PhysOp;
    let ops: Vec<Json> = d
        .ops()
        .iter()
        .map(|op| {
            Json::Str(match op {
                PhysOp::Write { high } => format!("w{}", u8::from(*high)),
                PhysOp::Read { expect_high } => format!("r{}", u8::from(*expect_high)),
                PhysOp::Pause { cycles } => format!("del{cycles}"),
            })
        })
        .collect();
    obj([
        ("condition", Json::Str(d.to_string())),
        ("ops", Json::Arr(ops)),
        ("initial_level", Json::Bool(d.initial_level())),
    ])
}

/// Serializes a Shmoo plot as the `done` payload of `shmoo` jobs: axis
/// values plus one glyph row per y value (`+` pass / `.` fail).
pub fn shmoo_result(p: &dso_shmoo::ShmooPlot) -> Json {
    let rows: Vec<Json> = (0..p.y_values().len())
        .map(|yi| {
            Json::Str(
                (0..p.x_values().len())
                    .map(|xi| p.outcome(xi, yi).glyph())
                    .collect(),
            )
        })
        .collect();
    obj([
        (
            "x",
            Json::Arr(p.x_values().iter().map(|&x| Json::Num(x)).collect()),
        ),
        (
            "y",
            Json::Arr(p.y_values().iter().map(|&y| Json::Num(y)).collect()),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// Serializes a design-space sweep as the `done` payload of
/// `design_sweep` jobs: one coverage object per design (fingerprints as
/// zero-padded hex strings — `u64` does not survive an `f64` payload)
/// plus the distinct-plan and cross-design-dedup counts.
pub fn design_sweep_result(r: &crate::analysis::DesignSweepResult) -> Json {
    let designs: Vec<Json> = r
        .designs
        .iter()
        .map(|d| {
            let cells: Vec<Json> = d
                .cells
                .iter()
                .map(|c| {
                    obj([
                        ("defect", defect_to_json(&c.defect)),
                        ("op", op_to_json(&c.op_point)),
                        ("border", c.border.map_or(Json::Null, Json::Num)),
                        ("fails_above", Json::Bool(c.fails_above)),
                        ("vmp", Json::Num(c.vmp)),
                        (
                            "confidence",
                            Json::Str(match c.confidence {
                                crate::analysis::Confidence::Full => "full".to_string(),
                                crate::analysis::Confidence::Degraded { gaps } => {
                                    format!("degraded:{gaps}")
                                }
                            }),
                        ),
                    ])
                })
                .collect();
            obj([
                ("name", Json::Str(d.name.clone())),
                ("fingerprint", Json::Str(format!("{:016x}", d.fingerprint))),
                ("transfer_ratio", Json::Num(d.transfer_ratio)),
                ("cbl", Json::Num(d.cbl)),
                ("wl_boost", Json::Num(d.wl_boost)),
                ("cells", Json::Arr(cells)),
            ])
        })
        .collect();
    obj([
        ("designs", Json::Arr(designs)),
        ("distinct_plans", Json::Num(r.distinct_plans as f64)),
        (
            "cross_design_dedup",
            Json::Num(r.cross_design_dedup() as f64),
        ),
    ])
}

/// Maps a campaign-layer error to its structured wire code.
pub fn code_for(e: &CoreError) -> ErrorCode {
    match e {
        CoreError::BadRequest(_) => ErrorCode::BadRequest,
        CoreError::Cancelled { .. } => ErrorCode::Cancelled,
        _ => ErrorCode::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defect() -> Defect {
        Defect::cell_open(BitLineSide::True)
    }

    #[test]
    fn job_round_trip() {
        let req = JobRequest {
            id: "b1".into(),
            kind: JobKind::Border {
                defect: defect(),
                op: OperatingPoint::nominal(),
                settling: 3,
                rel_tol: 0.04,
            },
            priority: Priority::Interactive,
            deadline_ms: Some(1500.0),
        };
        let line = req.to_line();
        match parse_frame(&line).expect("round trip") {
            Frame::Job(parsed) => assert_eq!(parsed, req),
            other => panic!("expected job frame, got {other:?}"),
        }
    }

    #[test]
    fn campaign_round_trip_and_default_priority() {
        let req = JobRequest {
            id: "c1".into(),
            kind: JobKind::Campaign {
                defect: defect(),
                op: OperatingPoint::nominal(),
                r_values: vec![1e4, 1e5, 1.25e6],
                n_ops: 2,
            },
            priority: Priority::Bulk,
            deadline_ms: None,
        };
        match parse_frame(&req.to_line()).expect("round trip") {
            Frame::Job(parsed) => assert_eq!(parsed, req),
            other => panic!("expected job frame, got {other:?}"),
        }
        // Priority defaults by kind when absent.
        let line = r#"{"id":"c2","kind":"campaign","defect":{"site":"O3","side":"true"},"r_values":[1e4,1e5]}"#;
        match parse_frame(line).expect("defaults") {
            Frame::Job(j) => {
                assert_eq!(j.priority, Priority::Bulk);
                match j.kind {
                    JobKind::Campaign { op, n_ops, .. } => {
                        assert_eq!(op, OperatingPoint::nominal());
                        assert_eq!(n_ops, 2);
                    }
                    other => panic!("wrong kind {other:?}"),
                }
            }
            other => panic!("expected job frame, got {other:?}"),
        }
        let line = r#"{"id":"q1","kind":"planes","defect":{"site":"Sg","side":"comp"},"r_values":[1e4,1e5]}"#;
        match parse_frame(line).expect("planes") {
            Frame::Job(j) => assert_eq!(j.priority, Priority::Interactive),
            other => panic!("expected job frame, got {other:?}"),
        }
    }

    #[test]
    fn shmoo_and_detection_round_trip() {
        for kind in [
            JobKind::Shmoo {
                defect: defect(),
                op: OperatingPoint::nominal(),
                r_values: vec![1e4, 1e6],
                n_ops: 2,
                stress: StressAxis::Vdd,
                values: vec![2.0, 2.4, 2.8],
            },
            JobKind::Detection {
                defect: defect(),
                op: OperatingPoint::nominal(),
                r_target: 1e6,
                max_settling: 4,
            },
        ] {
            let req = JobRequest {
                id: "x".into(),
                priority: kind.default_priority(),
                deadline_ms: None,
                kind,
            };
            match parse_frame(&req.to_line()).expect("round trip") {
                Frame::Job(parsed) => assert_eq!(parsed, req),
                other => panic!("expected job frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn design_sweep_round_trip_and_defaults() {
        use dso_dram::design::DesignConfig;
        let req = JobRequest {
            id: "ds1".into(),
            kind: JobKind::DesignSweep {
                designs: vec![
                    DesignConfig::paper_default(),
                    DesignConfig {
                        name: "tall".into(),
                        cells_per_bitline: 4,
                        ..DesignConfig::paper_default()
                    },
                ],
                defects: vec![defect(), Defect::cell_open(BitLineSide::Comp)],
                op: OperatingPoint::nominal(),
                r_points: 8,
                n_ops: 3,
            },
            priority: Priority::Bulk,
            deadline_ms: None,
        };
        match parse_frame(&req.to_line()).expect("round trip") {
            Frame::Job(parsed) => assert_eq!(parsed, req),
            other => panic!("expected job frame, got {other:?}"),
        }

        // Omitted grid parameters default; the kind is bulk-class.
        let line = r#"{"id":"ds2","kind":"design_sweep","designs":[{"name":"a"}],"defects":[{"site":"O3","side":"true"}]}"#;
        match parse_frame(line).expect("defaults") {
            Frame::Job(j) => {
                assert_eq!(j.priority, Priority::Bulk);
                match j.kind {
                    JobKind::DesignSweep {
                        designs,
                        op,
                        r_points,
                        n_ops,
                        ..
                    } => {
                        // Omitted config fields default from the paper column.
                        assert_eq!(
                            designs[0],
                            DesignConfig {
                                name: "a".into(),
                                ..DesignConfig::paper_default()
                            }
                        );
                        assert_eq!(op, OperatingPoint::nominal());
                        assert_eq!(r_points, 12);
                        assert_eq!(n_ops, 2);
                    }
                    other => panic!("wrong kind {other:?}"),
                }
            }
            other => panic!("expected job frame, got {other:?}"),
        }
    }

    #[test]
    fn design_sweep_bad_configs_are_bad_requests() {
        // Missing the designs array entirely.
        let e = parse_frame(r#"{"id":"d1","kind":"design_sweep","defects":[]}"#)
            .expect_err("no designs");
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert_eq!(e.id.as_deref(), Some("d1"));

        // A config that fails validation (negative capacitance).
        let e = parse_frame(
            r#"{"id":"d2","kind":"design_sweep","designs":[{"name":"x","cell_cap":-1.0}],"defects":[{"site":"O3","side":"true"}]}"#,
        )
        .expect_err("invalid config");
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.detail.contains("cell_cap"), "{}", e.detail);

        // A bad defect inside the array.
        let e = parse_frame(
            r#"{"id":"d3","kind":"design_sweep","designs":[{"name":"x"}],"defects":[{"site":"O9","side":"true"}]}"#,
        )
        .expect_err("bad defect");
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.detail.contains("O9"), "{}", e.detail);
    }

    #[test]
    fn malformed_frames_yield_structured_errors() {
        let e = parse_frame("{nope").expect_err("bad json");
        assert_eq!(e.code, ErrorCode::ParseError);
        assert_eq!(e.id, None);

        let e = parse_frame("[1,2]").expect_err("not an object");
        assert_eq!(e.code, ErrorCode::ParseError);

        let e = parse_frame(r#"{"kind":"border"}"#).expect_err("no id");
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert_eq!(e.id, None);

        // With an id present, the error is addressed to it.
        let e = parse_frame(r#"{"id":"j1","kind":"teleport"}"#).expect_err("unknown kind");
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert_eq!(e.id.as_deref(), Some("j1"));

        let e = parse_frame(r#"{"id":"j2","kind":"border","defect":{"site":"O9","side":"true"}}"#)
            .expect_err("unknown site");
        assert!(e.detail.contains("O9"), "{}", e.detail);

        let e = parse_frame(
            r#"{"id":"j3","kind":"border","defect":{"site":"O3","side":"true"},"op":{"vdd":99.0}}"#,
        )
        .expect_err("op out of range");
        assert_eq!(e.code, ErrorCode::BadRequest);

        let e = parse_frame(
            r#"{"id":"j4","kind":"border","defect":{"site":"O3","side":"true"},"deadline_ms":-1}"#,
        )
        .expect_err("negative deadline");
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(
            parse_frame(r#"{"control":"cancel","id":"c1"}"#).expect("cancel"),
            Frame::Control(ControlRequest::Cancel { id: "c1".into() })
        );
        assert_eq!(
            parse_frame(r#"{"control":"stats","id":"s"}"#).expect("stats"),
            Frame::Control(ControlRequest::Stats { id: "s".into() })
        );
        assert_eq!(
            parse_frame(r#"{"control":"shutdown"}"#).expect("shutdown"),
            Frame::Control(ControlRequest::Shutdown)
        );
        assert!(parse_frame(r#"{"control":"dance"}"#).is_err());
    }

    #[test]
    fn reply_round_trip() {
        let replies = [
            Reply::Accepted {
                id: "a".into(),
                class: Priority::Interactive,
                queue_depth: 3,
            },
            Reply::Chunk {
                id: "c".into(),
                completed: 2,
                total: 6,
            },
            Reply::Done {
                id: "d".into(),
                result: obj([("resistance", Json::Num(1.25e6))]),
                wall_ms: 12.5,
            },
            Reply::Error {
                id: Some("e".into()),
                code: ErrorCode::DeadlineExceeded,
                detail: "late".into(),
            },
            Reply::Error {
                id: None,
                code: ErrorCode::ParseError,
                detail: "bad".into(),
            },
            Reply::Stats {
                id: "s".into(),
                body: obj([("accepted", Json::Num(4.0))]),
            },
        ];
        for reply in replies {
            let parsed = Reply::parse(&reply.to_line()).expect("reply round trip");
            assert_eq!(parsed, reply);
            assert_eq!(
                parsed.is_terminal(),
                matches!(reply, Reply::Done { .. } | Reply::Error { .. })
            );
        }
    }

    #[test]
    fn f64_payloads_round_trip_bit_exactly() {
        let values = [1.0 / 3.0, 2.4e-7, f64::MIN_POSITIVE, 0.1 + 0.2];
        let reply = Reply::Done {
            id: "bits".into(),
            result: Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()),
            wall_ms: 0.0,
        };
        match Reply::parse(&reply.to_line()).expect("parse") {
            Reply::Done { result, .. } => {
                let got = result.as_arr().expect("array");
                for (a, b) in values.iter().zip(got) {
                    assert_eq!(a.to_bits(), b.as_f64().expect("num").to_bits());
                }
            }
            other => panic!("expected done, got {other:?}"),
        }
    }
}
