//! Campaign service mode: a resident daemon wrapping a [`Session`] and
//! its persistent store behind a dependency-free JSONL job protocol.
//!
//! The paper's workflow is interactive at heart — an engineer probes
//! detection conditions and stress borders for one defect while bulk
//! campaigns grind in the background — so the daemon's semantics are
//! production ones, not transport sugar:
//!
//! * **Bounded admission** ([`queue::AdmissionQueue`]): a full queue
//!   answers `queue_full` immediately instead of stalling the client.
//! * **Two priorities** ([`Priority`]): interactive queries overtake
//!   queued bulk work *and* preempt a running bulk campaign at chunk
//!   granularity — the campaign's between-chunks hook runs them inline.
//! * **Deadlines + cooperative cancellation** ([`JobControl`]): expiry,
//!   an explicit `cancel` frame, or a vanished client all abort an
//!   in-flight campaign at the next chunk boundary, freeing its workers;
//!   chunks that already ran stay in the evaluation cache and store as a
//!   deterministic, replayable prefix.
//! * **Observability**: deterministic `serve.*` counters (bit-identical
//!   across thread counts for a fixed workload) plus nondeterministic
//!   queue-depth gauges and per-class wall-latency histograms.
//!
//! Determinism contract: a job's `result` payload is **bit-identical**
//! to the equivalent direct [`Session`] call — chunk decomposition
//! depends only on the sweep, warm-start chains live inside chunks, and
//! every `f64` crosses the wire with shortest-round-trip formatting.
//! Only `wall_ms` and latency metrics vary run to run. The serve drill
//! (`examples/serve_drill.rs`) holds CI to exactly this contract.
//!
//! [`Session`]: crate::session::Session

pub mod daemon;
pub mod protocol;
pub mod queue;
pub mod transport;

pub use daemon::{
    percentile, Daemon, DaemonHandle, JobControl, ReplySink, ServeConfig, ServiceStats,
    LATENCY_EDGES_MS,
};
pub use protocol::{
    design_sweep_result, parse_frame, ControlRequest, ErrorCode, Frame, FrameError, JobKind,
    JobRequest, Priority, Reply, StressAxis,
};
pub use queue::AdmissionQueue;
pub use transport::serve_connection;
#[cfg(unix)]
pub use transport::serve_unix;
