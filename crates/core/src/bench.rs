//! Offline micro-benchmark harness for campaign timing.
//!
//! The workspace must build without a registry, so this is a small
//! hand-rolled alternative to criterion: median-of-k wall-clock timing
//! plus a JSON writer for `BENCH_campaign.json`. The schema per record is
//! `{name, threads, wall_ms, points, newton_iters, cache_hit_rate,
//! disk_hit_rate, lu_reuse_rate, bypass_hit_rate, dedup_waits,
//! serve_p99_ms, cross_design_dedup_rate}` — enough for CI to trend
//! campaign throughput, the evaluation-cache and persistent-store payoff,
//! the modified-Newton fast path, serving tail latency, the multi-design
//! dedup payoff, and for the bench example to assert serial/parallel
//! equivalence.

use std::time::Instant;

/// One timed campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Scenario label, e.g. `"plane_campaign/serial-cold"`.
    pub name: String,
    /// Worker threads the scenario ran with.
    pub threads: usize,
    /// Median wall-clock time over the repeats, in milliseconds.
    pub wall_ms: f64,
    /// Sweep points the campaign evaluated.
    pub points: usize,
    /// Total Newton iterations the campaign spent.
    pub newton_iters: usize,
    /// Fraction of simulation requests answered by the evaluation cache
    /// (`0.0` for a cold run on a fresh service).
    pub cache_hit_rate: f64,
    /// Fraction of simulation requests served from the persistent store's
    /// disk tier (`0.0` when no store is attached).
    pub disk_hit_rate: f64,
    /// Fraction of Newton iterations that reused the previous LU
    /// factorization (`0.0` under legacy tuning).
    pub lu_reuse_rate: f64,
    /// Fraction of device evaluations answered from the bypass cache
    /// (`0.0` under legacy tuning).
    pub bypass_hit_rate: f64,
    /// Requests that blocked on an identical in-flight computation.
    pub dedup_waits: usize,
    /// Interactive-class p99 latency under the replayed mixed service
    /// workload, in milliseconds (`0.0` for scenarios that never touch
    /// the daemon).
    pub serve_p99_ms: f64,
    /// Fraction of the scenario's campaigns whose healthy-reference grid
    /// was answered from another design's results (`0.0` for
    /// single-design scenarios).
    pub cross_design_dedup_rate: f64,
}

/// Runs `f` `repeats` times (at least once) and returns the median
/// wall-clock milliseconds together with the last result.
pub fn median_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let repeats = repeats.max(1);
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = if times.len() % 2 == 1 {
        times[times.len() / 2]
    } else {
        (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
    };
    let Some(last) = last else {
        unreachable!("repeats >= 1 guarantees at least one run")
    };
    (median, last)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes bench records as a pretty-printed JSON array (stable field
/// order matching the documented schema).
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"points\": {}, \
             \"newton_iters\": {}, \"cache_hit_rate\": {:.3}, \"disk_hit_rate\": {:.3}, \
             \"lu_reuse_rate\": {:.3}, \"bypass_hit_rate\": {:.3}, \"dedup_waits\": {}, \
             \"serve_p99_ms\": {:.3}, \"cross_design_dedup_rate\": {:.3}}}",
            escape_json(&r.name),
            r.threads,
            r.wall_ms,
            r.points,
            r.newton_iters,
            r.cache_hit_rate,
            r.disk_hit_rate,
            r.lu_reuse_rate,
            r.bypass_hit_rate,
            r.dedup_waits,
            r.serve_p99_ms,
            r.cross_design_dedup_rate
        ));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out.push('\n');
    out
}

/// Derived perf figures gated against `BENCH_baseline.json` in CI.
///
/// Raw wall-clock times are useless as a committed baseline — CI runners
/// and dev machines differ wildly — so the gate compares *derived* ratios
/// that are stable across hosts:
///
/// * `warm_iter_saving` — fraction of Newton iterations the warm-start
///   path saves over cold starts. Fully deterministic (iteration counts,
///   not time).
/// * `speedup_per_core` — parallel speedup of the widest scenario divided
///   by the cores that could actually serve it
///   (`min(threads, available_parallelism)`), i.e. per-core scaling
///   efficiency in `(0, 1]`.
/// * `batch_speedup` — cold points-per-second of the lanes=8 batched
///   solver over the cold scalar solver at one thread. Single-threaded
///   on both sides, so the ratio isolates the SoA payoff from scheduling
///   noise and stays comparable across hosts.
/// * `modified_newton_speedup` — cold points-per-second of the
///   modified-Newton fast path (LU reuse + device bypass, default
///   tuning) over the legacy full-Newton path at one thread. The CI
///   floor is 1.5x regardless of the committed baseline.
/// * `cross_design_dedup_rate` — fraction of the multi-design scenario's
///   campaigns whose healthy-reference grid was answered from another
///   design's results. Fully deterministic (plan-fingerprint collisions,
///   not time).
/// * `serve_p99_ms` — interactive-class p99 latency of the replayed
///   mixed service workload (daemon queries preempting a bulk campaign).
///   The one lower-is-better figure: the gate trips when the *current*
///   value exceeds the baseline by more than the tolerance.
///
/// Refresh after an intentional perf change with:
///
/// ```text
/// cargo run --release --example bench_campaign -- --write-baseline
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchBaseline {
    /// Fraction of Newton iterations saved by warm starts (deterministic).
    pub warm_iter_saving: f64,
    /// Parallel speedup per effective core (wall-clock derived).
    pub speedup_per_core: f64,
    /// Cold batched (lanes=8) over cold scalar points-per-second at one
    /// thread (wall-clock derived).
    pub batch_speedup: f64,
    /// Cold modified-Newton (default tuning) over cold legacy-tuning
    /// points-per-second at one thread (wall-clock derived).
    pub modified_newton_speedup: f64,
    /// Fraction of multi-design campaigns sharing a healthy-reference
    /// grid (deterministic).
    pub cross_design_dedup_rate: f64,
    /// Interactive-class p99 of the replayed service workload, in
    /// milliseconds (wall-clock derived; lower is better).
    pub serve_p99_ms: f64,
}

impl BenchBaseline {
    /// Serializes the baseline in the committed `BENCH_baseline.json`
    /// format.
    pub fn to_json(&self) -> String {
        use dso_obs::json::Json;
        use std::collections::BTreeMap;
        let mut doc = Json::Obj(BTreeMap::from([
            ("schema".to_string(), Json::Num(1.0)),
            (
                "warm_iter_saving".to_string(),
                Json::Num(self.warm_iter_saving),
            ),
            (
                "speedup_per_core".to_string(),
                Json::Num(self.speedup_per_core),
            ),
            ("batch_speedup".to_string(), Json::Num(self.batch_speedup)),
            (
                "modified_newton_speedup".to_string(),
                Json::Num(self.modified_newton_speedup),
            ),
            (
                "cross_design_dedup_rate".to_string(),
                Json::Num(self.cross_design_dedup_rate),
            ),
            ("serve_p99_ms".to_string(), Json::Num(self.serve_p99_ms)),
        ]))
        .to_string();
        doc.push('\n');
        doc
    }

    /// Parses a `BENCH_baseline.json` document.
    ///
    /// # Errors
    ///
    /// Returns a rendered message for malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<BenchBaseline, String> {
        use dso_obs::json::Json;
        let doc = Json::parse(text.trim()).map_err(|e| e.to_string())?;
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline missing numeric {name:?}"))
        };
        Ok(BenchBaseline {
            warm_iter_saving: field("warm_iter_saving")?,
            speedup_per_core: field("speedup_per_core")?,
            batch_speedup: field("batch_speedup")?,
            modified_newton_speedup: field("modified_newton_speedup")?,
            cross_design_dedup_rate: field("cross_design_dedup_rate")?,
            serve_p99_ms: field("serve_p99_ms")?,
        })
    }

    /// Compares `current` against this baseline: any figure that fell by
    /// more than `tolerance` (fractional, e.g. `0.25`) is a regression.
    /// Returns one message per regressed figure (empty = gate passes);
    /// improvements never fail.
    pub fn regressions(&self, current: &BenchBaseline, tolerance: f64) -> Vec<String> {
        let mut out = Vec::new();
        let mut gate = |name: &str, base: f64, cur: f64| {
            if base > 0.0 && cur < base * (1.0 - tolerance) {
                out.push(format!(
                    "{name} regressed {:.1}% (baseline {base:.3}, current {cur:.3}, \
                     tolerance {:.0}%)",
                    100.0 * (1.0 - cur / base),
                    100.0 * tolerance
                ));
            }
        };
        gate(
            "warm-start Newton-iteration saving",
            self.warm_iter_saving,
            current.warm_iter_saving,
        );
        gate(
            "parallel speedup per core",
            self.speedup_per_core,
            current.speedup_per_core,
        );
        gate(
            "batched solver speedup over scalar",
            self.batch_speedup,
            current.batch_speedup,
        );
        gate(
            "modified-Newton speedup over legacy tuning",
            self.modified_newton_speedup,
            current.modified_newton_speedup,
        );
        gate(
            "cross-design healthy-reference dedup rate",
            self.cross_design_dedup_rate,
            current.cross_design_dedup_rate,
        );
        // Latency gates invert: the figure is lower-is-better, so the
        // regression is the current value *exceeding* the baseline.
        let mut gate_upper = |name: &str, base: f64, cur: f64| {
            if base > 0.0 && cur > base * (1.0 + tolerance) {
                out.push(format!(
                    "{name} regressed {:.1}% (baseline {base:.3}, current {cur:.3}, \
                     tolerance {:.0}%)",
                    100.0 * (cur / base - 1.0),
                    100.0 * tolerance
                ));
            }
        };
        gate_upper(
            "interactive serving p99 latency",
            self.serve_p99_ms,
            current.serve_p99_ms,
        );
        out
    }
}

/// The cores that can actually serve `threads` workers:
/// `min(threads, available_parallelism)`. Normalizing speedup by this
/// keeps `speedup_per_core` comparable between wide dev machines and
/// narrow CI runners.
pub fn effective_cores(threads: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(threads.max(1))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let mut calls = 0;
        let (ms, out) = median_of(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(out, 3);
        assert!(ms >= 0.0);
        let (_, out) = median_of(0, || 7); // clamped to one repeat
        assert_eq!(out, 7);
    }

    #[test]
    fn json_schema_and_escaping() {
        let records = vec![
            BenchRecord {
                name: "plane_campaign/serial".into(),
                threads: 1,
                wall_ms: 12.3456,
                points: 270,
                newton_iters: 9000,
                cache_hit_rate: 0.0,
                disk_hit_rate: 0.0,
                lu_reuse_rate: 0.0,
                bypass_hit_rate: 0.0,
                dedup_waits: 0,
                serve_p99_ms: 0.0,
                cross_design_dedup_rate: 0.0,
            },
            BenchRecord {
                name: "quote\"tab\t".into(),
                threads: 8,
                wall_ms: 4.0,
                points: 270,
                newton_iters: 9000,
                cache_hit_rate: 0.9876,
                disk_hit_rate: 0.5,
                lu_reuse_rate: 0.6543,
                bypass_hit_rate: 0.25,
                dedup_waits: 3,
                serve_p99_ms: 123.456,
                cross_design_dedup_rate: 0.3333,
            },
        ];
        let json = to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(
            "{\"name\": \"plane_campaign/serial\", \"threads\": 1, \"wall_ms\": 12.346, \
             \"points\": 270, \"newton_iters\": 9000, \"cache_hit_rate\": 0.000, \
             \"disk_hit_rate\": 0.000, \"lu_reuse_rate\": 0.000, \
             \"bypass_hit_rate\": 0.000, \"dedup_waits\": 0, \"serve_p99_ms\": 0.000, \
             \"cross_design_dedup_rate\": 0.000}"
        ));
        assert!(json.contains(
            "\"cache_hit_rate\": 0.988, \"disk_hit_rate\": 0.500, \
             \"lu_reuse_rate\": 0.654, \"bypass_hit_rate\": 0.250, \"dedup_waits\": 3, \
             \"serve_p99_ms\": 123.456, \"cross_design_dedup_rate\": 0.333"
        ));
        assert!(json.contains("quote\\\"tab\\t"));
        // Exactly one comma separator between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn baseline_round_trip_and_gate() {
        let base = BenchBaseline {
            warm_iter_saving: 0.4,
            speedup_per_core: 0.8,
            batch_speedup: 2.0,
            modified_newton_speedup: 2.5,
            cross_design_dedup_rate: 0.333,
            serve_p99_ms: 800.0,
        };
        let parsed = BenchBaseline::from_json(&base.to_json()).expect("round trip");
        assert_eq!(parsed, base);

        // Within tolerance (and improvements) pass. The latency figure is
        // lower-is-better, so a faster p99 is an improvement too.
        let ok = BenchBaseline {
            warm_iter_saving: 0.35,
            speedup_per_core: 0.9,
            batch_speedup: 2.4,
            modified_newton_speedup: 2.2,
            cross_design_dedup_rate: 0.3,
            serve_p99_ms: 900.0,
        };
        assert!(base.regressions(&ok, 0.25).is_empty());

        // A >25% drop in any figure (rise, for the latency) is called out.
        let bad = BenchBaseline {
            warm_iter_saving: 0.2,
            speedup_per_core: 0.5,
            batch_speedup: 1.1,
            modified_newton_speedup: 1.2,
            cross_design_dedup_rate: 0.1,
            serve_p99_ms: 1200.0,
        };
        let msgs = base.regressions(&bad, 0.25);
        assert_eq!(msgs.len(), 6, "{msgs:?}");
        assert!(msgs[0].contains("warm-start"), "{msgs:?}");
        assert!(msgs[1].contains("speedup per core"), "{msgs:?}");
        assert!(msgs[2].contains("batched"), "{msgs:?}");
        assert!(msgs[3].contains("modified-Newton"), "{msgs:?}");
        assert!(msgs[4].contains("cross-design"), "{msgs:?}");
        assert!(msgs[5].contains("p99"), "{msgs:?}");

        // A zeroed latency baseline (no serve scenario yet) never trips.
        let unseeded = BenchBaseline {
            serve_p99_ms: 0.0,
            ..base
        };
        assert_eq!(
            unseeded.regressions(&bad, 0.25).len(),
            5,
            "latency gate armed without a baseline"
        );

        assert!(BenchBaseline::from_json("{}").is_err());
        assert!(BenchBaseline::from_json("nope").is_err());
        assert!(effective_cores(8) >= 1);
        assert_eq!(effective_cores(0), 1);
    }
}
