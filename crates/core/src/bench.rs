//! Offline micro-benchmark harness for campaign timing.
//!
//! The workspace must build without a registry, so this is a small
//! hand-rolled alternative to criterion: median-of-k wall-clock timing
//! plus a JSON writer for `BENCH_campaign.json`. The schema per record is
//! `{name, threads, wall_ms, points, newton_iters}` — enough for CI to
//! trend campaign throughput and for the bench example to assert
//! serial/parallel equivalence.

use std::time::Instant;

/// One timed campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Scenario label, e.g. `"plane_campaign/serial-cold"`.
    pub name: String,
    /// Worker threads the scenario ran with.
    pub threads: usize,
    /// Median wall-clock time over the repeats, in milliseconds.
    pub wall_ms: f64,
    /// Sweep points the campaign evaluated.
    pub points: usize,
    /// Total Newton iterations the campaign spent.
    pub newton_iters: usize,
}

/// Runs `f` `repeats` times (at least once) and returns the median
/// wall-clock milliseconds together with the last result.
pub fn median_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let repeats = repeats.max(1);
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = if times.len() % 2 == 1 {
        times[times.len() / 2]
    } else {
        (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
    };
    let Some(last) = last else {
        unreachable!("repeats >= 1 guarantees at least one run")
    };
    (median, last)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes bench records as a pretty-printed JSON array (stable field
/// order matching the documented schema).
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"points\": {}, \"newton_iters\": {}}}",
            escape_json(&r.name),
            r.threads,
            r.wall_ms,
            r.points,
            r.newton_iters
        ));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let mut calls = 0;
        let (ms, out) = median_of(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(out, 3);
        assert!(ms >= 0.0);
        let (_, out) = median_of(0, || 7); // clamped to one repeat
        assert_eq!(out, 7);
    }

    #[test]
    fn json_schema_and_escaping() {
        let records = vec![
            BenchRecord {
                name: "plane_campaign/serial".into(),
                threads: 1,
                wall_ms: 12.3456,
                points: 270,
                newton_iters: 9000,
            },
            BenchRecord {
                name: "quote\"tab\t".into(),
                threads: 8,
                wall_ms: 4.0,
                points: 270,
                newton_iters: 9000,
            },
        ];
        let json = to_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains(
            "{\"name\": \"plane_campaign/serial\", \"threads\": 1, \"wall_ms\": 12.346, \
             \"points\": 270, \"newton_iters\": 9000}"
        ));
        assert!(json.contains("quote\\\"tab\\t"));
        // Exactly one comma separator between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
    }
}
