//! The unified analysis session.
//!
//! A [`Session`] bundles the three things every analysis entry point used
//! to take separately — an [`EvalService`] (memo cache + optional
//! persistent store), a [`CampaignConfig`] (threads, chunking, warm-start,
//! solver lanes), and the column design behind both — into one object
//! built once, usually from the environment:
//!
//! ```no_run
//! use dso_core::Session;
//! use dso_defects::{BitLineSide, Defect};
//! use dso_dram::design::OperatingPoint;
//!
//! # fn main() -> Result<(), dso_core::CoreError> {
//! let session = Session::from_env();
//! let defect = Defect::cell_open(BitLineSide::True);
//! let campaign = session.planes(
//!     &defect,
//!     &OperatingPoint::nominal(),
//!     &[1e4, 1e5, 1e6, 1e7],
//!     2,
//! )?;
//! println!("border: {:?}", campaign.border_from_intersection()?);
//! # Ok(())
//! # }
//! ```
//!
//! Every method shares the session's memo cache: a border extraction after
//! a plane campaign replays the overlapping grid points, a shmoo row over
//! an already-campaigned operating point is free, and with `DSO_STORE`
//! set all of it persists across processes.

use crate::analysis::border::{find_border, refine_border_from_planes, BorderResistance};
use crate::analysis::design_space::{
    design_sweep_impl, DesignSpace, DesignSweepRequest, DesignSweepResult,
};
use crate::analysis::detection::{derive_detection, DetectionCondition};
use crate::analysis::dictionary::{build_dictionary, FaultDictionary};
use crate::analysis::planes::{
    plane_campaign_impl, result_planes_impl, PlaneCampaign, ResultPlanes,
};
use crate::analysis::shmoo::{detection_shmoo, margin_shmoo};
use crate::analysis::sweep::CampaignFaults;
use crate::analysis::{Analyzer, DefectiveCell};
use crate::eval::EvalService;
use crate::exec::{CampaignConfig, CampaignPerfStats};
use crate::store::ResultStore;
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_march::coverage::{evaluate_coverage, CoverageReport, FaultCase};
use dso_march::test::MarchTest;
use dso_shmoo::ShmooPlot;
use dso_spice::recovery::RecoveryPolicy;
use dso_spice::SolverTuning;
use std::path::PathBuf;

/// Builder for a [`Session`]: column design, recovery policy, execution
/// policy, and persistence, each defaulting sensibly (and to the
/// environment where a `DSO_*` variable exists).
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    design: ColumnDesign,
    recovery: RecoveryPolicy,
    tuning: Option<SolverTuning>,
    config: Option<CampaignConfig>,
    store: Option<PathBuf>,
}

impl SessionBuilder {
    /// Sets the column design under analysis.
    pub fn design(mut self, design: ColumnDesign) -> Self {
        self.design = design;
        self
    }

    /// Sets the convergence-recovery policy applied to every engine.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Sets the solver tuning (modified-Newton LU reuse, device-eval
    /// bypass tolerance) explicitly. Without this, the session reads
    /// `DSO_LU_REUSE` / `DSO_BYPASS_TOL` via
    /// [`crate::analysis::tuning_from_env`]. Tuning is part of the
    /// analyzer context fingerprint, so sessions with different tuning
    /// never share a persistent store.
    pub fn tuning(mut self, tuning: SolverTuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Sets the execution policy explicitly. Without this, the session
    /// reads `DSO_THREADS` / `DSO_CHUNK` / `DSO_LANES` via
    /// [`CampaignConfig::from_env`].
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Attaches (creating if absent) a persistent result store at `path`
    /// as the disk cache tier. Without this, the session honors the
    /// `DSO_STORE` environment variable; unlike the environment path —
    /// which degrades to in-memory with a warning — an explicitly
    /// requested store that cannot be opened is an error.
    pub fn store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// [`CoreError::Store`] when an explicitly requested store cannot be
    /// opened or belongs to a different analyzer context.
    pub fn build(self) -> Result<Session, CoreError> {
        let mut analyzer = Analyzer::new(self.design).with_recovery(self.recovery);
        if let Some(tuning) = self.tuning {
            analyzer = analyzer.with_tuning(tuning);
        }
        let config = self.config.unwrap_or_else(CampaignConfig::from_env);
        let service = match self.store {
            Some(path) => {
                let store = ResultStore::open(&path, EvalService::context_for(&analyzer))?;
                EvalService::with_store(analyzer, store)?
            }
            None => EvalService::from_env(analyzer),
        };
        Ok(Session { service, config })
    }
}

/// The unified entry point to every analysis: result planes, border
/// resistances, shmoo grids, detection conditions, and march-test fault
/// coverage, all sharing one memo cache and one execution policy.
///
/// See the [module docs](self) for the one-stop example.
#[derive(Debug)]
pub struct Session {
    service: EvalService,
    config: CampaignConfig,
}

impl Session {
    /// Starts a builder with default design, recovery, and environment
    /// execution/persistence settings.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session for the default column design, configured entirely from
    /// the environment: `DSO_THREADS`, `DSO_CHUNK`, `DSO_LANES` (execution)
    /// and `DSO_STORE` (persistence, degrading to in-memory with a warning
    /// if unusable).
    pub fn from_env() -> Self {
        Session::with_design(ColumnDesign::default())
    }

    /// [`Session::from_env`] for an explicit column design.
    pub fn with_design(design: ColumnDesign) -> Self {
        Session {
            service: EvalService::from_env(Analyzer::new(design)),
            config: CampaignConfig::from_env(),
        }
    }

    /// Wraps an existing service and execution policy (for callers that
    /// already own an [`EvalService`], e.g. to share its cache with
    /// non-session code during migration).
    pub fn from_parts(service: EvalService, config: CampaignConfig) -> Self {
        Session { service, config }
    }

    /// Replaces the execution policy, keeping the service (and its cache).
    pub fn with_config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// The evaluation service (memo cache + optional store).
    pub fn service(&self) -> &EvalService {
        &self.service
    }

    /// The execution policy campaigns run under.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Decomposes the session into its service and execution policy.
    pub fn into_parts(self) -> (EvalService, CampaignConfig) {
        (self.service, self.config)
    }

    // ---- analyses ----------------------------------------------------

    /// Fault-tolerant result-plane campaign over a resistance sweep (the
    /// paper's Figures 2 and 6): point failures become interpolated gaps
    /// with an explicit confidence downgrade, and every attempted point is
    /// recorded in the returned report.
    ///
    /// # Errors
    ///
    /// * [`CoreError::BadRequest`] for invalid sweeps.
    /// * [`CoreError::SweepFailed`] when fewer than two points survive or
    ///   an edge point failed.
    /// * [`CoreError::BorderInGap`] when a gap straddles the border
    ///   crossing.
    pub fn planes(
        &self,
        defect: &Defect,
        op_point: &OperatingPoint,
        r_values: &[f64],
        n_ops: usize,
    ) -> Result<PlaneCampaign, CoreError> {
        self.planes_faulted(defect, op_point, r_values, n_ops, &CampaignFaults::new())
    }

    /// [`Session::planes`] with the deterministic fault-injection harness
    /// armed at selected sweep indices.
    ///
    /// # Errors
    ///
    /// As [`Session::planes`].
    pub fn planes_faulted(
        &self,
        defect: &Defect,
        op_point: &OperatingPoint,
        r_values: &[f64],
        n_ops: usize,
        faults: &CampaignFaults,
    ) -> Result<PlaneCampaign, CoreError> {
        plane_campaign_impl(
            &self.service,
            defect,
            op_point,
            r_values,
            n_ops,
            faults,
            &self.config,
        )
    }

    /// One-pass cross-design sweep: fans
    /// `(designs × defects × R × operating points)` through the plane
    /// pipeline, sharing one evaluation service between designs whose
    /// configs expand to the same electrical plan (counted in
    /// [`CampaignPerfStats::cross_design_dedup`]). Each per-design
    /// analyzer inherits this session's recovery policy and solver
    /// tuning; the session's own design and store are not used — the
    /// design axis comes entirely from `space`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::BadRequest`] for an invalid request.
    /// * The first failing campaign's error otherwise.
    pub fn design_sweep(
        &self,
        space: &DesignSpace,
        request: &DesignSweepRequest,
    ) -> Result<DesignSweepResult, CoreError> {
        design_sweep_impl(space, request, self.service.analyzer(), &self.config)
    }

    /// Strict result planes: the first point failure aborts the sweep.
    /// Returns the planes with the campaign's performance tally.
    ///
    /// # Errors
    ///
    /// As [`crate::analysis::result_planes`].
    pub fn planes_strict(
        &self,
        defect: &Defect,
        op_point: &OperatingPoint,
        r_values: &[f64],
        n_ops: usize,
    ) -> Result<(ResultPlanes, CampaignPerfStats), CoreError> {
        result_planes_impl(
            &self.service,
            defect,
            op_point,
            r_values,
            n_ops,
            &self.config,
        )
    }

    /// The border resistance of `defect` under `detection`, by pass/fail
    /// log-bisection within the defect's sweep range to relative tolerance
    /// `rel_tol`.
    ///
    /// # Errors
    ///
    /// As [`find_border`].
    pub fn border(
        &self,
        defect: &Defect,
        detection: &DetectionCondition,
        op_point: &OperatingPoint,
        rel_tol: f64,
    ) -> Result<BorderResistance, CoreError> {
        find_border(&self.service, defect, detection, op_point, rel_tol)
    }

    /// Refines the plane-intersection border estimate by log-bisecting the
    /// `(1) w0` × `Vsa` margin on (and between) the campaign grid; after
    /// [`Session::planes`] over the same sweep, the grid walk is pure
    /// cache hits.
    ///
    /// # Errors
    ///
    /// As [`refine_border_from_planes`].
    pub fn refine_border(
        &self,
        defect: &Defect,
        op_point: &OperatingPoint,
        r_values: &[f64],
        n_ops: usize,
        rel_tol: f64,
    ) -> Result<Option<BorderResistance>, CoreError> {
        refine_border_from_planes(&self.service, defect, op_point, r_values, n_ops, rel_tol)
    }

    /// Shmoos the `(1) w0` × `Vsa` write margin over a resistance × stress
    /// grid; `op_of` maps each stress value to the operating point to
    /// simulate at.
    ///
    /// # Errors
    ///
    /// As [`margin_shmoo`].
    pub fn shmoo<F>(
        &self,
        defect: &Defect,
        n_ops: usize,
        r_values: &[f64],
        stress_label: &str,
        stress_values: &[f64],
        op_of: F,
    ) -> Result<ShmooPlot, CoreError>
    where
        F: Fn(f64) -> Result<OperatingPoint, CoreError>,
    {
        margin_shmoo(
            &self.service,
            defect,
            n_ops,
            r_values,
            stress_label,
            stress_values,
            op_of,
        )
    }

    /// Shmoos a detection condition's pass/fail outcome over a two-stress
    /// grid at a fixed defect resistance (the paper's Section-2 Shmoo
    /// plot).
    ///
    /// # Errors
    ///
    /// As [`detection_shmoo`].
    #[allow(clippy::too_many_arguments)] // two labelled axes plus the oracle
    pub fn shmoo_detection<F>(
        &self,
        defect: &Defect,
        detection: &DetectionCondition,
        resistance: f64,
        x_label: &str,
        x_values: &[f64],
        y_label: &str,
        y_values: &[f64],
        op_of: F,
    ) -> Result<ShmooPlot, CoreError>
    where
        F: Fn(f64, f64) -> Result<OperatingPoint, CoreError>,
    {
        detection_shmoo(
            &self.service,
            defect,
            detection,
            resistance,
            x_label,
            x_values,
            y_label,
            y_values,
            op_of,
        )
    }

    /// Derives the detection condition for `defect` at resistance
    /// `r_target`: the number of settling writes is grown (up to
    /// `max_settling`) until the set-up write has converged.
    ///
    /// # Errors
    ///
    /// As [`derive_detection`].
    pub fn detect(
        &self,
        defect: &Defect,
        r_target: f64,
        op_point: &OperatingPoint,
        max_settling: usize,
    ) -> Result<DetectionCondition, CoreError> {
        derive_detection(&self.service, defect, r_target, op_point, max_settling)
    }

    /// An electrically calibrated behavioral fault dictionary for `defect`
    /// at one resistance, sampling each update map at `samples` cell
    /// voltages.
    ///
    /// # Errors
    ///
    /// As [`build_dictionary`].
    pub fn dictionary(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        samples: usize,
    ) -> Result<FaultDictionary, CoreError> {
        build_dictionary(&self.service, defect, resistance, op_point, samples)
    }

    /// Fault coverage of a march test over an ensemble of `defect`
    /// instances at the given resistances: each instance is calibrated
    /// into a behavioral dictionary at `op_point` (through this session's
    /// cache) and installed as the victim of a functional memory of
    /// `memory_size` cells, with the test applied against each.
    ///
    /// # Errors
    ///
    /// * Simulation failures from the calibration.
    /// * [`CoreError::BadRequest`] for an invalid test/memory combination.
    // Mirrors the march-coverage pipeline's natural parameter list; a
    // config struct for one call site would obscure more than it groups.
    #[allow(clippy::too_many_arguments)]
    pub fn coverage(
        &self,
        defect: &Defect,
        resistances: &[f64],
        op_point: &OperatingPoint,
        test: &MarchTest,
        samples: usize,
        memory_size: usize,
        victim_address: usize,
    ) -> Result<CoverageReport, CoreError> {
        let mut cases = Vec::with_capacity(resistances.len());
        for &r in resistances {
            let dict = self.dictionary(defect, r, op_point, samples)?;
            cases.push(FaultCase {
                label: format!("{r:.2e} Ω"),
                make: Box::new(move || Box::new(DefectiveCell::new(dict.clone(), 0.0))),
            });
        }
        evaluate_coverage(test, &cases, memory_size, victim_address)
            .map_err(|e| CoreError::BadRequest(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::fast_design;
    use dso_defects::BitLineSide;

    fn fast_session() -> Session {
        Session::builder()
            .design(fast_design())
            .config(CampaignConfig::serial())
            .build()
            .expect("in-memory session")
    }

    #[test]
    fn session_planes_match_direct_campaign() {
        let session = fast_session();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        let r_values = [1e4, 1e5, 1e6, 5e7];
        let campaign = session.planes(&defect, &op, &r_values, 2).unwrap();
        let service = crate::eval::EvalService::from_env(Analyzer::new(fast_design()));
        let free = plane_campaign_impl(
            &service,
            &defect,
            &op,
            &r_values,
            2,
            &CampaignFaults::new(),
            &CampaignConfig::serial(),
        )
        .unwrap();
        assert_eq!(campaign.planes, free.planes);
        assert_eq!(campaign.report, free.report);
    }

    #[test]
    fn border_reuses_campaign_cache() {
        let session = fast_session();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        let r_values = [1e4, 1e6, 1e8];
        session.planes(&defect, &op, &r_values, 2).unwrap();
        let hits_before = session.service().cache_stats().hits;
        let refined = session
            .refine_border(&defect, &op, &r_values, 2, 0.05)
            .unwrap();
        assert!(refined.is_some());
        assert!(
            session.service().cache_stats().hits > hits_before,
            "grid walk should replay campaign points"
        );
    }

    #[test]
    fn detect_and_coverage_flow() {
        let session = fast_session();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        let condition = session.detect(&defect, 1e6, &op, 4).unwrap();
        assert!(!condition.ops().is_empty());
        let report = session
            .coverage(&defect, &[1e3, 5e7], &op, &MarchTest::mats_plus(), 3, 8, 3)
            .unwrap();
        assert_eq!(report.detected.len() + report.missed.len(), 2);
    }

    #[test]
    fn builder_unusable_store_is_error() {
        // Unlike the DSO_STORE env path (which degrades with a warning),
        // an explicitly requested store that cannot be opened must fail
        // the build.
        let path = std::env::temp_dir()
            .join(format!("dso-session-missing-{}", std::process::id()))
            .join("nested")
            .join("store.bin");
        let err = Session::builder()
            .design(fast_design())
            .store(&path)
            .build();
        assert!(
            err.is_err(),
            "store in a missing directory must be rejected"
        );
    }
}
