//! [`EvalService`]-backed shmoo adapters.
//!
//! The `dso-shmoo` crate is oracle-generic; these adapters supply oracles
//! that issue [`crate::eval::SimRequest`]s through an [`EvalService`], so
//! shmoo grids share the memo cache with every other analysis layer. In
//! particular [`margin_shmoo`] evaluates exactly the `w0`-settle and `Vsa`
//! requests a plane campaign over the same `(r_values, n_ops)` sweep
//! issues: running it after a plane campaign ([`crate::Session::planes`])
//! on the same service turns the overlapping row into pure cache hits.

use crate::eval::EvalService;
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::OperatingPoint;
use dso_shmoo::{PlotSet, ShmooPlot};

use super::design_space::{services_for, DesignSpace};
use super::detection::DetectionCondition;
use super::Analyzer;

/// Shmoos the `(1) w0` × `Vsa` write margin over a resistance × stress
/// grid: a cell passes when the first `w0` of the settle sequence lands
/// below the sense threshold (the cell reads back the written 0).
///
/// `op_of` maps a stress value to the operating point to simulate at; the
/// x axis is the resistance sweep (labelled `R_ohm`), the y axis the
/// stress (labelled `stress_label`). Rows whose operating point a plane
/// campaign already evaluated on the same `service` replay from the cache.
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for `n_ops == 0` or empty axes.
/// * Simulation failures.
pub fn margin_shmoo<F>(
    service: &EvalService,
    defect: &Defect,
    n_ops: usize,
    r_values: &[f64],
    stress_label: &str,
    stress_values: &[f64],
    op_of: F,
) -> Result<ShmooPlot, CoreError>
where
    F: Fn(f64) -> Result<OperatingPoint, CoreError>,
{
    if r_values.is_empty() || stress_values.is_empty() {
        return Err(CoreError::BadRequest("shmoo axes must be non-empty".into()));
    }
    ShmooPlot::generate(
        "R_ohm",
        r_values,
        stress_label,
        stress_values,
        |r, stress| {
            let op = op_of(stress)?;
            let w0 = service.settle_sequence(defect, r, &op, false, n_ops)?;
            let vsa = service.vsa(defect, r, &op)?;
            Ok(w0[0] - vsa <= 0.0)
        },
    )
}

/// Shmoos a detection condition's pass/fail outcome over a two-stress
/// grid at a fixed defect resistance — the paper's Section-2 Shmoo plot,
/// with every grid point memoized by the `service`.
///
/// `op_of` maps `(x, y)` stress values to the operating point.
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for empty axes.
/// * Simulation failures.
#[allow(clippy::too_many_arguments)] // two labelled axes plus the oracle
pub fn detection_shmoo<F>(
    service: &EvalService,
    defect: &Defect,
    detection: &DetectionCondition,
    resistance: f64,
    x_label: &str,
    x_values: &[f64],
    y_label: &str,
    y_values: &[f64],
    op_of: F,
) -> Result<ShmooPlot, CoreError>
where
    F: Fn(f64, f64) -> Result<OperatingPoint, CoreError>,
{
    if x_values.is_empty() || y_values.is_empty() {
        return Err(CoreError::BadRequest("shmoo axes must be non-empty".into()));
    }
    ShmooPlot::generate(x_label, x_values, y_label, y_values, |x, y| {
        let op = op_of(x, y)?;
        service.detection_passes(defect, resistance, detection, &op)
    })
}

/// Runs [`margin_shmoo`] once per design in the space, returning one plot
/// per design labelled with its config name. Designs whose configs expand
/// to the same plan fingerprint share one evaluation service, so every
/// grid point after the first such design replays from the memo cache —
/// the same cross-design dedup the campaign planner exploits.
///
/// `template` supplies the recovery policy and solver tuning each
/// per-design analyzer inherits (its column design is ignored).
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for empty axes.
/// * Simulation failures.
#[allow(clippy::too_many_arguments)] // a design space plus two labelled axes
pub fn design_margin_shmoo<F>(
    space: &DesignSpace,
    template: &Analyzer,
    defect: &Defect,
    n_ops: usize,
    r_values: &[f64],
    stress_label: &str,
    stress_values: &[f64],
    op_of: F,
) -> Result<PlotSet, CoreError>
where
    F: Fn(f64) -> Result<OperatingPoint, CoreError>,
{
    let (services, service_index) = services_for(space, template);
    let mut set = PlotSet::new();
    for (di, plan) in space.plans().iter().enumerate() {
        let service = &services[service_index[di]].1;
        let plot = margin_shmoo(
            service,
            defect,
            n_ops,
            r_values,
            stress_label,
            stress_values,
            &op_of,
        )?;
        set.push(plan.name(), plot);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fast_design;
    use super::*;
    use dso_defects::BitLineSide;
    use dso_shmoo::Outcome;

    fn fast_service() -> EvalService {
        EvalService::new(Analyzer::new(fast_design()))
    }

    #[test]
    fn margin_shmoo_passes_healthy_fails_severe() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        let nominal = OperatingPoint::nominal();
        let plot = margin_shmoo(
            &service,
            &defect,
            2,
            &[1e3, 5e7],
            "vdd",
            &[nominal.vdd],
            |vdd| Ok(OperatingPoint { vdd, ..nominal }),
        )
        .unwrap();
        assert_eq!(plot.outcome(0, 0), Outcome::Pass, "{}", plot.render_ascii());
        assert_eq!(plot.outcome(1, 0), Outcome::Fail, "{}", plot.render_ascii());
    }

    #[test]
    fn margin_shmoo_repeat_is_all_cache_hits() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        let nominal = OperatingPoint::nominal();
        let run = || {
            margin_shmoo(
                &service,
                &defect,
                2,
                &[1e3, 1e6],
                "vdd",
                &[nominal.vdd],
                |vdd| Ok(OperatingPoint { vdd, ..nominal }),
            )
            .unwrap()
        };
        let first = run();
        let misses_after_first = service.cache_stats().misses;
        let second = run();
        assert_eq!(first, second);
        // Two requests (settle + vsa) per grid point, all replayed.
        assert_eq!(service.cache_stats().misses, misses_after_first);
        assert!(service.cache_stats().hits >= 4);
    }

    #[test]
    fn detection_shmoo_over_stress_grid() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        let detection = DetectionCondition::default_for(&defect, 2);
        let nominal = OperatingPoint::nominal();
        // A healthy resistance passes everywhere on a small vdd × tcyc grid.
        let plot = detection_shmoo(
            &service,
            &defect,
            &detection,
            1e3,
            "vdd",
            &[2.2, 2.6],
            "tcyc",
            &[55e-9, 65e-9],
            |vdd, tcyc| {
                Ok(OperatingPoint {
                    vdd,
                    tcyc,
                    ..nominal
                })
            },
        )
        .unwrap();
        assert_eq!(plot.pass_rate(), 1.0, "{}", plot.render_ascii());
    }

    #[test]
    fn design_margin_shmoo_labels_one_plot_per_design() {
        use dso_dram::design::DesignConfig;
        let base = DesignConfig {
            name: "a".to_string(),
            dt_fraction: 1.0 / 250.0,
            ..DesignConfig::paper_default()
        };
        let mut twin = base.clone();
        twin.name = "b".to_string();
        let space = DesignSpace::new(vec![base, twin]).unwrap();
        let template = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let nominal = OperatingPoint::nominal();
        let set = design_margin_shmoo(
            &space,
            &template,
            &defect,
            2,
            &[1e3, 5e7],
            "vdd",
            &[nominal.vdd],
            |vdd| Ok(OperatingPoint { vdd, ..nominal }),
        )
        .unwrap();
        assert_eq!(set.labels(), ["a", "b"]);
        // Same expanded plan => same plot (and the second is pure cache hits).
        assert_eq!(set.get("a"), set.get("b"));
        let plot = set.get("a").unwrap();
        assert_eq!(plot.outcome(0, 0), Outcome::Pass, "{}", plot.render_ascii());
        assert_eq!(plot.outcome(1, 0), Outcome::Fail, "{}", plot.render_ascii());
    }

    #[test]
    fn empty_axes_rejected() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        let nominal = OperatingPoint::nominal();
        assert!(
            margin_shmoo(&service, &defect, 2, &[], "vdd", &[2.5], |vdd| Ok(
                OperatingPoint { vdd, ..nominal }
            ))
            .is_err()
        );
    }
}
