//! Sweep bookkeeping for fault-tolerant simulation campaigns.
//!
//! A result-plane campaign runs one electrical measurement bundle per
//! swept defect resistance. Instead of aborting the whole plane on the
//! first solver failure, the campaign records a [`PointStatus`] per point
//! in a [`SweepReport`] and degrades gracefully: failed points become
//! flagged gaps, and consumers downgrade their [`Confidence`] accordingly.
//!
//! [`CampaignFaults`] is the campaign-level face of the deterministic
//! fault-injection harness in [`dso_num::chaos`]: it arms a
//! [`FaultPlan`] at selected sweep indices so every degradation path is
//! exercised by tests rather than luck.

use dso_num::chaos::FaultPlan;
use std::fmt;

/// Outcome of the simulations behind one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointStatus {
    /// Every solve converged without recovery intervention.
    Converged,
    /// At least one solve failed but the recovery ladder rescued the
    /// point; `attempts` counts the recovery actions spent.
    Recovered {
        /// Recovery actions (method fallbacks + subdivisions + gmin
        /// retries) spent across the point's simulations.
        attempts: usize,
    },
    /// The point could not be simulated even with recovery; the plane has
    /// a gap here.
    Failed {
        /// Rendered error chain of the failure, pinpointing the exact
        /// simulation that died.
        reason: String,
    },
}

impl PointStatus {
    /// `true` for [`PointStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, PointStatus::Failed { .. })
    }

    /// `true` for [`PointStatus::Recovered`].
    pub fn is_recovered(&self) -> bool {
        matches!(self, PointStatus::Recovered { .. })
    }
}

impl fmt::Display for PointStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointStatus::Converged => f.write_str("converged"),
            PointStatus::Recovered { attempts } => {
                write!(f, "recovered ({attempts} action(s))")
            }
            PointStatus::Failed { reason } => write!(f, "failed: {reason}"),
        }
    }
}

/// One attempted sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The defect resistance of the point, in ohms.
    pub resistance: f64,
    /// What happened when it was simulated.
    pub status: PointStatus,
}

/// Per-point accounting of a sweep campaign.
///
/// Every attempted point appears exactly once, so
/// `converged + recovered + failed == total` always holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    points: Vec<SweepPoint>,
}

impl SweepReport {
    /// An empty report.
    pub fn new() -> Self {
        SweepReport::default()
    }

    /// Records the outcome of one attempted point, in sweep order.
    pub fn record(&mut self, resistance: f64, status: PointStatus) {
        self.points.push(SweepPoint { resistance, status });
    }

    /// All attempted points, in sweep order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Number of attempted points.
    pub fn total(&self) -> usize {
        self.points.len()
    }

    /// Number of points that converged cleanly.
    pub fn converged(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.status == PointStatus::Converged)
            .count()
    }

    /// Number of points rescued by the recovery ladder.
    pub fn recovered(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.status.is_recovered())
            .count()
    }

    /// Number of points that failed outright (the plane's gaps).
    pub fn failed(&self) -> usize {
        self.points.iter().filter(|p| p.status.is_failed()).count()
    }

    /// `true` when the report covers exactly `expected` attempted points
    /// and the per-status tallies account for every one of them.
    pub fn accounts_for(&self, expected: usize) -> bool {
        self.total() == expected
            && self.converged() + self.recovered() + self.failed() == self.total()
    }

    /// Resistances of the failed points.
    pub fn failed_resistances(&self) -> Vec<f64> {
        self.points
            .iter()
            .filter(|p| p.status.is_failed())
            .map(|p| p.resistance)
            .collect()
    }

    /// The status recorded for resistance `r`, if it was attempted.
    pub fn status_at(&self, r: f64) -> Option<&PointStatus> {
        self.points
            .iter()
            .find(|p| p.resistance == r)
            .map(|p| &p.status)
    }

    /// The confidence a consumer should attach to results derived from
    /// this sweep: full when nothing failed, degraded with the gap count
    /// otherwise.
    pub fn confidence(&self) -> Confidence {
        match self.failed() {
            0 => Confidence::Full,
            gaps => Confidence::Degraded { gaps },
        }
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} point(s): {} converged, {} recovered, {} failed",
            self.total(),
            self.converged(),
            self.recovered(),
            self.failed()
        )
    }
}

/// How much to trust a result extracted from a (possibly partial) sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// Every supporting point converged or recovered.
    Full,
    /// Some supporting points were lost (interpolated gaps, skipped
    /// border candidates); the result is still usable but degraded.
    Degraded {
        /// Number of lost supporting points.
        gaps: usize,
    },
}

impl Confidence {
    /// `true` for [`Confidence::Full`].
    pub fn is_full(&self) -> bool {
        matches!(self, Confidence::Full)
    }

    /// Combines two confidences: full only if both are, gap counts add.
    pub fn combine(self, other: Confidence) -> Confidence {
        match (self, other) {
            (Confidence::Full, c) | (c, Confidence::Full) => c,
            (Confidence::Degraded { gaps: a }, Confidence::Degraded { gaps: b }) => {
                Confidence::Degraded { gaps: a + b }
            }
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::Full => f.write_str("full"),
            Confidence::Degraded { gaps } => write!(f, "degraded ({gaps} gap(s))"),
        }
    }
}

/// Deterministic fault injection for a sweep campaign: a [`FaultPlan`]
/// armed at selected sweep indices. Every simulation run at an armed
/// index gets its own clone of the plan (solve ordinals restart per run).
#[derive(Debug, Clone, Default)]
pub struct CampaignFaults {
    plans: Vec<(usize, FaultPlan)>,
}

impl CampaignFaults {
    /// No faults: the campaign runs clean.
    pub fn new() -> Self {
        CampaignFaults::default()
    }

    /// Arms `plan` at sweep index `index` (later entries override earlier
    /// ones for the same index).
    pub fn with_fault(mut self, index: usize, plan: FaultPlan) -> Self {
        self.plans.push((index, plan));
        self
    }

    /// The plan armed at `index`, if any.
    pub fn plan_for(&self, index: usize) -> Option<&FaultPlan> {
        self.plans
            .iter()
            .rev()
            .find(|(i, _)| *i == index)
            .map(|(_, p)| p)
    }

    /// `true` when no fault is armed anywhere.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dso_num::chaos::FaultKind;

    #[test]
    fn report_accounts_for_every_point() {
        let mut report = SweepReport::new();
        report.record(1e4, PointStatus::Converged);
        report.record(1e5, PointStatus::Recovered { attempts: 2 });
        report.record(
            1e6,
            PointStatus::Failed {
                reason: "boom".into(),
            },
        );
        report.record(1e7, PointStatus::Converged);
        assert_eq!(report.total(), 4);
        assert_eq!(report.converged(), 2);
        assert_eq!(report.recovered(), 1);
        assert_eq!(report.failed(), 1);
        assert!(report.accounts_for(4));
        assert!(!report.accounts_for(5));
        assert_eq!(report.failed_resistances(), vec![1e6]);
        assert_eq!(report.status_at(1e4), Some(&PointStatus::Converged));
        assert!(report.status_at(2e4).is_none());
        assert_eq!(report.confidence(), Confidence::Degraded { gaps: 1 });
        let text = report.to_string();
        assert!(text.contains("4 point(s)"), "{text}");
        assert!(text.contains("1 failed"), "{text}");
    }

    #[test]
    fn clean_report_has_full_confidence() {
        let mut report = SweepReport::new();
        report.record(1e4, PointStatus::Converged);
        report.record(1e5, PointStatus::Recovered { attempts: 1 });
        assert!(report.confidence().is_full());
    }

    #[test]
    fn confidence_combines() {
        use Confidence::*;
        assert_eq!(Full.combine(Full), Full);
        assert_eq!(Full.combine(Degraded { gaps: 2 }), Degraded { gaps: 2 });
        assert_eq!(
            Degraded { gaps: 1 }.combine(Degraded { gaps: 2 }),
            Degraded { gaps: 3 }
        );
        assert_eq!(Degraded { gaps: 1 }.to_string(), "degraded (1 gap(s))");
        assert_eq!(Full.to_string(), "full");
    }

    #[test]
    fn campaign_faults_lookup() {
        let faults = CampaignFaults::new()
            .with_fault(3, FaultPlan::always(FaultKind::NanResidual))
            .with_fault(
                5,
                FaultPlan::new().inject_at(2, FaultKind::SingularJacobian),
            );
        assert!(!faults.is_empty());
        assert!(faults.plan_for(3).is_some());
        assert!(faults.plan_for(5).is_some());
        assert!(faults.plan_for(0).is_none());
        assert!(CampaignFaults::new().is_empty());
    }

    #[test]
    fn status_predicates_and_display() {
        assert!(!PointStatus::Converged.is_failed());
        assert!(PointStatus::Recovered { attempts: 3 }.is_recovered());
        assert!(PointStatus::Failed { reason: "x".into() }.is_failed());
        assert_eq!(
            PointStatus::Recovered { attempts: 3 }.to_string(),
            "recovered (3 action(s))"
        );
        assert!(PointStatus::Failed {
            reason: "nan".into()
        }
        .to_string()
        .contains("nan"));
    }
}
