//! Border-resistance extraction.
//!
//! The border resistance (BR) is "the resistive value of a defect at which
//! the memory starts to show faulty behavior" [Al-Ars02]. Opens fail for
//! resistances *above* the border; shorts and bridges fail *below* it. The
//! primary extractor bisects the pass/fail outcome of a detection
//! condition on a logarithmic resistance axis; the planes module offers an
//! independent curve-intersection estimate used for cross-checking.

use super::detection::DetectionCondition;
use crate::eval::EvalService;
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::OperatingPoint;
use dso_num::roots::{bisect_transition, Scale};

/// A located border resistance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BorderResistance {
    /// The border value in ohms (geometric midpoint of the final bracket).
    pub resistance: f64,
    /// `true` if the memory fails for resistances above the border
    /// (opens); `false` if it fails below (shorts, bridges).
    pub fails_above: bool,
    /// Number of detection-condition evaluations spent.
    pub evaluations: usize,
}

impl BorderResistance {
    /// Width of the failing resistance range within `sweep`, in decades —
    /// the quantity a stress combination tries to maximize.
    pub fn failing_decades(&self, sweep: (f64, f64)) -> f64 {
        if self.fails_above {
            (sweep.1 / self.resistance).max(1.0).log10()
        } else {
            (self.resistance / sweep.0).max(1.0).log10()
        }
    }

    /// `true` if `other` is *more stressful* than `self`: its failing
    /// range is strictly wider.
    pub fn less_stressful_than(&self, other: &BorderResistance) -> bool {
        if self.fails_above {
            other.resistance < self.resistance
        } else {
            other.resistance > self.resistance
        }
    }
}

impl std::fmt::Display for BorderResistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = if self.fails_above { '>' } else { '<' };
        write!(
            f,
            "fails for R {op} {}",
            dso_spice::units::format_eng(self.resistance, "Ω")
        )
    }
}

/// Finds the border resistance of `defect` under `detection` at
/// `op_point`, bisecting within the defect's sweep range to relative (log)
/// tolerance `rel_tol`.
///
/// Every pass/fail probe runs through the [`EvalService`] cache, so
/// repeating a search (or re-probing resistances another workload already
/// simulated) costs no transient solves.
///
/// # Errors
///
/// * [`CoreError::NoFaultObserved`] if the memory passes everywhere in the
///   range (no border).
/// * [`CoreError::AlwaysFaulty`] if it fails everywhere.
/// * Simulation failures.
pub fn find_border(
    service: &EvalService,
    defect: &Defect,
    detection: &DetectionCondition,
    op_point: &OperatingPoint,
    rel_tol: f64,
) -> Result<BorderResistance, CoreError> {
    let (lo, hi) = defect.sweep_range();
    let fails_above = defect.fails_above();
    let fails_at = |r: f64| -> Result<bool, CoreError> {
        service
            .detection_passes(defect, r, detection, op_point)
            .map(|pass| !pass)
    };

    // Probe the ends first for precise error reporting. Opens fail at the
    // high end; shorts/bridges fail at the low end.
    let fail_lo = fails_at(lo)?;
    let fail_hi = fails_at(hi)?;
    let (failing_end_fails, passing_end_fails) = if fails_above {
        (fail_hi, fail_lo)
    } else {
        (fail_lo, fail_hi)
    };
    match (failing_end_fails, passing_end_fails) {
        (true, false) => {} // proper bracket, bisect below
        (false, false) => {
            return Err(CoreError::NoFaultObserved {
                defect: defect.to_string(),
                range: (lo, hi),
            })
        }
        (true, true) => {
            return Err(CoreError::AlwaysFaulty {
                defect: defect.to_string(),
                range: (lo, hi),
            })
        }
        (false, true) => {
            // Fails only on the end that should pass: the monotonicity
            // assumption (or the failing-direction classification) is
            // broken for this detection condition.
            return Err(CoreError::BadRequest(format!(
                "pass/fail not monotone for {defect}: fails(lo)={fail_lo}, fails(hi)={fail_hi}"
            )));
        }
    }

    // Orient the predicate so it is false at lo and true at hi.
    let mut extra_evals = 2;
    let transition = bisect_transition(lo, hi, rel_tol, Scale::Logarithmic, |r| {
        extra_evals += 1;
        let failing = fails_at(r).map_err(|e| match e {
            CoreError::Numerical(n) => n,
            other => dso_num::NumError::InvalidArgument(other.to_string()),
        })?;
        Ok(if fails_above { failing } else { !failing })
    })
    .map_err(CoreError::from)?;

    dso_obs::counter!("border.searches").incr();
    dso_obs::counter!("border.evaluations").add(extra_evals as u64);
    // Bisection depth = evaluations beyond the two orientation probes.
    dso_obs::histogram!(
        "border.bisection_evals",
        &[4.0, 8.0, 12.0, 16.0, 24.0, 32.0]
    )
    .observe(extra_evals as f64);
    Ok(BorderResistance {
        resistance: (transition.last_false * transition.first_true).sqrt(),
        fails_above,
        evaluations: extra_evals,
    })
}

/// Refines the plane-intersection border estimate by log-bisecting the
/// `(1) w0` × `Vsa` margin — the same quantity as
/// [`super::planes::ResultPlanes::border_from_intersection`] — starting
/// from the sign change on the `r_values` grid.
///
/// The grid walk issues exactly the `w0` settle and `Vsa` requests a plane
/// campaign over the same `(r_values, n_ops)` sweep already evaluated, so
/// running this after a plane campaign ([`crate::Session::planes`]) on the
/// same [`EvalService`] turns the entire walk into cache hits; only the
/// bisection probes between grid points simulate anything new.
///
/// Returns `None` when the margin does not change sign inside the grid
/// (no border in the swept range).
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for a grid of fewer than two points or
///   `n_ops == 0`.
/// * Simulation failures.
pub fn refine_border_from_planes(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    rel_tol: f64,
) -> Result<Option<BorderResistance>, CoreError> {
    if r_values.len() < 2 {
        return Err(CoreError::BadRequest(format!(
            "border refinement needs at least 2 grid points, got {}",
            r_values.len()
        )));
    }
    let mut evaluations = 0usize;
    let mut faulty_at = |r: f64| -> Result<bool, CoreError> {
        evaluations += 1;
        let w0 = service.settle_sequence(defect, r, op_point, false, n_ops)?;
        let vsa = service.vsa(defect, r, op_point)?;
        Ok(w0[0] - vsa > 0.0)
    };

    // Walk the campaign grid for the first sign change of the margin.
    let mut bracket = None;
    let mut prev = (r_values[0], faulty_at(r_values[0])?);
    for &r in &r_values[1..] {
        let here = (r, faulty_at(r)?);
        if here.1 != prev.1 {
            bracket = Some((prev, here));
            break;
        }
        prev = here;
    }
    let Some(((mut lo, lo_faulty), (mut hi, _))) = bracket else {
        return Ok(None);
    };

    // Log-bisect the bracketing grid cell down to `rel_tol`.
    while hi / lo > 1.0 + rel_tol {
        let mid = (lo * hi).sqrt();
        if faulty_at(mid)? == lo_faulty {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    dso_obs::counter!("border.searches").incr();
    dso_obs::counter!("border.evaluations").add(evaluations as u64);
    Ok(Some(BorderResistance {
        resistance: (lo * hi).sqrt(),
        fails_above: defect.fails_above(),
        evaluations,
    }))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fast_design;
    use super::super::Analyzer;
    use super::*;
    use dso_defects::BitLineSide;
    use dso_dram::column::DefectSite;

    fn fast_service() -> EvalService {
        EvalService::new(Analyzer::new(fast_design()))
    }

    #[test]
    fn border_of_cell_open() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        let detection = DetectionCondition::default_for(&defect, 2);
        let border = find_border(
            &service,
            &defect,
            &detection,
            &OperatingPoint::nominal(),
            0.05,
        )
        .unwrap();
        assert!(border.fails_above);
        assert!(
            (1e4..1e7).contains(&border.resistance),
            "cell-open border {:.3e} out of plausible range",
            border.resistance
        );
        assert!(border.evaluations > 4);
    }

    #[test]
    fn border_of_short_to_ground() {
        let service = fast_service();
        let defect = Defect::new(DefectSite::Sg, BitLineSide::True);
        let detection = DetectionCondition::default_for(&defect, 1);
        let border = find_border(
            &service,
            &defect,
            &detection,
            &OperatingPoint::nominal(),
            0.05,
        )
        .unwrap();
        assert!(!border.fails_above);
        assert!(
            border.resistance > 1e3,
            "Sg border {:.3e} suspiciously small",
            border.resistance
        );
    }

    #[test]
    fn refined_border_agrees_with_bisection() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        let grid: Vec<f64> = (0..7).map(|i| 1e4 * 10f64.powf(i as f64 * 0.5)).collect();
        let refined = refine_border_from_planes(
            &service,
            &defect,
            &OperatingPoint::nominal(),
            &grid,
            2,
            0.05,
        )
        .unwrap()
        .expect("cell open has a border inside the grid");
        assert!(refined.fails_above);
        assert!(
            (1e4..1e7).contains(&refined.resistance),
            "refined border {:.3e} out of plausible range",
            refined.resistance
        );
        // Repeating the refinement on the same service replays every probe
        // from the cache bit-identically.
        let hits_before = service.cache_stats().hits;
        let again = refine_border_from_planes(
            &service,
            &defect,
            &OperatingPoint::nominal(),
            &grid,
            2,
            0.05,
        )
        .unwrap()
        .unwrap();
        assert_eq!(again.resistance.to_bits(), refined.resistance.to_bits());
        assert!(service.cache_stats().hits > hits_before);
    }

    #[test]
    fn refined_border_is_none_without_sign_change() {
        let service = fast_service();
        let defect = Defect::cell_open(BitLineSide::True);
        // A grid entirely on the healthy side of the border.
        let refined = refine_border_from_planes(
            &service,
            &defect,
            &OperatingPoint::nominal(),
            &[1e3, 2e3, 4e3],
            2,
            0.05,
        )
        .unwrap();
        assert!(refined.is_none());
    }

    #[test]
    fn stressfulness_comparison() {
        let a = BorderResistance {
            resistance: 2e5,
            fails_above: true,
            evaluations: 0,
        };
        let b = BorderResistance {
            resistance: 5e4,
            fails_above: true,
            evaluations: 0,
        };
        assert!(a.less_stressful_than(&b));
        assert!(!b.less_stressful_than(&a));
        assert!(a.failing_decades((1e3, 1e8)) < b.failing_decades((1e3, 1e8)));

        let c = BorderResistance {
            resistance: 1e6,
            fails_above: false,
            evaluations: 0,
        };
        let d = BorderResistance {
            resistance: 1e9,
            fails_above: false,
            evaluations: 0,
        };
        assert!(c.less_stressful_than(&d));
        assert!(c.failing_decades((1e2, 1e11)) < d.failing_decades((1e2, 1e11)));
    }

    #[test]
    fn display_direction() {
        let b = BorderResistance {
            resistance: 2e5,
            fails_above: true,
            evaluations: 0,
        };
        assert_eq!(b.to_string(), "fails for R > 200 kΩ");
        let s = BorderResistance {
            resistance: 1e6,
            fails_above: false,
            evaluations: 0,
        };
        assert_eq!(s.to_string(), "fails for R < 1 MΩ");
    }
}
