//! Border-resistance extraction.
//!
//! The border resistance (BR) is "the resistive value of a defect at which
//! the memory starts to show faulty behavior" [Al-Ars02]. Opens fail for
//! resistances *above* the border; shorts and bridges fail *below* it. The
//! primary extractor bisects the pass/fail outcome of a detection
//! condition on a logarithmic resistance axis; the planes module offers an
//! independent curve-intersection estimate used for cross-checking.

use super::detection::DetectionCondition;
use super::Analyzer;
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::OperatingPoint;
use dso_num::roots::{bisect_transition, Scale};

/// A located border resistance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BorderResistance {
    /// The border value in ohms (geometric midpoint of the final bracket).
    pub resistance: f64,
    /// `true` if the memory fails for resistances above the border
    /// (opens); `false` if it fails below (shorts, bridges).
    pub fails_above: bool,
    /// Number of detection-condition evaluations spent.
    pub evaluations: usize,
}

impl BorderResistance {
    /// Width of the failing resistance range within `sweep`, in decades —
    /// the quantity a stress combination tries to maximize.
    pub fn failing_decades(&self, sweep: (f64, f64)) -> f64 {
        if self.fails_above {
            (sweep.1 / self.resistance).max(1.0).log10()
        } else {
            (self.resistance / sweep.0).max(1.0).log10()
        }
    }

    /// `true` if `other` is *more stressful* than `self`: its failing
    /// range is strictly wider.
    pub fn less_stressful_than(&self, other: &BorderResistance) -> bool {
        if self.fails_above {
            other.resistance < self.resistance
        } else {
            other.resistance > self.resistance
        }
    }
}

impl std::fmt::Display for BorderResistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = if self.fails_above { '>' } else { '<' };
        write!(
            f,
            "fails for R {op} {}",
            dso_spice::units::format_eng(self.resistance, "Ω")
        )
    }
}

/// Finds the border resistance of `defect` under `detection` at
/// `op_point`, bisecting within the defect's sweep range to relative (log)
/// tolerance `rel_tol`.
///
/// # Errors
///
/// * [`CoreError::NoFaultObserved`] if the memory passes everywhere in the
///   range (no border).
/// * [`CoreError::AlwaysFaulty`] if it fails everywhere.
/// * Simulation failures.
pub fn find_border(
    analyzer: &Analyzer,
    defect: &Defect,
    detection: &DetectionCondition,
    op_point: &OperatingPoint,
    rel_tol: f64,
) -> Result<BorderResistance, CoreError> {
    let (lo, hi) = defect.sweep_range();
    let fails_above = defect.fails_above();
    let operation = format!("detection {}", detection.display_for(defect.side()));
    let fails_at = |r: f64| -> Result<bool, CoreError> {
        let engine = analyzer.engine_for(defect, r, op_point)?;
        detection
            .evaluate(&engine)
            .map(|pass| !pass)
            .map_err(|e| CoreError::at_point(&operation, r, None, e))
    };

    // Probe the ends first for precise error reporting. Opens fail at the
    // high end; shorts/bridges fail at the low end.
    let fail_lo = fails_at(lo)?;
    let fail_hi = fails_at(hi)?;
    let (failing_end_fails, passing_end_fails) = if fails_above {
        (fail_hi, fail_lo)
    } else {
        (fail_lo, fail_hi)
    };
    match (failing_end_fails, passing_end_fails) {
        (true, false) => {} // proper bracket, bisect below
        (false, false) => {
            return Err(CoreError::NoFaultObserved {
                defect: defect.to_string(),
                range: (lo, hi),
            })
        }
        (true, true) => {
            return Err(CoreError::AlwaysFaulty {
                defect: defect.to_string(),
                range: (lo, hi),
            })
        }
        (false, true) => {
            // Fails only on the end that should pass: the monotonicity
            // assumption (or the failing-direction classification) is
            // broken for this detection condition.
            return Err(CoreError::BadRequest(format!(
                "pass/fail not monotone for {defect}: fails(lo)={fail_lo}, fails(hi)={fail_hi}"
            )));
        }
    }

    // Orient the predicate so it is false at lo and true at hi.
    let mut extra_evals = 2;
    let transition = bisect_transition(lo, hi, rel_tol, Scale::Logarithmic, |r| {
        extra_evals += 1;
        let failing = fails_at(r).map_err(|e| match e {
            CoreError::Numerical(n) => n,
            other => dso_num::NumError::InvalidArgument(other.to_string()),
        })?;
        Ok(if fails_above { failing } else { !failing })
    })
    .map_err(CoreError::from)?;

    dso_obs::counter!("border.searches").incr();
    dso_obs::counter!("border.evaluations").add(extra_evals as u64);
    // Bisection depth = evaluations beyond the two orientation probes.
    dso_obs::histogram!(
        "border.bisection_evals",
        &[4.0, 8.0, 12.0, 16.0, 24.0, 32.0]
    )
    .observe(extra_evals as f64);
    Ok(BorderResistance {
        resistance: (transition.last_false * transition.first_true).sqrt(),
        fails_above,
        evaluations: extra_evals,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fast_design;
    use super::*;
    use dso_defects::BitLineSide;
    use dso_dram::column::DefectSite;

    #[test]
    fn border_of_cell_open() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let detection = DetectionCondition::default_for(&defect, 2);
        let border = find_border(
            &analyzer,
            &defect,
            &detection,
            &OperatingPoint::nominal(),
            0.05,
        )
        .unwrap();
        assert!(border.fails_above);
        assert!(
            (1e4..1e7).contains(&border.resistance),
            "cell-open border {:.3e} out of plausible range",
            border.resistance
        );
        assert!(border.evaluations > 4);
    }

    #[test]
    fn border_of_short_to_ground() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::new(DefectSite::Sg, BitLineSide::True);
        let detection = DetectionCondition::default_for(&defect, 1);
        let border = find_border(
            &analyzer,
            &defect,
            &detection,
            &OperatingPoint::nominal(),
            0.05,
        )
        .unwrap();
        assert!(!border.fails_above);
        assert!(
            border.resistance > 1e3,
            "Sg border {:.3e} suspiciously small",
            border.resistance
        );
    }

    #[test]
    fn stressfulness_comparison() {
        let a = BorderResistance {
            resistance: 2e5,
            fails_above: true,
            evaluations: 0,
        };
        let b = BorderResistance {
            resistance: 5e4,
            fails_above: true,
            evaluations: 0,
        };
        assert!(a.less_stressful_than(&b));
        assert!(!b.less_stressful_than(&a));
        assert!(a.failing_decades((1e3, 1e8)) < b.failing_decades((1e3, 1e8)));

        let c = BorderResistance {
            resistance: 1e6,
            fails_above: false,
            evaluations: 0,
        };
        let d = BorderResistance {
            resistance: 1e9,
            fails_above: false,
            evaluations: 0,
        };
        assert!(c.less_stressful_than(&d));
        assert!(c.failing_decades((1e2, 1e11)) < d.failing_decades((1e2, 1e11)));
    }

    #[test]
    fn display_direction() {
        let b = BorderResistance {
            resistance: 2e5,
            fails_above: true,
            evaluations: 0,
        };
        assert_eq!(b.to_string(), "fails for R > 200 kΩ");
        let s = BorderResistance {
            resistance: 1e6,
            fails_above: false,
            evaluations: 0,
        };
        assert_eq!(s.to_string(), "fails for R < 1 MΩ");
    }
}
