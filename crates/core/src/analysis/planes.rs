//! Result planes (Figures 2 and 6).
//!
//! A result plane shows, for every defect resistance in a sweep, how the
//! cell voltage evolves under successive applications of one operation:
//!
//! * the `w0` plane starts the cell at `vdd` and applies `w0`s,
//! * the `w1` plane starts at GND and applies `w1`s,
//! * the `r` plane first establishes the sense threshold `Vsa(R)` and then
//!   applies reads starting slightly below and slightly above it.
//!
//! The planes are the raw material for border-resistance extraction: the
//! border of the paper's cell open is the `R` where the second-`w0`
//! settlement curve crosses `Vsa(R)`.

use super::sweep::{CampaignFaults, Confidence, PointStatus, SweepReport};
use super::Analyzer;
use crate::eval::{EvalService, SimRequest, TaskOutcome};
use crate::exec::{self, CampaignConfig, CampaignPerfStats};
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::OperatingPoint;
use dso_dram::ops::OpTrace;
use dso_num::chaos::FaultPlan;
use dso_num::interp::Curve;
use dso_spice::recovery::RecoveryStats;

/// Offset (volts) around `Vsa` at which the read-plane trajectories start,
/// following the paper's 0.2 V.
pub const READ_START_OFFSET: f64 = 0.2;

/// Settlement curves of one write operation across the resistance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WritePlane {
    /// `true` for the `w1` plane (physical high), `false` for `w0`.
    pub write_high: bool,
    /// Swept defect resistances (strictly increasing).
    pub r_values: Vec<f64>,
    /// `curves[k]` is the cell voltage after `k+1` consecutive writes, as a
    /// function of `R`.
    pub curves: Vec<Curve>,
}

impl WritePlane {
    /// The settlement curve after `n` operations (1-based, like the
    /// paper's `(2) w0` label).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n` is 0 or exceeds the number
    /// of simulated operations.
    pub fn after_ops(&self, n: usize) -> Result<&Curve, CoreError> {
        if n == 0 || n > self.curves.len() {
            return Err(CoreError::BadRequest(format!(
                "write plane holds {} curves, requested #{n}",
                self.curves.len()
            )));
        }
        Ok(&self.curves[n - 1])
    }
}

/// The read plane: threshold curve plus read trajectories started around
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPlane {
    /// Swept defect resistances.
    pub r_values: Vec<f64>,
    /// Sense-amplifier threshold `Vsa(R)`.
    pub vsa: Curve,
    /// Cell voltage after each successive read, started `0.2 V` *below*
    /// `Vsa` (indexed like [`WritePlane::curves`]).
    pub from_below: Vec<Curve>,
    /// Same, started `0.2 V` *above* `Vsa`.
    pub from_above: Vec<Curve>,
}

/// The three result planes of Figure 2/6.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultPlanes {
    /// `w0` plane.
    pub w0: WritePlane,
    /// `w1` plane.
    pub w1: WritePlane,
    /// `r` plane.
    pub r: ReadPlane,
    /// Mid-point voltage of the defect-free cell.
    pub vmp: f64,
    /// The operating point (stress combination) the planes were generated
    /// at.
    pub op_point: OperatingPoint,
}

impl ResultPlanes {
    /// The border resistance read off the planes: the first intersection
    /// of the `w0` settlement curve with `Vsa(R)` — the dot of the paper's
    /// Figure 2(a).
    ///
    /// The first-operation curve is used because the detection condition
    /// applies exactly one `w0` after the settling `w1`s, and the
    /// settlement trajectories already start from the settled opposite
    /// level (the `w0` settle sequence runs two unreported `w1` setup
    /// writes first); this makes the intersection estimate directly
    /// comparable with the pass/fail bisection of
    /// [`super::border::find_border`].
    ///
    /// Returns `None` when the curves do not cross inside the sweep.
    ///
    /// # Errors
    ///
    /// Propagates curve-intersection failures (disjoint domains cannot
    /// happen for planes built by [`result_planes`]).
    pub fn border_from_intersection(&self) -> Result<Option<f64>, CoreError> {
        let curve = self.w0.after_ops(1)?;
        Ok(curve.first_intersection(&self.r.vsa)?)
    }

    /// Renders every curve of the three planes as CSV for external
    /// plotting: one row per swept resistance, one column per series.
    pub fn to_csv(&self) -> String {
        let mut header = vec!["R_ohm".to_string()];
        for (i, _) in self.w0.curves.iter().enumerate() {
            header.push(format!("w0_{}", i + 1));
        }
        for (i, _) in self.w1.curves.iter().enumerate() {
            header.push(format!("w1_{}", i + 1));
        }
        header.push("vsa".to_string());
        for (i, _) in self.r.from_below.iter().enumerate() {
            header.push(format!("r_below_{}", i + 1));
        }
        for (i, _) in self.r.from_above.iter().enumerate() {
            header.push(format!("r_above_{}", i + 1));
        }
        let mut out = header.join(",");
        out.push('\n');
        for (row, &r) in self.w0.r_values.iter().enumerate() {
            let mut cells = vec![format!("{r:e}")];
            let series = self
                .w0
                .curves
                .iter()
                .chain(self.w1.curves.iter())
                .chain(std::iter::once(&self.r.vsa))
                .chain(self.r.from_below.iter())
                .chain(self.r.from_above.iter());
            for curve in series {
                cells.push(format!("{:.6}", curve.ys()[row]));
            }
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// The measurements behind one sweep point of the three planes.
#[derive(Debug, Clone)]
struct PointData {
    w0: Vec<f64>,
    w1: Vec<f64>,
    vsa: f64,
    below: Vec<f64>,
    above: Vec<f64>,
}

impl PointData {
    /// Signed margin of the first-`w0` settlement level over `Vsa(R)` —
    /// the quantity whose zero crossing is the border resistance of
    /// [`ResultPlanes::border_from_intersection`].
    fn border_margin(&self) -> f64 {
        self.w0[0] - self.vsa
    }

    /// Linear interpolation between two bracketing points, `t` in `[0, 1]`.
    fn lerp(a: &PointData, b: &PointData, t: f64) -> PointData {
        let mix = |x: f64, y: f64| x + (y - x) * t;
        let mix_vec =
            |xs: &[f64], ys: &[f64]| xs.iter().zip(ys).map(|(&x, &y)| mix(x, y)).collect();
        PointData {
            w0: mix_vec(&a.w0, &b.w0),
            w1: mix_vec(&a.w1, &b.w1),
            vsa: mix(a.vsa, b.vsa),
            below: mix_vec(&a.below, &b.below),
            above: mix_vec(&a.above, &b.above),
        }
    }
}

/// Converged operation traces of one sweep point, carried forward as
/// warm-start seeds for the next point of the same work chunk. Seeds never
/// cross chunk boundaries, so the seed chain is part of the deterministic
/// chunk computation (see [`crate::exec`]).
#[derive(Debug, Default)]
struct WarmSeeds {
    w0: Option<OpTrace>,
    w1: Option<OpTrace>,
    below: Option<OpTrace>,
    above: Option<OpTrace>,
}

/// Number of transients per point that accept a warm seed (the `Vsa`
/// bisection is excluded: its probe voltages vary per point).
const SEEDABLE_TRANSIENTS: usize = 4;

impl WarmSeeds {
    fn available(&self) -> usize {
        [
            self.w0.is_some(),
            self.w1.is_some(),
            self.below.is_some(),
            self.above.is_some(),
        ]
        .iter()
        .filter(|&&s| s)
        .count()
    }
}

/// Everything a worker records about one sweep point.
struct PointOutcome {
    data: Result<PointData, CoreError>,
    stats: RecoveryStats,
    warm_hits: usize,
    warm_misses: usize,
    cache_hits: usize,
    disk_hits: usize,
    cache_misses: usize,
}

/// Per-point tally of service-cache traffic.
#[derive(Default)]
struct CacheTally {
    hits: usize,
    disk: usize,
    misses: usize,
}

impl CacheTally {
    /// Folds one evaluation's outcome into the tally and the point's
    /// recovery stats, surfacing the value and warm-start trace.
    fn take(
        &mut self,
        outcome: TaskOutcome,
        stats: &mut RecoveryStats,
    ) -> Result<(crate::eval::SimValue, Option<OpTrace>), CoreError> {
        stats.merge(&outcome.stats);
        if outcome.cached {
            self.hits += 1;
            if outcome.from_disk {
                self.disk += 1;
            }
        } else {
            self.misses += 1;
        }
        outcome.value.map(|v| (v, outcome.trace))
    }
}

/// Runs the full measurement bundle of one sweep point through the
/// evaluation service, accumulating recovery counters into `stats` and
/// cache traffic into `cache`. Each seedable transient is warm-started
/// from the corresponding trace in `seeds` when present; the point's own
/// converged traces are returned for the next point in the chunk. Cache
/// hits return no trace, so the seed chain restarts at the next computed
/// point.
#[allow(clippy::too_many_arguments)]
fn measure_point(
    service: &EvalService,
    defect: &Defect,
    r: f64,
    op_point: &OperatingPoint,
    n_ops: usize,
    faults: Option<&FaultPlan>,
    seeds: &WarmSeeds,
    warm_probes: bool,
    stats: &mut RecoveryStats,
    cache: &mut CacheTally,
) -> Result<(PointData, WarmSeeds), CoreError> {
    let (w0_value, w0_trace) = cache.take(
        service.eval_seeded(
            &SimRequest::settle(defect, r, op_point, false, n_ops),
            faults,
            seeds.w0.as_ref(),
            false,
        ),
        stats,
    )?;
    let w0 = w0_value.into_series()?;
    let (w1_value, w1_trace) = cache.take(
        service.eval_seeded(
            &SimRequest::settle(defect, r, op_point, true, n_ops),
            faults,
            seeds.w1.as_ref(),
            false,
        ),
        stats,
    )?;
    let w1 = w1_value.into_series()?;
    let (vsa_value, _) = cache.take(
        service.eval_seeded(
            &SimRequest::vsa(defect, r, op_point),
            faults,
            None,
            warm_probes,
        ),
        stats,
    )?;
    let vsa = vsa_value.scalar()?;
    let below_start = (vsa - READ_START_OFFSET).max(0.0);
    let above_start = (vsa + READ_START_OFFSET).min(op_point.vdd);
    let (below_value, below_trace) = cache.take(
        service.eval_seeded(
            &SimRequest::reads(defect, r, op_point, below_start, n_ops),
            faults,
            seeds.below.as_ref(),
            false,
        ),
        stats,
    )?;
    let (below, _) = below_value.into_outcomes()?;
    let (above_value, above_trace) = cache.take(
        service.eval_seeded(
            &SimRequest::reads(defect, r, op_point, above_start, n_ops),
            faults,
            seeds.above.as_ref(),
            false,
        ),
        stats,
    )?;
    let (above, _) = above_value.into_outcomes()?;
    Ok((
        PointData {
            w0,
            w1,
            vsa,
            below,
            above,
        },
        WarmSeeds {
            w0: w0_trace,
            w1: w1_trace,
            below: below_trace,
            above: above_trace,
        },
    ))
}

/// Fans the sweep grid out across the configured worker pool. Each chunk
/// maintains its own warm-seed chain (reset after a failed point so
/// recovery always restarts cold); fault plans are resolved by sweep index
/// before the point runs, keeping chaos injection deterministic under any
/// scheduling.
/// `Err(progress)` when the campaign was aborted by `hooks` at a chunk
/// boundary; the chunks that ran completed normally (their results are
/// discarded here but live on in the evaluation cache and persistent
/// store).
#[allow(clippy::too_many_arguments)] // internal fan-out plumbing
fn run_grid(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    faults: &CampaignFaults,
    config: &CampaignConfig,
    hooks: &exec::ExecHooks,
) -> Result<Vec<PointOutcome>, exec::ChunkProgress> {
    if config.lanes > 1 {
        return run_grid_batched(
            service, defect, op_point, r_values, n_ops, faults, config, hooks,
        );
    }
    exec::map_chunked_cancellable(r_values.len(), config, hooks, |range| {
        let mut seeds = WarmSeeds::default();
        range
            .map(|i| {
                let span = dso_obs::span("sweep.point");
                span.note("r_ohm", r_values[i]);
                let t0 = std::time::Instant::now();
                let mut stats = RecoveryStats::default();
                let mut cache = CacheTally::default();
                let warm_hits = seeds.available();
                let outcome = measure_point(
                    service,
                    defect,
                    r_values[i],
                    op_point,
                    n_ops,
                    faults.plan_for(i),
                    &seeds,
                    config.warm_start,
                    &mut stats,
                    &mut cache,
                );
                let (data, next_seeds) = match outcome {
                    Ok((point, next)) if config.warm_start => (Ok(point), next),
                    Ok((point, _)) => (Ok(point), WarmSeeds::default()),
                    Err(e) => (Err(e), WarmSeeds::default()),
                };
                seeds = next_seeds;
                // Warm-start hit/miss latency: points whose seedable
                // transients all ran warm vs. cold chunk heads.
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                let edges = &[10.0, 100.0, 1e3, 1e4, 1e5];
                if warm_hits > 0 {
                    dso_obs::histogram!("campaign.point_warm_ms", edges, nondet).observe(ms);
                } else {
                    dso_obs::histogram!("campaign.point_cold_ms", edges, nondet).observe(ms);
                }
                PointOutcome {
                    data,
                    stats,
                    warm_hits,
                    warm_misses: SEEDABLE_TRANSIENTS - warm_hits,
                    cache_hits: cache.hits,
                    disk_hits: cache.disk,
                    cache_misses: cache.misses,
                }
            })
            .collect()
    })
}

/// Batched variant of the grid fan-out (`config.lanes > 1`): each chunk's
/// clean points run cold through the lane planner
/// ([`EvalService::eval_batch_outcomes`]) in two stages — settles plus
/// sense threshold first, then the read trajectories the thresholds
/// position — so several sweep points advance per lockstep solve.
/// Fault-armed points keep the scalar cache-bypassing path, likewise cold
/// (lane batching and warm chaining are mutually exclusive). Plane values,
/// reports, and error values are bit-identical to a scalar run with
/// `warm_start` disabled at any thread count; only performance accounting
/// on failure paths may differ (a failed settle no longer short-circuits
/// the point's remaining stage-1 evaluations).
#[allow(clippy::too_many_arguments)] // internal fan-out plumbing
fn run_grid_batched(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    faults: &CampaignFaults,
    config: &CampaignConfig,
    hooks: &exec::ExecHooks,
) -> Result<Vec<PointOutcome>, exec::ChunkProgress> {
    /// Stage-crossing state of one clean (fault-free) point.
    struct CleanPoint {
        slot: usize,
        r: f64,
        stats: RecoveryStats,
        cache: CacheTally,
        error: Option<CoreError>,
        w0: Vec<f64>,
        w1: Vec<f64>,
        vsa: f64,
        below: Vec<f64>,
        above: Vec<f64>,
    }

    impl CleanPoint {
        fn new(slot: usize, r: f64) -> Self {
            CleanPoint {
                slot,
                r,
                stats: RecoveryStats::default(),
                cache: CacheTally::default(),
                error: None,
                w0: Vec::new(),
                w1: Vec::new(),
                vsa: 0.0,
                below: Vec::new(),
                above: Vec::new(),
            }
        }

        /// Folds one evaluation into the point's tallies, keeping the
        /// first error in request order — the same error a scalar
        /// `measure_point` would have short-circuited with.
        fn absorb<T>(&mut self, value: Result<T, CoreError>, write: impl FnOnce(&mut Self, T)) {
            match value {
                Ok(v) => write(self, v),
                Err(e) => {
                    if self.error.is_none() {
                        self.error = Some(e);
                    }
                }
            }
        }
    }

    exec::map_chunked_cancellable(r_values.len(), config, hooks, |range| {
        let span = dso_obs::span("sweep.lane_chunk");
        let mut chunk: Vec<Option<PointOutcome>> = range.clone().map(|_| None).collect();
        let mut clean: Vec<CleanPoint> = Vec::new();
        for (slot, i) in range.enumerate() {
            let r = r_values[i];
            match faults.plan_for(i) {
                Some(plan) => {
                    let mut stats = RecoveryStats::default();
                    let mut cache = CacheTally::default();
                    let outcome = measure_point(
                        service,
                        defect,
                        r,
                        op_point,
                        n_ops,
                        Some(plan),
                        &WarmSeeds::default(),
                        false,
                        &mut stats,
                        &mut cache,
                    );
                    chunk[slot] = Some(PointOutcome {
                        data: outcome.map(|(point, _)| point),
                        stats,
                        warm_hits: 0,
                        warm_misses: SEEDABLE_TRANSIENTS,
                        cache_hits: cache.hits,
                        disk_hits: cache.disk,
                        cache_misses: cache.misses,
                    });
                }
                None => clean.push(CleanPoint::new(slot, r)),
            }
        }
        span.note("lane_points", clean.len() as f64);

        // Stage 1: both settle sequences and the sense threshold, three
        // requests per clean point (`measure_point`'s first three
        // evaluations, in the same order).
        let stage1: Vec<SimRequest> = clean
            .iter()
            .flat_map(|p| {
                [
                    SimRequest::settle(defect, p.r, op_point, false, n_ops),
                    SimRequest::settle(defect, p.r, op_point, true, n_ops),
                    SimRequest::vsa(defect, p.r, op_point),
                ]
            })
            .collect();
        let mut stage1_out = service
            .eval_batch_outcomes(&stage1, config.lanes)
            .into_iter();
        for point in &mut clean {
            let mut next = |point: &mut CleanPoint| {
                let outcome = stage1_out.next().expect("stage-1 outcome per request");
                point.cache.take(outcome, &mut point.stats)
            };
            let w0 = next(point).and_then(|(v, _)| v.into_series());
            point.absorb(w0, |p, vcs| p.w0 = vcs);
            let w1 = next(point).and_then(|(v, _)| v.into_series());
            point.absorb(w1, |p, vcs| p.w1 = vcs);
            let vsa = next(point).and_then(|(v, _)| v.scalar());
            point.absorb(vsa, |p, v| p.vsa = v);
        }

        // Stage 2: the read trajectories, positioned by stage 1's
        // thresholds, for every point still alive.
        let live: Vec<usize> = (0..clean.len())
            .filter(|&ci| clean[ci].error.is_none())
            .collect();
        let stage2: Vec<SimRequest> = live
            .iter()
            .flat_map(|&ci| {
                let p = &clean[ci];
                let below_start = (p.vsa - READ_START_OFFSET).max(0.0);
                let above_start = (p.vsa + READ_START_OFFSET).min(op_point.vdd);
                [
                    SimRequest::reads(defect, p.r, op_point, below_start, n_ops),
                    SimRequest::reads(defect, p.r, op_point, above_start, n_ops),
                ]
            })
            .collect();
        let mut stage2_out = service
            .eval_batch_outcomes(&stage2, config.lanes)
            .into_iter();
        for &ci in &live {
            let point = &mut clean[ci];
            let mut next = |point: &mut CleanPoint| {
                let outcome = stage2_out.next().expect("stage-2 outcome per request");
                point.cache.take(outcome, &mut point.stats)
            };
            let below = next(point).and_then(|(v, _)| v.into_outcomes());
            point.absorb(below, |p, (vcs, _)| p.below = vcs);
            let above = next(point).and_then(|(v, _)| v.into_outcomes());
            point.absorb(above, |p, (vcs, _)| p.above = vcs);
        }

        for point in clean {
            let data = match point.error {
                Some(e) => Err(e),
                None => Ok(PointData {
                    w0: point.w0,
                    w1: point.w1,
                    vsa: point.vsa,
                    below: point.below,
                    above: point.above,
                }),
            };
            chunk[point.slot] = Some(PointOutcome {
                data,
                stats: point.stats,
                warm_hits: 0,
                warm_misses: SEEDABLE_TRANSIENTS,
                cache_hits: point.cache.hits,
                disk_hits: point.cache.disk,
                cache_misses: point.cache.misses,
            });
        }
        chunk
            .into_iter()
            .map(|slot| slot.expect("every sweep point resolved"))
            .collect()
    })
}

/// Folds one point's outcome counters into a campaign-level tally.
fn tally(perf: &mut CampaignPerfStats, outcome: &PointOutcome) {
    perf.points += 1;
    perf.warm_hits += outcome.warm_hits;
    perf.warm_misses += outcome.warm_misses;
    perf.newton_iters += outcome.stats.newton_iters;
    perf.solve_attempts += outcome.stats.solve_attempts;
    perf.cache_hits += outcome.cache_hits;
    perf.disk_hits += outcome.disk_hits;
    perf.cache_misses += outcome.cache_misses;
    perf.failures += usize::from(outcome.data.is_err());
    perf.lu_refactors += outcome.stats.lu_refactors;
    perf.lu_reuses += outcome.stats.lu_reuses;
    perf.bypass_hits += outcome.stats.bypass_hits;
    perf.bypass_misses += outcome.stats.bypass_misses;
}

fn validate_sweep(r_values: &[f64], n_ops: usize) -> Result<(), CoreError> {
    if r_values.len() < 2 {
        return Err(CoreError::BadRequest(
            "result planes need at least two resistance points".into(),
        ));
    }
    if n_ops == 0 {
        return Err(CoreError::BadRequest("n_ops must be positive".into()));
    }
    if r_values.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CoreError::BadRequest(
            "resistance sweep must be strictly increasing".into(),
        ));
    }
    Ok(())
}

/// Builds the three planes from complete per-point data.
fn assemble_planes(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    data: &[PointData],
) -> Result<ResultPlanes, CoreError> {
    // Build each track directly from the per-point data: one pass per
    // curve, no intermediate pre-sized scratch vectors.
    let curves_of = |series: fn(&PointData) -> &Vec<f64>| -> Result<Vec<Curve>, CoreError> {
        (0..n_ops)
            .map(|k| {
                let ys: Vec<f64> = data.iter().map(|p| series(p)[k]).collect();
                Curve::new(r_values.to_vec(), ys).map_err(CoreError::from)
            })
            .collect()
    };

    Ok(ResultPlanes {
        w0: WritePlane {
            write_high: false,
            r_values: r_values.to_vec(),
            curves: curves_of(|p| &p.w0)?,
        },
        w1: WritePlane {
            write_high: true,
            r_values: r_values.to_vec(),
            curves: curves_of(|p| &p.w1)?,
        },
        r: ReadPlane {
            r_values: r_values.to_vec(),
            vsa: Curve::new(r_values.to_vec(), data.iter().map(|p| p.vsa).collect())?,
            from_below: curves_of(|p| &p.below)?,
            from_above: curves_of(|p| &p.above)?,
        },
        vmp: service.vmp(defect, op_point)?,
        op_point: *op_point,
    })
}

/// Generates the three result planes for `defect` at `op_point`, sweeping
/// the given resistances and applying `n_ops` successive operations per
/// trajectory.
///
/// This is the strict variant: the first point failure aborts the whole
/// plane. Long campaigns should prefer [`crate::Session::planes_faulted`],
/// which degrades gracefully.
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for fewer than 2 sweep points or `n_ops == 0`.
/// * Simulation failures, annotated with campaign context
///   ([`CoreError::AtPoint`]).
pub fn result_planes(
    analyzer: &Analyzer,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
) -> Result<ResultPlanes, CoreError> {
    let service = EvalService::from_env(analyzer.clone());
    result_planes_impl(
        &service,
        defect,
        op_point,
        r_values,
        n_ops,
        &CampaignConfig::from_env(),
    )
    .map(|(planes, _)| planes)
}

/// The strict result-plane campaign on a caller-supplied service: grid
/// points already present in the service's cache are replayed instead of
/// re-simulated, and every computed point is stored for later workloads
/// (border refinement, shmoo grids, repeat campaigns).
///
/// Results are bit-identical for every `config.threads` value (given the
/// same chunk size and warm-start/lane setting); see [`crate::exec`] for
/// the determinism contract. On failure the whole grid is still evaluated,
/// and the error of the lowest-index failed point is returned.
pub(crate) fn result_planes_impl(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    config: &CampaignConfig,
) -> Result<(ResultPlanes, CampaignPerfStats), CoreError> {
    validate_sweep(r_values, n_ops)?;
    let obs_env = dso_obs::init_from_env();
    let span = dso_obs::span("campaign.result_planes");
    span.note("points", r_values.len() as f64);
    let clean = CampaignFaults::new();
    let Ok(outcomes) = run_grid(
        service,
        defect,
        op_point,
        r_values,
        n_ops,
        &clean,
        config,
        &exec::ExecHooks::default(),
    ) else {
        unreachable!("empty hooks never abort")
    };
    let mut perf = CampaignPerfStats::default();
    for outcome in &outcomes {
        tally(&mut perf, outcome);
    }
    // Fold the tally into the registry before any failed point can abort
    // the assembly below — the work was spent either way.
    perf.record_to_metrics();
    export_metrics(&obs_env);
    let mut data = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        data.push(outcome.data?);
    }
    let planes = assemble_planes(service, defect, op_point, r_values, n_ops, &data)?;
    Ok((planes, perf))
}

/// Writes the metrics snapshot to the path requested via `DSO_METRICS`
/// (best effort — observability must never fail a campaign).
fn export_metrics(env: &dso_obs::EnvConfig) {
    if let Some(path) = &env.metrics_path {
        if let Err(err) = std::fs::write(path, dso_obs::metrics::snapshot().to_json()) {
            eprintln!(
                "dso-core: cannot write DSO_METRICS={}: {err}",
                path.display()
            );
        }
    }
}

/// Result planes produced by a fault-tolerant sweep campaign: the planes
/// themselves (gaps interpolated), the per-point [`SweepReport`], and the
/// [`Confidence`] consumers should attach to anything extracted from them.
#[derive(Debug, Clone)]
pub struct PlaneCampaign {
    /// The assembled planes. Values at failed points are linear
    /// interpolations (in the sweep axis) between the bracketing
    /// non-failed neighbors.
    pub planes: ResultPlanes,
    /// Per-point accounting: every attempted point is recorded as
    /// converged, recovered, or failed.
    pub report: SweepReport,
    /// Full when nothing failed, degraded with the gap count otherwise.
    pub confidence: Confidence,
    /// Execution-performance tally: warm-start hits and Newton work.
    pub perf: CampaignPerfStats,
    /// The defect description, for error reporting.
    defect: String,
    /// Bracketing resistances of each interpolated gap.
    gaps: Vec<(f64, f64)>,
}

impl PlaneCampaign {
    /// The bracketing resistances `(lo, hi)` of each interpolated gap.
    pub fn gaps(&self) -> &[(f64, f64)] {
        &self.gaps
    }

    /// The border resistance read off the (possibly partial) planes, as
    /// [`ResultPlanes::border_from_intersection`].
    ///
    /// # Errors
    ///
    /// [`CoreError::BorderInGap`] if the intersection lands inside an
    /// interpolated gap — interpolated data must never decide a border.
    pub fn border_from_intersection(&self) -> Result<Option<f64>, CoreError> {
        let border = self.planes.border_from_intersection()?;
        if let Some(b) = border {
            if let Some(&gap) = self.gaps.iter().find(|(lo, hi)| b > *lo && b < *hi) {
                return Err(CoreError::BorderInGap {
                    defect: self.defect.clone(),
                    gap,
                });
            }
        }
        Ok(border)
    }
}

/// Fault-tolerant variant of [`result_planes`] (exposed as
/// [`crate::Session::planes_faulted`]): point failures do not abort the
/// sweep. Each attempted point is recorded in the returned
/// [`SweepReport`] as `Converged`, `Recovered(attempts)`, or
/// `Failed(reason)`; failed points become gaps whose curve values are
/// interpolated from the bracketing non-failed neighbors.
///
/// Interpolation is only legal when it cannot invent electrical behavior:
///
/// * every gap must be bracketed by non-failed points (a failed first or
///   last sweep point is unrecoverable), and
/// * the border margin must not change sign across the gap — a sign
///   change means the border crossing itself is lost, and interpolating
///   across it would fabricate the paper's key result.
///
/// `faults` arms the deterministic fault-injection harness at selected
/// sweep indices (pass [`CampaignFaults::new`] for a clean campaign).
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for invalid sweeps (as [`result_planes`]).
/// * [`CoreError::SweepFailed`] when fewer than two points survive or an
///   edge point failed.
/// * [`CoreError::BorderInGap`] when a gap straddles the border crossing.
///
/// The fault-tolerant plane campaign on a caller-supplied service: grid
/// points already present in the service's cache are replayed — values
/// *and* recovery accounting — so a cached re-run reproduces the cold
/// campaign bit-for-bit (planes, report, confidence, gaps). Fault-armed
/// points bypass the cache in both directions, so failures are never
/// stored and fault runs never consume clean cached values.
///
/// The returned planes, [`SweepReport`], gaps, and border are
/// bit-identical for every `config.threads` value — including under
/// injected faults — because chunk decomposition, warm-seed chains,
/// lane packing, and fault-plan resolution are all keyed on sweep index,
/// never on scheduling (see [`crate::exec`]).
#[allow(clippy::too_many_arguments)] // campaign plumbing: faults + config
pub(crate) fn plane_campaign_impl(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    faults: &CampaignFaults,
    config: &CampaignConfig,
) -> Result<PlaneCampaign, CoreError> {
    plane_campaign_hooked(
        service,
        defect,
        op_point,
        r_values,
        n_ops,
        faults,
        config,
        &exec::ExecHooks::default(),
    )
}

/// [`plane_campaign_impl`] with cooperative chunk-boundary
/// [`exec::ExecHooks`] — the service daemon's entry point. The hooks may
/// preempt between chunks (running interactive jobs on the paused worker)
/// and abort the remaining chunks, in which case the campaign returns
/// [`CoreError::Cancelled`]; the chunks that ran stay in the evaluation
/// cache and persistent store, so a re-submitted campaign replays them.
/// With empty hooks this is exactly [`plane_campaign_impl`].
#[allow(clippy::too_many_arguments)] // campaign plumbing: faults + config + hooks
pub(crate) fn plane_campaign_hooked(
    service: &EvalService,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
    faults: &CampaignFaults,
    config: &CampaignConfig,
    hooks: &exec::ExecHooks,
) -> Result<PlaneCampaign, CoreError> {
    validate_sweep(r_values, n_ops)?;
    let obs_env = dso_obs::init_from_env();
    let span = dso_obs::span("campaign.planes");
    span.note("points", r_values.len() as f64);
    let outcomes = run_grid(
        service, defect, op_point, r_values, n_ops, faults, config, hooks,
    )
    .map_err(|progress| CoreError::Cancelled {
        completed: progress.completed,
        total: progress.total,
    })?;
    let defect_name = defect.to_string();
    let mut perf = CampaignPerfStats::default();
    let mut report = SweepReport::new();
    let mut data: Vec<Option<PointData>> = Vec::with_capacity(r_values.len());
    for (outcome, &r) in outcomes.into_iter().zip(r_values) {
        tally(&mut perf, &outcome);
        match outcome.data {
            Ok(point) => {
                let status = if outcome.stats.is_clean() {
                    PointStatus::Converged
                } else {
                    PointStatus::Recovered {
                        attempts: outcome.stats.actions(),
                    }
                };
                report.record(r, status);
                data.push(Some(point));
            }
            // Configuration errors are not point failures: abort.
            Err(e @ CoreError::BadRequest(_)) => return Err(e),
            Err(e) => {
                report.record(
                    r,
                    PointStatus::Failed {
                        reason: e.to_string(),
                    },
                );
                data.push(None);
            }
        }
    }

    perf.record_to_metrics();
    export_metrics(&obs_env);

    let failed = data.iter().filter(|d| d.is_none()).count();
    let n = data.len();
    if n - failed < 2 || data[0].is_none() || data[n - 1].is_none() {
        // Borrow the first failure reason from the report; the one clone
        // happens only on this error path.
        let first_reason = report
            .points()
            .iter()
            .find_map(|p| match &p.status {
                PointStatus::Failed { reason } => Some(reason.as_str()),
                _ => None,
            })
            .unwrap_or_default();
        return Err(CoreError::SweepFailed {
            defect: defect_name,
            failed,
            total: n,
            first_reason: first_reason.to_string(),
        });
    }

    // Contiguous gap runs, each bracketed by non-failed indices (the edge
    // points are known good).
    let mut gap_brackets: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < n {
        if data[i].is_none() {
            let start = i;
            while data[i].is_none() {
                i += 1;
            }
            gap_brackets.push((start - 1, i));
        } else {
            i += 1;
        }
    }

    // Never interpolate across a border crossing: the w0 × Vsa margin must
    // keep its sign across every gap.
    for &(l, r_idx) in &gap_brackets {
        let (ml, mr) = match (&data[l], &data[r_idx]) {
            (Some(a), Some(b)) => (a.border_margin(), b.border_margin()),
            _ => unreachable!("gap brackets are non-failed by construction"),
        };
        if ml * mr < 0.0 {
            return Err(CoreError::BorderInGap {
                defect: defect_name,
                gap: (r_values[l], r_values[r_idx]),
            });
        }
    }

    // Fill the gaps by linear interpolation on a log-resistance axis.
    for &(l, r_idx) in &gap_brackets {
        let (lo, hi) = (r_values[l].ln(), r_values[r_idx].ln());
        for k in l + 1..r_idx {
            let t = (r_values[k].ln() - lo) / (hi - lo);
            let filled = match (&data[l], &data[r_idx]) {
                (Some(a), Some(b)) => PointData::lerp(a, b, t),
                _ => unreachable!("gap brackets are non-failed by construction"),
            };
            data[k] = Some(filled);
        }
    }

    let complete: Vec<PointData> = data
        .into_iter()
        .map(|d| d.expect("every gap was interpolated"))
        .collect();
    let planes = assemble_planes(service, defect, op_point, r_values, n_ops, &complete)?;
    // Confidence counts gap *intervals*: adjacent failed points merge into
    // one interpolated span, which is what border extraction cares about.
    let confidence = if gap_brackets.is_empty() {
        Confidence::Full
    } else {
        Confidence::Degraded {
            gaps: gap_brackets.len(),
        }
    };
    Ok(PlaneCampaign {
        planes,
        confidence,
        perf,
        gaps: gap_brackets
            .iter()
            .map(|&(l, r_idx)| (r_values[l], r_values[r_idx]))
            .collect(),
        defect: defect_name,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fast_design;
    use super::*;
    use dso_defects::BitLineSide;

    fn small_planes() -> ResultPlanes {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        result_planes(
            &analyzer,
            &defect,
            &OperatingPoint::nominal(),
            &[1e4, 1e5, 1e6, 1e7],
            2,
        )
        .unwrap()
    }

    #[test]
    fn planes_have_expected_shape() {
        let planes = small_planes();
        assert_eq!(planes.w0.curves.len(), 2);
        assert_eq!(planes.w1.curves.len(), 2);
        assert_eq!(planes.r.from_below.len(), 2);
        assert!(!planes.w0.write_high);
        assert!(planes.w1.write_high);
        // w0 residual voltage rises with R (harder to discharge).
        let first = planes.w0.after_ops(1).unwrap();
        let ys = first.ys();
        assert!(
            ys.last().unwrap() > ys.first().unwrap(),
            "w0 curve should rise with R: {ys:?}"
        );
        // w1 settlement falls with R (harder to charge).
        let w1 = planes.w1.after_ops(1).unwrap();
        assert!(w1.ys().last().unwrap() < w1.ys().first().unwrap());
        // Vsa falls toward GND as R grows.
        let vsa = &planes.r.vsa;
        assert!(vsa.ys().last().unwrap() < vsa.ys().first().unwrap());
        // Vmp near mid-rail.
        assert!((0.5..1.9).contains(&planes.vmp), "vmp = {}", planes.vmp);
    }

    #[test]
    fn border_from_intersection_exists_for_cell_open() {
        let planes = small_planes();
        let border = planes.border_from_intersection().unwrap();
        let b = border.expect("the (2)w0 and Vsa curves cross for a cell open");
        assert!(
            (1e4..1e7).contains(&b),
            "border should sit inside the sweep, got {b:.3e}"
        );
    }

    #[test]
    fn csv_export_has_all_series() {
        let planes = small_planes();
        let csv = planes.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + one row per resistance.
        assert_eq!(lines.len(), 1 + planes.w0.r_values.len());
        let header = lines[0];
        for col in [
            "R_ohm",
            "w0_1",
            "w0_2",
            "w1_1",
            "vsa",
            "r_below_1",
            "r_above_2",
        ] {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        // Every row has the same number of cells as the header.
        let cols = header.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn after_ops_bounds_checked() {
        let planes = small_planes();
        assert!(planes.w0.after_ops(0).is_err());
        assert!(planes.w0.after_ops(3).is_err());
        assert!(planes.w0.after_ops(2).is_ok());
    }

    #[test]
    fn request_validation() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        assert!(result_planes(&analyzer, &defect, &op, &[1e4], 2).is_err());
        assert!(result_planes(&analyzer, &defect, &op, &[1e5, 1e4], 2).is_err());
        assert!(result_planes(&analyzer, &defect, &op, &[1e4, 1e5], 0).is_err());
    }
}
