//! Result planes (Figures 2 and 6).
//!
//! A result plane shows, for every defect resistance in a sweep, how the
//! cell voltage evolves under successive applications of one operation:
//!
//! * the `w0` plane starts the cell at `vdd` and applies `w0`s,
//! * the `w1` plane starts at GND and applies `w1`s,
//! * the `r` plane first establishes the sense threshold `Vsa(R)` and then
//!   applies reads starting slightly below and slightly above it.
//!
//! The planes are the raw material for border-resistance extraction: the
//! border of the paper's cell open is the `R` where the second-`w0`
//! settlement curve crosses `Vsa(R)`.

use super::Analyzer;
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::OperatingPoint;
use dso_num::interp::Curve;

/// Offset (volts) around `Vsa` at which the read-plane trajectories start,
/// following the paper's 0.2 V.
pub const READ_START_OFFSET: f64 = 0.2;

/// Settlement curves of one write operation across the resistance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WritePlane {
    /// `true` for the `w1` plane (physical high), `false` for `w0`.
    pub write_high: bool,
    /// Swept defect resistances (strictly increasing).
    pub r_values: Vec<f64>,
    /// `curves[k]` is the cell voltage after `k+1` consecutive writes, as a
    /// function of `R`.
    pub curves: Vec<Curve>,
}

impl WritePlane {
    /// The settlement curve after `n` operations (1-based, like the
    /// paper's `(2) w0` label).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] if `n` is 0 or exceeds the number
    /// of simulated operations.
    pub fn after_ops(&self, n: usize) -> Result<&Curve, CoreError> {
        if n == 0 || n > self.curves.len() {
            return Err(CoreError::BadRequest(format!(
                "write plane holds {} curves, requested #{n}",
                self.curves.len()
            )));
        }
        Ok(&self.curves[n - 1])
    }
}

/// The read plane: threshold curve plus read trajectories started around
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPlane {
    /// Swept defect resistances.
    pub r_values: Vec<f64>,
    /// Sense-amplifier threshold `Vsa(R)`.
    pub vsa: Curve,
    /// Cell voltage after each successive read, started `0.2 V` *below*
    /// `Vsa` (indexed like [`WritePlane::curves`]).
    pub from_below: Vec<Curve>,
    /// Same, started `0.2 V` *above* `Vsa`.
    pub from_above: Vec<Curve>,
}

/// The three result planes of Figure 2/6.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultPlanes {
    /// `w0` plane.
    pub w0: WritePlane,
    /// `w1` plane.
    pub w1: WritePlane,
    /// `r` plane.
    pub r: ReadPlane,
    /// Mid-point voltage of the defect-free cell.
    pub vmp: f64,
    /// The operating point (stress combination) the planes were generated
    /// at.
    pub op_point: OperatingPoint,
}

impl ResultPlanes {
    /// The border resistance read off the planes: the first intersection
    /// of the `w0` settlement curve with `Vsa(R)` — the dot of the paper's
    /// Figure 2(a).
    ///
    /// The first-operation curve is used because the detection condition
    /// applies exactly one `w0` after the settling `w1`s, and the
    /// settlement trajectories already start from the settled opposite
    /// level (see [`Analyzer::settle_sequence`]); this makes the
    /// intersection estimate directly comparable with the pass/fail
    /// bisection of [`super::border::find_border`].
    ///
    /// Returns `None` when the curves do not cross inside the sweep.
    ///
    /// # Errors
    ///
    /// Propagates curve-intersection failures (disjoint domains cannot
    /// happen for planes built by [`result_planes`]).
    ///
    /// [`Analyzer::settle_sequence`]: super::Analyzer::settle_sequence
    pub fn border_from_intersection(&self) -> Result<Option<f64>, CoreError> {
        let curve = self.w0.after_ops(1)?;
        Ok(curve.first_intersection(&self.r.vsa)?)
    }

    /// Renders every curve of the three planes as CSV for external
    /// plotting: one row per swept resistance, one column per series.
    pub fn to_csv(&self) -> String {
        let mut header = vec!["R_ohm".to_string()];
        for (i, _) in self.w0.curves.iter().enumerate() {
            header.push(format!("w0_{}", i + 1));
        }
        for (i, _) in self.w1.curves.iter().enumerate() {
            header.push(format!("w1_{}", i + 1));
        }
        header.push("vsa".to_string());
        for (i, _) in self.r.from_below.iter().enumerate() {
            header.push(format!("r_below_{}", i + 1));
        }
        for (i, _) in self.r.from_above.iter().enumerate() {
            header.push(format!("r_above_{}", i + 1));
        }
        let mut out = header.join(",");
        out.push('\n');
        for (row, &r) in self.w0.r_values.iter().enumerate() {
            let mut cells = vec![format!("{r:e}")];
            let series = self
                .w0
                .curves
                .iter()
                .chain(self.w1.curves.iter())
                .chain(std::iter::once(&self.r.vsa))
                .chain(self.r.from_below.iter())
                .chain(self.r.from_above.iter());
            for curve in series {
                cells.push(format!("{:.6}", curve.ys()[row]));
            }
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Generates the three result planes for `defect` at `op_point`, sweeping
/// the given resistances and applying `n_ops` successive operations per
/// trajectory.
///
/// # Errors
///
/// * [`CoreError::BadRequest`] for fewer than 2 sweep points or `n_ops == 0`.
/// * Simulation failures.
pub fn result_planes(
    analyzer: &Analyzer,
    defect: &Defect,
    op_point: &OperatingPoint,
    r_values: &[f64],
    n_ops: usize,
) -> Result<ResultPlanes, CoreError> {
    if r_values.len() < 2 {
        return Err(CoreError::BadRequest(
            "result planes need at least two resistance points".into(),
        ));
    }
    if n_ops == 0 {
        return Err(CoreError::BadRequest("n_ops must be positive".into()));
    }
    if r_values.windows(2).any(|w| w[0] >= w[1]) {
        return Err(CoreError::BadRequest(
            "resistance sweep must be strictly increasing".into(),
        ));
    }

    let mut w0_tracks: Vec<Vec<f64>> = vec![Vec::with_capacity(r_values.len()); n_ops];
    let mut w1_tracks = w0_tracks.clone();
    let mut below_tracks = w0_tracks.clone();
    let mut above_tracks = w0_tracks.clone();
    let mut vsa_track = Vec::with_capacity(r_values.len());

    for &r in r_values {
        let w0 = analyzer.settle_sequence(defect, r, op_point, false, n_ops)?;
        let w1 = analyzer.settle_sequence(defect, r, op_point, true, n_ops)?;
        let vsa = analyzer.vsa(defect, r, op_point)?;
        let below_start = (vsa - READ_START_OFFSET).max(0.0);
        let above_start = (vsa + READ_START_OFFSET).min(op_point.vdd);
        let (below, _) = analyzer.read_sequence(defect, r, op_point, below_start, n_ops)?;
        let (above, _) = analyzer.read_sequence(defect, r, op_point, above_start, n_ops)?;
        for k in 0..n_ops {
            w0_tracks[k].push(w0[k]);
            w1_tracks[k].push(w1[k]);
            below_tracks[k].push(below[k]);
            above_tracks[k].push(above[k]);
        }
        vsa_track.push(vsa);
    }

    let to_curves = |tracks: Vec<Vec<f64>>| -> Result<Vec<Curve>, CoreError> {
        tracks
            .into_iter()
            .map(|ys| Curve::new(r_values.to_vec(), ys).map_err(CoreError::from))
            .collect()
    };

    Ok(ResultPlanes {
        w0: WritePlane {
            write_high: false,
            r_values: r_values.to_vec(),
            curves: to_curves(w0_tracks)?,
        },
        w1: WritePlane {
            write_high: true,
            r_values: r_values.to_vec(),
            curves: to_curves(w1_tracks)?,
        },
        r: ReadPlane {
            r_values: r_values.to_vec(),
            vsa: Curve::new(r_values.to_vec(), vsa_track)?,
            from_below: to_curves(below_tracks)?,
            from_above: to_curves(above_tracks)?,
        },
        vmp: analyzer.vmp(defect, op_point)?,
        op_point: *op_point,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fast_design;
    use super::*;
    use dso_defects::BitLineSide;

    fn small_planes() -> ResultPlanes {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        result_planes(
            &analyzer,
            &defect,
            &OperatingPoint::nominal(),
            &[1e4, 1e5, 1e6, 1e7],
            2,
        )
        .unwrap()
    }

    #[test]
    fn planes_have_expected_shape() {
        let planes = small_planes();
        assert_eq!(planes.w0.curves.len(), 2);
        assert_eq!(planes.w1.curves.len(), 2);
        assert_eq!(planes.r.from_below.len(), 2);
        assert!(!planes.w0.write_high);
        assert!(planes.w1.write_high);
        // w0 residual voltage rises with R (harder to discharge).
        let first = planes.w0.after_ops(1).unwrap();
        let ys = first.ys();
        assert!(
            ys.last().unwrap() > ys.first().unwrap(),
            "w0 curve should rise with R: {ys:?}"
        );
        // w1 settlement falls with R (harder to charge).
        let w1 = planes.w1.after_ops(1).unwrap();
        assert!(w1.ys().last().unwrap() < w1.ys().first().unwrap());
        // Vsa falls toward GND as R grows.
        let vsa = &planes.r.vsa;
        assert!(vsa.ys().last().unwrap() < vsa.ys().first().unwrap());
        // Vmp near mid-rail.
        assert!((0.5..1.9).contains(&planes.vmp), "vmp = {}", planes.vmp);
    }

    #[test]
    fn border_from_intersection_exists_for_cell_open() {
        let planes = small_planes();
        let border = planes.border_from_intersection().unwrap();
        let b = border.expect("the (2)w0 and Vsa curves cross for a cell open");
        assert!(
            (1e4..1e7).contains(&b),
            "border should sit inside the sweep, got {b:.3e}"
        );
    }

    #[test]
    fn csv_export_has_all_series() {
        let planes = small_planes();
        let csv = planes.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + one row per resistance.
        assert_eq!(lines.len(), 1 + planes.w0.r_values.len());
        let header = lines[0];
        for col in ["R_ohm", "w0_1", "w0_2", "w1_1", "vsa", "r_below_1", "r_above_2"] {
            assert!(header.contains(col), "missing column {col}: {header}");
        }
        // Every row has the same number of cells as the header.
        let cols = header.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
    }

    #[test]
    fn after_ops_bounds_checked() {
        let planes = small_planes();
        assert!(planes.w0.after_ops(0).is_err());
        assert!(planes.w0.after_ops(3).is_err());
        assert!(planes.w0.after_ops(2).is_ok());
    }

    #[test]
    fn request_validation() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        assert!(result_planes(&analyzer, &defect, &op, &[1e4], 2).is_err());
        assert!(result_planes(&analyzer, &defect, &op, &[1e5, 1e4], 2).is_err());
        assert!(result_planes(&analyzer, &defect, &op, &[1e4, 1e5], 0).is_err());
    }
}
