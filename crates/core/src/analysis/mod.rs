//! Fault analysis (Section 3 of the paper).
//!
//! The central object is the [`Analyzer`], which owns the column design and
//! spins up defect-injected operation engines on demand. On top of it:
//!
//! * [`planes`] — result planes for `w0`/`w1`/`r` (Figures 2 and 6) and the
//!   sense-amplifier threshold curve `Vsa(R)`.
//! * [`border`] — border-resistance extraction.
//! * [`detection`] — detection conditions and their evaluation.
//! * [`dictionary`] — electrically calibrated behavioral cell models.

pub mod border;
pub mod detection;
pub mod dictionary;
pub mod planes;

pub use border::{find_border, BorderResistance};
pub use detection::{derive_detection, DetectionCondition, PhysOp};
pub use dictionary::{build_dictionary, DefectiveCell, FaultDictionary};
pub use planes::{result_planes, ReadPlane, ResultPlanes, WritePlane};

use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_dram::ops::{physical_write, Operation, OperationEngine};

/// Analysis front end: builds defect-injected engines and runs the
/// elementary measurements every higher-level analysis is made of.
#[derive(Debug, Clone)]
pub struct Analyzer {
    design: ColumnDesign,
}

impl Analyzer {
    /// Creates an analyzer for a column design.
    pub fn new(design: ColumnDesign) -> Self {
        Analyzer { design }
    }

    /// The column design under analysis.
    pub fn design(&self) -> &ColumnDesign {
        &self.design
    }

    /// Builds an operation engine with `defect` injected at `resistance`,
    /// targeting the defect's bit-line side, at the given operating point.
    ///
    /// # Errors
    ///
    /// Propagates design/netlist/operating-point failures.
    pub fn engine_for(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
    ) -> Result<OperationEngine, CoreError> {
        let mut engine =
            OperationEngine::new(self.design.clone(), *op_point)?.with_victim(defect.side());
        defect.inject(engine.column_mut(), resistance)?;
        Ok(engine)
    }

    /// Runs `n_ops` consecutive physical writes of `high` and returns the
    /// cell voltage after each — the settlement curves of the write
    /// planes.
    ///
    /// The trajectories mirror the detection-condition flow
    /// `{... w1 w1 w0 r0 ...}` (which starts from a discharged cell):
    ///
    /// * `w1` trajectories start from physical GND directly,
    /// * `w0` trajectories start from the *`w1`-settled* level — two `w1`
    ///   operations from GND are applied first and not reported.
    ///
    /// This makes the `(1) w0 × Vsa` curve intersection directly
    /// comparable with the pass/fail border bisection; starting the `w0`
    /// plane from the ideal `vdd` rail instead (as an idealized reading of
    /// the paper's Figure 2 would) overstates the charge the write has to
    /// remove whenever the settled 1-level sits below the rail.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn settle_sequence(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        high: bool,
        n_ops: usize,
    ) -> Result<Vec<f64>, CoreError> {
        if n_ops == 0 {
            return Err(CoreError::BadRequest("n_ops must be positive".into()));
        }
        let engine = self.engine_for(defect, resistance, op_point)?;
        let target = physical_write(high, defect.side());
        let mut seq = Vec::with_capacity(n_ops + 2);
        let skip = if high {
            0
        } else {
            let setup = physical_write(true, defect.side());
            seq.push(setup);
            seq.push(setup);
            2
        };
        seq.extend(std::iter::repeat(target).take(n_ops));
        let trace = engine.run(&seq, 0.0)?;
        Ok(trace.vc_ends()[skip..].to_vec())
    }

    /// Runs `n_ops` consecutive reads starting from `vc_init` and returns
    /// `(vc after each read, accessed-bit-line-sensed-high after each
    /// read)`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn read_sequence(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        vc_init: f64,
        n_ops: usize,
    ) -> Result<(Vec<f64>, Vec<bool>), CoreError> {
        if n_ops == 0 {
            return Err(CoreError::BadRequest("n_ops must be positive".into()));
        }
        let engine = self.engine_for(defect, resistance, op_point)?;
        let trace = engine.run(&vec![Operation::R; n_ops], vc_init)?;
        let highs = trace
            .cycles()
            .iter()
            .map(|c| {
                c.read
                    .expect("read cycles produce outcomes")
                    .accessed_high(defect.side())
            })
            .collect();
        Ok((trace.vc_ends(), highs))
    }

    /// The cell voltage at the *end of the write pulse* (word-line
    /// closing) of a single physical write of `high`, starting from the
    /// opposite rail.
    ///
    /// This isolates the write's strength from whatever the defect does to
    /// the stored charge during the rest of the cycle — the quantity the
    /// paper's stress probes reason about ("reducing `tcyc` reduces the
    /// time the memory has to charge or discharge the cell, which affects
    /// the write operation and not the read").
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn write_end_voltage(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        high: bool,
    ) -> Result<f64, CoreError> {
        let engine = self.engine_for(defect, resistance, op_point)?;
        let op = physical_write(high, defect.side());
        let vc_init = if high { 0.0 } else { op_point.vdd };
        let trace = engine.run(&[op], vc_init)?;
        let schedule = dso_dram::timing::CycleSchedule::new(op_point.duty)?;
        let t_wl_off = schedule.wl_off * op_point.tcyc;
        let storage = dso_dram::column::nodes::cap_top(defect.side());
        let vc = trace
            .tran()
            .voltage_at(&storage, t_wl_off)
            .map_err(dso_dram::DramError::Spice)?;
        Ok(vc)
    }

    /// The sense-amplifier threshold voltage `Vsa`: the initial cell
    /// voltage above which a read senses the accessed bit line high. Found
    /// by bisection on single-read outcomes.
    ///
    /// Returns `0.0` when even a fully discharged cell reads high (the
    /// paper's `Vsa → GND` limit for large opens) and `vdd` when even a
    /// full cell reads low.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn vsa(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
    ) -> Result<f64, CoreError> {
        let engine = self.engine_for(defect, resistance, op_point)?;
        let reads_high = |vc: f64| -> Result<bool, CoreError> {
            let trace = engine.run(&[Operation::R], vc)?;
            Ok(trace.cycles()[0]
                .read
                .expect("read produces outcome")
                .accessed_high(defect.side()))
        };
        if reads_high(0.0)? {
            return Ok(0.0);
        }
        if !reads_high(op_point.vdd)? {
            return Ok(op_point.vdd);
        }
        // Plain bisection on the monotone read outcome.
        let (mut lo, mut hi) = (0.0, op_point.vdd);
        while hi - lo > 2e-3 {
            let mid = 0.5 * (lo + hi);
            if reads_high(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// The mid-point voltage `Vmp`: the read threshold of the defect-free
    /// cell (the defect site at its absent resistance).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn vmp(&self, defect: &Defect, op_point: &OperatingPoint) -> Result<f64, CoreError> {
        self.vsa(defect, defect.absent_resistance(), op_point)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use dso_dram::design::ColumnDesign;

    /// Coarse time step for debug-mode tests.
    pub fn fast_design() -> ColumnDesign {
        ColumnDesign {
            dt_fraction: 1.0 / 250.0,
            ..ColumnDesign::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::fast_design;
    use super::*;
    use dso_defects::BitLineSide;

    #[test]
    fn settlement_moves_toward_rail() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        // Mild defect: writes settle essentially immediately.
        let vcs = analyzer
            .settle_sequence(&defect, 1e3, &op, false, 2)
            .unwrap();
        assert!(vcs[0] < 0.3, "w0 with small Rop should succeed: {vcs:?}");
        let w1 = analyzer
            .settle_sequence(&defect, 1e3, &op, true, 2)
            .unwrap();
        assert!(w1[0] > 1.5, "w1 with small Rop should charge: {w1:?}");
        // Severe defect: the w1 pre-charge is blocked, so the whole
        // detection flow freezes near GND.
        let w1_blocked = analyzer
            .settle_sequence(&defect, 5e7, &op, true, 2)
            .unwrap();
        assert!(
            w1_blocked[1] < 0.3,
            "w1 with 50 MΩ open should be blocked: {w1_blocked:?}"
        );
        // Moderate defect: the w0 after the settled 1 leaves a higher
        // residual than the healthy case — the failure mechanism of the
        // cell open.
        let healthy_w0 = vcs[0];
        let marginal_w0 = analyzer
            .settle_sequence(&defect, 2.5e6, &op, false, 1)
            .unwrap()[0];
        assert!(
            marginal_w0 > healthy_w0 + 0.2,
            "2.5 MΩ open should block the w0: {marginal_w0} vs {healthy_w0}"
        );
    }

    #[test]
    fn vsa_limits() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        // Healthy-ish cell: threshold strictly inside (0, vdd), near vdd/2.
        let vsa = analyzer.vsa(&defect, 1e3, &op).unwrap();
        assert!(
            (0.5..1.9).contains(&vsa),
            "nominal Vsa should be near mid-rail, got {vsa}"
        );
        // Severed cell: everything reads 1 -> threshold collapses to GND.
        let vsa_open = analyzer.vsa(&defect, 1e9, &op).unwrap();
        assert_eq!(vsa_open, 0.0);
        // Vmp uses the defect-free site.
        let vmp = analyzer.vmp(&defect, &op).unwrap();
        assert!((vmp - vsa).abs() < 0.3);
    }

    #[test]
    fn comp_side_symmetric_vsa() {
        let analyzer = Analyzer::new(fast_design());
        let op = OperatingPoint::nominal();
        let vsa_t = analyzer
            .vsa(&Defect::cell_open(BitLineSide::True), 1e3, &op)
            .unwrap();
        let vsa_c = analyzer
            .vsa(&Defect::cell_open(BitLineSide::Comp), 1e3, &op)
            .unwrap();
        assert!(
            (vsa_t - vsa_c).abs() < 0.15,
            "true/comp thresholds should match: {vsa_t} vs {vsa_c}"
        );
    }

    #[test]
    fn read_sequence_reports_outcomes() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        let (vcs, highs) = analyzer
            .read_sequence(&defect, 1e3, &op, 2.4, 2)
            .unwrap();
        assert_eq!(vcs.len(), 2);
        assert_eq!(highs, vec![true, true]);
        let (_, lows) = analyzer.read_sequence(&defect, 1e3, &op, 0.0, 1).unwrap();
        assert_eq!(lows, vec![false]);
    }

    #[test]
    fn zero_ops_rejected() {
        let analyzer = Analyzer::new(fast_design());
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        assert!(analyzer.settle_sequence(&defect, 1e3, &op, true, 0).is_err());
        assert!(analyzer.read_sequence(&defect, 1e3, &op, 0.0, 0).is_err());
    }
}
