//! Fault analysis (Section 3 of the paper).
//!
//! The central object is the [`Analyzer`], which owns the column design and
//! spins up defect-injected operation engines on demand. All transient
//! measurements flow through the [`crate::eval::EvalService`] built around
//! an analyzer — the analyzer itself only exposes the crate-internal
//! primitives the service executes. On top of it:
//!
//! * [`planes`] — result planes for `w0`/`w1`/`r` (Figures 2 and 6) and the
//!   sense-amplifier threshold curve `Vsa(R)`.
//! * [`border`] — border-resistance extraction.
//! * [`detection`] — detection conditions and their evaluation.
//! * [`dictionary`] — electrically calibrated behavioral cell models.
//! * [`shmoo`] — service-backed shmoo adapters that reuse campaign points.

pub mod border;
pub mod design_space;
pub mod detection;
pub mod dictionary;
pub mod planes;
pub mod shmoo;
pub mod sweep;

pub use border::{find_border, refine_border_from_planes, BorderResistance};
pub use design_space::{
    CoverageCell, DesignParam, DesignReport, DesignSpace, DesignSweepRequest, DesignSweepResult,
    TrendRow,
};
pub use detection::{derive_detection, DetectionCondition, PhysOp};
pub use dictionary::{build_dictionary, DefectiveCell, FaultDictionary};
pub use planes::{result_planes, PlaneCampaign, ReadPlane, ResultPlanes, WritePlane};
pub use sweep::{CampaignFaults, Confidence, PointStatus, SweepPoint, SweepReport};

use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::{ColumnDesign, OperatingPoint};
use dso_dram::ops::{physical_write, OpTrace, Operation, OperationEngine};
use dso_num::chaos::FaultPlan;
use dso_num::newton::NewtonOptions;
use dso_spice::recovery::{RecoveryPolicy, RecoveryStats};
use dso_spice::SolverTuning;

/// The solver tuning selected by the `DSO_LU_REUSE` and `DSO_BYPASS_TOL`
/// environment variables (defaults: LU reuse on, 100 µV bypass tolerance).
/// Invalid values warn once and fall back to the default, like every
/// other `DSO_*` knob.
pub fn tuning_from_env() -> SolverTuning {
    let mut tuning = SolverTuning::default();
    if let Some(reuse) = crate::env::boolean("DSO_LU_REUSE", "1") {
        tuning.lu_reuse = reuse;
    }
    if let Some(tol) = crate::env::non_negative_f64("DSO_BYPASS_TOL", "1e-4") {
        tuning.bypass_tol = tol;
    }
    tuning
}

/// Analysis front end: owns the column design, recovery policy, and solver
/// tuning, builds defect-injected engines, and implements the elementary
/// measurements the [`crate::eval::EvalService`] executes. Analysis layers
/// never call the measurement primitives directly — they submit requests
/// to the service, which memoizes and batches them.
#[derive(Debug, Clone)]
pub struct Analyzer {
    design: ColumnDesign,
    recovery: RecoveryPolicy,
    tuning: SolverTuning,
}

impl Analyzer {
    /// Creates an analyzer for a column design, with the default
    /// convergence-recovery policy (every ladder rung enabled) and the
    /// solver tuning selected by the environment ([`tuning_from_env`]).
    pub fn new(design: ColumnDesign) -> Self {
        Analyzer {
            design,
            recovery: RecoveryPolicy::default(),
            tuning: tuning_from_env(),
        }
    }

    /// Replaces the convergence-recovery policy applied to every engine
    /// this analyzer builds.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Replaces the solver tuning applied to every engine this analyzer
    /// builds. The tuning is part of the evaluation-cache context: results
    /// computed under one tuning are never served to another.
    pub fn with_tuning(mut self, tuning: SolverTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The column design under analysis.
    pub fn design(&self) -> &ColumnDesign {
        &self.design
    }

    /// The convergence-recovery policy in use.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// The solver tuning in use.
    pub fn tuning(&self) -> &SolverTuning {
        &self.tuning
    }

    /// The Newton options every engine built by this analyzer solves with
    /// — what a [`dso_num::batch::BatchBackend`] must be built from to
    /// drive this analyzer's transients in lockstep bit-identically.
    pub fn newton_options(&self) -> NewtonOptions {
        self.tuning.newton_options()
    }

    /// Builds an operation engine with `defect` injected at `resistance`,
    /// targeting the defect's bit-line side, at the given operating point,
    /// with an optional fault plan armed on the engine (each run clones
    /// the plan, so solve ordinals restart per run).
    pub(crate) fn engine_with(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        faults: Option<&FaultPlan>,
    ) -> Result<OperationEngine, CoreError> {
        let mut engine = OperationEngine::new(self.design.clone(), *op_point)?
            .with_victim(defect.side())
            .with_recovery(self.recovery)
            .with_tuning(self.tuning);
        if let Some(plan) = faults {
            engine = engine.with_fault_plan(plan.clone());
        }
        defect.inject(engine.column_mut(), resistance)?;
        Ok(engine)
    }

    /// Runs `n_ops` consecutive physical writes of `high` and returns the
    /// cell voltage after each — the settlement curves of the write planes
    /// — together with the run's full [`OpTrace`] so campaign layers can
    /// chain warm-start seeds across a sweep.
    ///
    /// The trajectories mirror the detection-condition flow
    /// `{... w1 w1 w0 r0 ...}` (which starts from a discharged cell):
    ///
    /// * `w1` trajectories start from physical GND directly,
    /// * `w0` trajectories start from the *`w1`-settled* level — two `w1`
    ///   operations from GND are applied first and not reported.
    ///
    /// This makes the `(1) w0 × Vsa` curve intersection directly
    /// comparable with the pass/fail border bisection; starting the `w0`
    /// plane from the ideal `vdd` rail instead (as an idealized reading of
    /// the paper's Figure 2 would) overstates the charge the write has to
    /// remove whenever the settled 1-level sits below the rail.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures, wrapped with campaign context
    /// ([`CoreError::AtPoint`]).
    #[allow(clippy::too_many_arguments)] // campaign plumbing: faults + seed + stats
    pub(crate) fn settle_trace(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        high: bool,
        n_ops: usize,
        faults: Option<&FaultPlan>,
        seed: Option<&OpTrace>,
        stats: &mut RecoveryStats,
    ) -> Result<(Vec<f64>, OpTrace), CoreError> {
        if n_ops == 0 {
            return Err(CoreError::BadRequest("n_ops must be positive".into()));
        }
        let engine = self.engine_with(defect, resistance, op_point, faults)?;
        let target = physical_write(high, defect.side());
        let mut seq = Vec::with_capacity(n_ops + 2);
        let skip = if high {
            0
        } else {
            let setup = physical_write(true, defect.side());
            seq.push(setup);
            seq.push(setup);
            2
        };
        seq.extend(std::iter::repeat_n(target, n_ops));
        let operation = if high { "w1 settle" } else { "w0 settle" };
        let trace = engine
            .run_seeded(&seq, 0.0, seed)
            .map_err(|e| CoreError::at_point(operation, resistance, Some(0.0), e.into()))?;
        stats.merge(trace.recovery());
        Ok((trace.vc_ends()[skip..].to_vec(), trace))
    }

    /// The cell voltage at the *end of the write pulse* (word-line
    /// closing) of a single physical write of `high`, starting from the
    /// opposite rail.
    ///
    /// This isolates the write's strength from whatever the defect does to
    /// the stored charge during the rest of the cycle — the quantity the
    /// paper's stress probes reason about ("reducing `tcyc` reduces the
    /// time the memory has to charge or discharge the cell, which affects
    /// the write operation and not the read").
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub(crate) fn write_end_voltage(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        high: bool,
        faults: Option<&FaultPlan>,
        stats: &mut RecoveryStats,
    ) -> Result<f64, CoreError> {
        let engine = self.engine_with(defect, resistance, op_point, faults)?;
        let op = physical_write(high, defect.side());
        let vc_init = if high { 0.0 } else { op_point.vdd };
        let operation = if high { "w1 probe" } else { "w0 probe" };
        let trace = engine
            .run(&[op], vc_init)
            .map_err(|e| CoreError::at_point(operation, resistance, Some(vc_init), e.into()))?;
        stats.merge(trace.recovery());
        let schedule = dso_dram::timing::CycleSchedule::new(op_point.duty)?;
        let t_wl_off = schedule.wl_off * op_point.tcyc;
        let storage = dso_dram::column::nodes::cap_top(defect.side());
        let vc = trace
            .tran()
            .voltage_at(&storage, t_wl_off)
            .map_err(dso_dram::DramError::Spice)?;
        Ok(vc)
    }

    /// The sense-amplifier threshold voltage `Vsa`: the initial cell
    /// voltage above which a read senses the accessed bit line high. Found
    /// by bisection on single-read outcomes; with `warm_probes` each
    /// probe's transient is seeded from the previous probe's trace (same
    /// resistance, same time grid, only the initial cell voltage differs —
    /// the chain is local to this one bisection, so it never couples sweep
    /// points).
    ///
    /// Returns `0.0` when even a fully discharged cell reads high (the
    /// paper's `Vsa → GND` limit for large opens) and `vdd` when even a
    /// full cell reads low.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures, wrapped with campaign context
    /// ([`CoreError::AtPoint`]).
    pub(crate) fn vsa_probed(
        &self,
        defect: &Defect,
        resistance: f64,
        op_point: &OperatingPoint,
        faults: Option<&FaultPlan>,
        warm_probes: bool,
        stats: &mut RecoveryStats,
    ) -> Result<f64, CoreError> {
        let engine = self.engine_with(defect, resistance, op_point, faults)?;
        let mut last: Option<OpTrace> = None;
        let mut reads_high = |vc: f64| -> Result<bool, CoreError> {
            let seed = if warm_probes { last.as_ref() } else { None };
            let trace = engine.run_seeded(&[Operation::R], vc, seed).map_err(|e| {
                CoreError::at_point("read threshold", resistance, Some(vc), e.into())
            })?;
            stats.merge(trace.recovery());
            let high = trace.cycles()[0]
                .read
                .map(|r| r.accessed_high(defect.side()))
                .ok_or_else(|| CoreError::BadRequest("read cycle produced no outcome".into()));
            last = Some(trace);
            high
        };
        if reads_high(0.0)? {
            return Ok(0.0);
        }
        if !reads_high(op_point.vdd)? {
            return Ok(op_point.vdd);
        }
        // Plain bisection on the monotone read outcome.
        let (mut lo, mut hi) = (0.0, op_point.vdd);
        while hi - lo > 2e-3 {
            let mid = 0.5 * (lo + hi);
            if reads_high(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use dso_dram::design::ColumnDesign;

    /// Coarse time step for debug-mode tests.
    pub fn fast_design() -> ColumnDesign {
        ColumnDesign {
            dt_fraction: 1.0 / 250.0,
            ..ColumnDesign::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::fast_design;
    use super::*;
    use crate::eval::EvalService;
    use dso_defects::BitLineSide;

    fn service() -> EvalService {
        EvalService::new(Analyzer::new(fast_design()))
    }

    #[test]
    fn settlement_moves_toward_rail() {
        let svc = service();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        // Mild defect: writes settle essentially immediately.
        let vcs = svc.settle_sequence(&defect, 1e3, &op, false, 2).unwrap();
        assert!(vcs[0] < 0.3, "w0 with small Rop should succeed: {vcs:?}");
        let w1 = svc.settle_sequence(&defect, 1e3, &op, true, 2).unwrap();
        assert!(w1[0] > 1.5, "w1 with small Rop should charge: {w1:?}");
        // Severe defect: the w1 pre-charge is blocked, so the whole
        // detection flow freezes near GND.
        let w1_blocked = svc.settle_sequence(&defect, 5e7, &op, true, 2).unwrap();
        assert!(
            w1_blocked[1] < 0.3,
            "w1 with 50 MΩ open should be blocked: {w1_blocked:?}"
        );
        // Moderate defect: the w0 after the settled 1 leaves a higher
        // residual than the healthy case — the failure mechanism of the
        // cell open.
        let healthy_w0 = vcs[0];
        let marginal_w0 = svc.settle_sequence(&defect, 2.5e6, &op, false, 1).unwrap()[0];
        assert!(
            marginal_w0 > healthy_w0 + 0.2,
            "2.5 MΩ open should block the w0: {marginal_w0} vs {healthy_w0}"
        );
    }

    #[test]
    fn vsa_limits() {
        let svc = service();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        // Healthy-ish cell: threshold strictly inside (0, vdd), near vdd/2.
        let vsa = svc.vsa(&defect, 1e3, &op).unwrap();
        assert!(
            (0.5..1.9).contains(&vsa),
            "nominal Vsa should be near mid-rail, got {vsa}"
        );
        // Severed cell: everything reads 1 -> threshold collapses to GND.
        let vsa_open = svc.vsa(&defect, 1e9, &op).unwrap();
        assert_eq!(vsa_open, 0.0);
        // Vmp uses the defect-free site.
        let vmp = svc.vmp(&defect, &op).unwrap();
        assert!((vmp - vsa).abs() < 0.3);
    }

    #[test]
    fn comp_side_symmetric_vsa() {
        let svc = service();
        let op = OperatingPoint::nominal();
        let vsa_t = svc
            .vsa(&Defect::cell_open(BitLineSide::True), 1e3, &op)
            .unwrap();
        let vsa_c = svc
            .vsa(&Defect::cell_open(BitLineSide::Comp), 1e3, &op)
            .unwrap();
        assert!(
            (vsa_t - vsa_c).abs() < 0.15,
            "true/comp thresholds should match: {vsa_t} vs {vsa_c}"
        );
    }

    #[test]
    fn read_sequence_reports_outcomes() {
        let svc = service();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        let (vcs, highs) = svc.read_sequence(&defect, 1e3, &op, 2.4, 2).unwrap();
        assert_eq!(vcs.len(), 2);
        assert_eq!(highs, vec![true, true]);
        let (_, lows) = svc.read_sequence(&defect, 1e3, &op, 0.0, 1).unwrap();
        assert_eq!(lows, vec![false]);
    }

    #[test]
    fn zero_ops_rejected() {
        let svc = service();
        let defect = Defect::cell_open(BitLineSide::True);
        let op = OperatingPoint::nominal();
        assert!(svc.settle_sequence(&defect, 1e3, &op, true, 0).is_err());
        assert!(svc.read_sequence(&defect, 1e3, &op, 0.0, 0).is_err());
    }
}
