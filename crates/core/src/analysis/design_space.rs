//! Cross-design campaign planner: the design axis of the sweep space.
//!
//! The paper fixes one folded-bit-line column and sweeps
//! `defects × R × operating points`; this module adds *designs* as a
//! first-class axis. A [`DesignSpace`] holds declarative
//! [`DesignConfig`]s; one [`Session::design_sweep`] pass expands each into a
//! [`DesignPlan`], builds one evaluation service per **distinct** plan,
//! and fans every `(design, defect, operating point)` campaign through
//! the batched plane pipeline. The outputs are per-design Table-1-style
//! coverage matrices and border-resistance-vs-design-parameter trend
//! tables.
//!
//! # Cross-design dedup
//!
//! Two configs that expand to the same electrical plan (for example a
//! `dummy_cell` reference scheme and the explicit `skewed` skew it
//! resolves to) share one evaluation context, so their simulation grids
//! are content-identical. The planner detects this through the same
//! content keys the memo cache uses: the healthy-reference request
//! (`Vsa` at the defect-absent resistance, the `vmp` anchor every
//! campaign issues) of a later design that collides with an earlier
//! design's key is counted in
//! [`CampaignPerfStats::cross_design_dedup`] and the
//! `eval.cross_design_dedup` metric, and the shared service answers the
//! whole grid from memory instead of re-simulating it.
//!
//! [`Session::design_sweep`]: crate::session::Session::design_sweep

use super::planes::plane_campaign_impl;
use super::sweep::{CampaignFaults, Confidence};
use super::Analyzer;
use crate::eval::{EvalService, SimRequest};
use crate::exec::{CampaignConfig, CampaignPerfStats};
use crate::stress::table::render_text_table;
use crate::CoreError;
use dso_defects::Defect;
use dso_dram::design::{DesignConfig, DesignPlan, OperatingPoint};
use dso_num::interp::logspace;
use dso_num::trend::{classify, Trend};
use dso_spice::units::format_eng;

/// An ordered set of named designs to sweep.
///
/// Construction expands every config eagerly, so a `DesignSpace` is
/// always valid: each config passed validation and resolved to a plan.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    configs: Vec<DesignConfig>,
    plans: Vec<DesignPlan>,
}

impl DesignSpace {
    /// Builds a design space from declarative configs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] for an empty set, a duplicate
    /// design name, or a config that fails validation/expansion.
    pub fn new(configs: Vec<DesignConfig>) -> Result<Self, CoreError> {
        if configs.is_empty() {
            return Err(CoreError::BadRequest(
                "design space needs at least one design".to_string(),
            ));
        }
        let mut plans = Vec::with_capacity(configs.len());
        for cfg in &configs {
            let plan = cfg
                .expand()
                .map_err(|e| CoreError::BadRequest(format!("design {:?}: {e}", cfg.name)))?;
            if plans.iter().any(|p: &DesignPlan| p.name() == plan.name()) {
                return Err(CoreError::BadRequest(format!(
                    "duplicate design name {:?}",
                    plan.name()
                )));
            }
            plans.push(plan);
        }
        Ok(DesignSpace { configs, plans })
    }

    /// Parses a design space from JSON config documents.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadRequest`] for malformed documents (see
    /// [`DesignSpace::new`] for the semantic checks).
    pub fn from_json(docs: &[dso_obs::json::Json]) -> Result<Self, CoreError> {
        let configs = docs
            .iter()
            .map(|d| {
                DesignConfig::from_json(d)
                    .map_err(|e| CoreError::BadRequest(format!("design config: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        DesignSpace::new(configs)
    }

    /// The source configs, in sweep order.
    pub fn configs(&self) -> &[DesignConfig] {
        &self.configs
    }

    /// The expanded plans, parallel to [`DesignSpace::configs`].
    pub fn plans(&self) -> &[DesignPlan] {
        &self.plans
    }

    /// Number of designs.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Always `false` — construction rejects empty spaces — but provided
    /// for the usual container contract.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Number of *distinct* electrical plans (designs whose configs
    /// expand to the same plan share one evaluation service).
    pub fn distinct_plans(&self) -> usize {
        let mut seen: Vec<u64> = Vec::new();
        for p in &self.plans {
            if !seen.contains(&p.fingerprint()) {
                seen.push(p.fingerprint());
            }
        }
        seen.len()
    }
}

/// What to sweep for every design of a [`DesignSpace`].
#[derive(Debug, Clone)]
pub struct DesignSweepRequest {
    /// Defects to analyze per design.
    pub defects: Vec<Defect>,
    /// Operating points to analyze per `(design, defect)`.
    pub op_points: Vec<OperatingPoint>,
    /// Resistance grid points per defect (log-spaced over the defect's
    /// class sweep range).
    pub r_points: usize,
    /// Consecutive operations per plane (the paper uses 5).
    pub n_ops: usize,
}

impl DesignSweepRequest {
    /// A request over `defects` at the nominal operating point with a
    /// 12-point resistance grid and 3 operations per plane.
    pub fn new(defects: Vec<Defect>) -> Self {
        DesignSweepRequest {
            defects,
            op_points: vec![OperatingPoint::nominal()],
            r_points: 12,
            n_ops: 3,
        }
    }

    /// Replaces the operating points.
    pub fn with_op_points(mut self, op_points: Vec<OperatingPoint>) -> Self {
        self.op_points = op_points;
        self
    }

    /// Replaces the resistance grid size.
    pub fn with_r_points(mut self, r_points: usize) -> Self {
        self.r_points = r_points;
        self
    }

    /// Replaces the operations-per-plane count.
    pub fn with_n_ops(mut self, n_ops: usize) -> Self {
        self.n_ops = n_ops;
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.defects.is_empty() {
            return Err(CoreError::BadRequest(
                "design sweep needs at least one defect".to_string(),
            ));
        }
        if self.op_points.is_empty() {
            return Err(CoreError::BadRequest(
                "design sweep needs at least one operating point".to_string(),
            ));
        }
        if self.r_points < 2 {
            return Err(CoreError::BadRequest(format!(
                "design sweep needs at least 2 resistance points, got {}",
                self.r_points
            )));
        }
        if self.n_ops == 0 {
            return Err(CoreError::BadRequest(
                "design sweep needs at least one operation per plane".to_string(),
            ));
        }
        for op in &self.op_points {
            op.validate().map_err(CoreError::Dram)?;
        }
        Ok(())
    }
}

/// One `(defect, operating point)` entry of a design's coverage matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCell {
    /// The analyzed defect.
    pub defect: Defect,
    /// The operating point the campaign ran at.
    pub op_point: OperatingPoint,
    /// Border resistance read off the planes, when the curves cross
    /// inside the sweep (`None`: no border in range, or the crossing sits
    /// in a failed-point gap).
    pub border: Option<f64>,
    /// `true` when the memory fails *above* the border (opens), `false`
    /// for fails-below (shorts/bridges).
    pub fails_above: bool,
    /// Mid-point voltage of the defect-free cell — the healthy-reference
    /// anchor shared across equal-plan designs.
    pub vmp: f64,
    /// Confidence of the underlying campaign.
    pub confidence: Confidence,
}

impl CoverageCell {
    /// Table-1-style border rendering (`R > 200 kΩ`, `R < 1 MΩ`, or `-`).
    pub fn border_label(&self) -> String {
        match self.border {
            Some(r) => {
                let op = if self.fails_above { '>' } else { '<' };
                format!("R {op} {}", format_eng(r, "Ω"))
            }
            None => "-".to_string(),
        }
    }
}

/// Coverage results for one design of the space.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name (from the config).
    pub name: String,
    /// Fingerprint of the expanded plan.
    pub fingerprint: u64,
    /// Charge-transfer ratio of the resolved design.
    pub transfer_ratio: f64,
    /// Total bit-line capacitance, farads.
    pub cbl: f64,
    /// Word-line boost, volts.
    pub wl_boost: f64,
    /// One cell per `(defect, operating point)`, defects outermost, in
    /// request order.
    pub cells: Vec<CoverageCell>,
}

impl DesignReport {
    /// Renders the design's Table-1-style coverage matrix as an aligned
    /// text table.
    pub fn coverage_matrix(&self) -> String {
        let multi_op = self
            .cells
            .iter()
            .any(|c| c.op_point != self.cells[0].op_point);
        let mut header: Vec<String> = vec!["Defect".into()];
        if multi_op {
            header.push("Vdd/tcyc".into());
        }
        header.extend(["Border R".into(), "Vmp".into(), "Confidence".into()]);
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let mut row = vec![c.defect.to_string()];
                if multi_op {
                    row.push(format!(
                        "{:.2} V / {}",
                        c.op_point.vdd,
                        format_eng(c.op_point.tcyc, "s")
                    ));
                }
                row.push(c.border_label());
                row.push(format!("{:.3} V", c.vmp));
                row.push(c.confidence.to_string());
                row
            })
            .collect();
        format!(
            "Design {:?} (transfer ratio {:.4}, fingerprint {:016x})\n{}",
            self.name,
            self.transfer_ratio,
            self.fingerprint,
            render_text_table(&header, &rows)
        )
    }
}

/// A scalar design parameter to order trend tables by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignParam {
    /// Charge-transfer ratio `Cs / (Cs + Cbl)`.
    TransferRatio,
    /// Total bit-line capacitance.
    BitLineCap,
    /// Word-line boost voltage.
    WordLineBoost,
}

impl DesignParam {
    /// Human-readable parameter label.
    pub fn label(&self) -> &'static str {
        match self {
            DesignParam::TransferRatio => "transfer ratio",
            DesignParam::BitLineCap => "bit-line capacitance",
            DesignParam::WordLineBoost => "word-line boost",
        }
    }

    /// The parameter's value for a design report.
    pub fn value(&self, report: &DesignReport) -> f64 {
        match self {
            DesignParam::TransferRatio => report.transfer_ratio,
            DesignParam::BitLineCap => report.cbl,
            DesignParam::WordLineBoost => report.wl_boost,
        }
    }
}

/// One row of a border-vs-design-parameter trend table.
#[derive(Debug, Clone)]
pub struct TrendRow {
    /// The defect the row tracks.
    pub defect: Defect,
    /// The operating point of the tracked cells.
    pub op_point: OperatingPoint,
    /// `(parameter value, border)` per design, sorted by ascending
    /// parameter value; `None` borders are designs without a crossing.
    pub borders: Vec<(f64, Option<f64>)>,
    /// Monotonicity of the border over the parameter (`None` when any
    /// design lacks a border or fewer than two designs were swept).
    pub trend: Option<Trend>,
}

/// Everything one design-space sweep produces.
#[derive(Debug, Clone)]
pub struct DesignSweepResult {
    /// Per-design coverage, in space order.
    pub designs: Vec<DesignReport>,
    /// Merged execution tally across every campaign of the sweep,
    /// including the cross-design dedup count.
    pub perf: CampaignPerfStats,
    /// Number of distinct electrical plans the sweep actually simulated.
    pub distinct_plans: usize,
}

impl DesignSweepResult {
    /// Healthy-reference grids answered from another design's results.
    pub fn cross_design_dedup(&self) -> usize {
        self.perf.cross_design_dedup
    }

    /// Border-vs-parameter trend rows: one per `(defect, operating
    /// point)`, each ordered by ascending `param` value.
    pub fn trend_rows(&self, param: DesignParam) -> Vec<TrendRow> {
        let Some(first) = self.designs.first() else {
            return Vec::new();
        };
        let mut order: Vec<usize> = (0..self.designs.len()).collect();
        order.sort_by(|&a, &b| {
            param
                .value(&self.designs[a])
                .total_cmp(&param.value(&self.designs[b]))
        });
        (0..first.cells.len())
            .map(|ci| {
                let borders: Vec<(f64, Option<f64>)> = order
                    .iter()
                    .map(|&di| {
                        let report = &self.designs[di];
                        (param.value(report), report.cells[ci].border)
                    })
                    .collect();
                let values: Option<Vec<f64>> = borders.iter().map(|(_, b)| *b).collect();
                let trend = values
                    .filter(|v| v.len() >= 2)
                    .and_then(|v| classify(&v, 1e-9).ok());
                TrendRow {
                    defect: first.cells[ci].defect,
                    op_point: first.cells[ci].op_point,
                    borders,
                    trend,
                }
            })
            .collect()
    }

    /// Renders the trend rows as an aligned text table: one column per
    /// design (ascending `param`), one row per `(defect, op point)`.
    pub fn trend_table(&self, param: DesignParam) -> String {
        let rows = self.trend_rows(param);
        let mut header: Vec<String> = vec!["Defect".into()];
        if let Some(first) = rows.first() {
            for (v, _) in &first.borders {
                header.push(format!("{} {v:.4}", param.label()));
            }
        }
        header.push("Trend".into());
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|row| {
                let mut cells = vec![row.defect.to_string()];
                for (_, border) in &row.borders {
                    cells.push(match border {
                        Some(r) => format_eng(*r, "Ω"),
                        None => "-".to_string(),
                    });
                }
                cells.push(
                    row.trend
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "n/a".to_string()),
                );
                cells
            })
            .collect();
        format!(
            "Border resistance vs {}\n{}",
            param.label(),
            render_text_table(&header, &table_rows)
        )
    }
}

/// Runs the one-pass cross-design sweep.
///
/// `template` supplies the recovery policy and solver tuning every
/// per-design analyzer inherits; `config` supplies threads/chunk/lanes
/// for each campaign. Designs sharing an expanded plan share one
/// evaluation service, so their grids dedup through the memo cache.
///
/// # Errors
///
/// Returns [`CoreError::BadRequest`] for an invalid request and
/// propagates the first campaign failure.
/// One [`EvalService`] per distinct plan fingerprint (first-appearance
/// order) plus a per-design index into it, so designs sharing an expanded
/// plan share one memo cache. The `template` analyzer supplies the
/// recovery policy and solver tuning every per-design analyzer inherits.
pub(crate) fn services_for(
    space: &DesignSpace,
    template: &Analyzer,
) -> (Vec<(u64, EvalService)>, Vec<usize>) {
    let mut services: Vec<(u64, EvalService)> = Vec::new();
    let mut service_index = Vec::with_capacity(space.len());
    for plan in space.plans() {
        let idx = services
            .iter()
            .position(|(fp, _)| *fp == plan.fingerprint())
            .unwrap_or_else(|| {
                let analyzer = Analyzer::new(plan.generate_design())
                    .with_recovery(*template.recovery())
                    .with_tuning(*template.tuning());
                services.push((plan.fingerprint(), EvalService::new(analyzer)));
                services.len() - 1
            });
        service_index.push(idx);
    }
    (services, service_index)
}

pub(crate) fn design_sweep_impl(
    space: &DesignSpace,
    request: &DesignSweepRequest,
    template: &Analyzer,
    config: &CampaignConfig,
) -> Result<DesignSweepResult, CoreError> {
    request.validate()?;
    let (services, service_index) = services_for(space, template);

    // (context, healthy-reference content key) -> first issuing design.
    let mut seen_refs: Vec<(u64, u64, usize)> = Vec::new();
    let mut perf = CampaignPerfStats::default();
    let mut designs = Vec::with_capacity(space.len());
    let faults = CampaignFaults::new();

    for (di, plan) in space.plans().iter().enumerate() {
        let service = &services[service_index[di]].1;
        let context = EvalService::context_for(service.analyzer());
        let mut cells = Vec::with_capacity(request.defects.len() * request.op_points.len());
        for defect in &request.defects {
            let (lo, hi) = defect.sweep_range();
            let r_values = logspace(lo, hi, request.r_points)?;
            for op_point in &request.op_points {
                let ref_key = SimRequest::vsa(defect, defect.absent_resistance(), op_point)
                    .content_key(context);
                match seen_refs
                    .iter()
                    .find(|(c, k, _)| *c == context && *k == ref_key)
                {
                    Some(&(_, _, first)) if first != di => {
                        perf.cross_design_dedup += 1;
                        dso_obs::counter!("eval.cross_design_dedup").add(1);
                    }
                    Some(_) => {}
                    None => seen_refs.push((context, ref_key, di)),
                }
                let campaign = plane_campaign_impl(
                    service,
                    defect,
                    op_point,
                    &r_values,
                    request.n_ops,
                    &faults,
                    config,
                )?;
                let border = match campaign.border_from_intersection() {
                    Ok(b) => b,
                    Err(CoreError::BorderInGap { .. }) => None,
                    Err(e) => return Err(e),
                };
                perf.merge(&campaign.perf);
                cells.push(CoverageCell {
                    defect: *defect,
                    op_point: *op_point,
                    border,
                    fails_above: defect.fails_above(),
                    vmp: campaign.planes.vmp,
                    confidence: campaign.confidence,
                });
            }
        }
        let design = plan.design();
        designs.push(DesignReport {
            name: plan.name().to_string(),
            fingerprint: plan.fingerprint(),
            transfer_ratio: plan.transfer_ratio(),
            cbl: design.cbl,
            wl_boost: design.wl_boost,
            cells,
        });
    }

    Ok(DesignSweepResult {
        designs,
        perf,
        distinct_plans: space.distinct_plans(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dso_dram::design::ReferenceScheme;

    fn cfg(name: &str) -> DesignConfig {
        DesignConfig {
            name: name.to_string(),
            ..DesignConfig::paper_default()
        }
    }

    #[test]
    fn space_rejects_bad_inputs() {
        assert!(matches!(
            DesignSpace::new(vec![]),
            Err(CoreError::BadRequest(_))
        ));
        assert!(matches!(
            DesignSpace::new(vec![cfg("a"), cfg("a")]),
            Err(CoreError::BadRequest(_))
        ));
        let invalid = DesignConfig {
            cell_cap: -1.0,
            ..cfg("bad")
        };
        assert!(matches!(
            DesignSpace::new(vec![invalid]),
            Err(CoreError::BadRequest(_))
        ));
    }

    #[test]
    fn distinct_plans_collapse_equal_electricals() {
        let dummy_skew = ReferenceScheme::DummyCell.resolve_skew(30e-15, 300e-15);
        let space = DesignSpace::new(vec![
            cfg("a"),
            DesignConfig {
                reference: ReferenceScheme::DummyCell,
                ..cfg("b")
            },
            DesignConfig {
                reference: ReferenceScheme::SkewedRef { skew: dummy_skew },
                ..cfg("c")
            },
        ])
        .unwrap();
        assert_eq!(space.len(), 3);
        assert_eq!(space.distinct_plans(), 2);
        assert!(!space.is_empty());
    }

    #[test]
    fn request_validation() {
        let defect = Defect::cell_open(dso_defects::BitLineSide::True);
        assert!(DesignSweepRequest::new(vec![]).validate().is_err());
        assert!(DesignSweepRequest::new(vec![defect])
            .with_op_points(vec![])
            .validate()
            .is_err());
        assert!(DesignSweepRequest::new(vec![defect])
            .with_r_points(1)
            .validate()
            .is_err());
        assert!(DesignSweepRequest::new(vec![defect])
            .with_n_ops(0)
            .validate()
            .is_err());
        assert!(DesignSweepRequest::new(vec![defect]).validate().is_ok());
    }

    #[test]
    fn trend_rows_classify_and_tolerate_missing_borders() {
        let defect = Defect::cell_open(dso_defects::BitLineSide::True);
        let op = OperatingPoint::nominal();
        let report = |name: &str, ratio: f64, border: Option<f64>| DesignReport {
            name: name.to_string(),
            fingerprint: ratio.to_bits(),
            transfer_ratio: ratio,
            cbl: 300e-15,
            wl_boost: 0.4,
            cells: vec![CoverageCell {
                defect,
                op_point: op,
                border,
                fails_above: true,
                vmp: 1.2,
                confidence: Confidence::Full,
            }],
        };
        let result = DesignSweepResult {
            designs: vec![
                report("mid", 0.09, Some(2e5)),
                report("low", 0.05, Some(1e5)),
                report("high", 0.12, Some(3e5)),
            ],
            perf: CampaignPerfStats::default(),
            distinct_plans: 3,
        };
        let rows = result.trend_rows(DesignParam::TransferRatio);
        assert_eq!(rows.len(), 1);
        // Sorted by ascending transfer ratio → borders increase.
        assert_eq!(rows[0].trend, Some(Trend::Increasing));
        assert_eq!(
            rows[0].borders.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0.05, 0.09, 0.12]
        );
        let table = result.trend_table(DesignParam::TransferRatio);
        assert!(table.contains("transfer ratio"), "{table}");
        assert!(table.contains("increasing"), "{table}");

        // A missing border degrades the row's trend to n/a.
        let partial = DesignSweepResult {
            designs: vec![report("a", 0.05, Some(1e5)), report("b", 0.09, None)],
            perf: CampaignPerfStats::default(),
            distinct_plans: 2,
        };
        let rows = partial.trend_rows(DesignParam::TransferRatio);
        assert_eq!(rows[0].trend, None);
        assert!(partial
            .trend_table(DesignParam::TransferRatio)
            .contains("n/a"));
    }

    #[test]
    fn coverage_matrix_renders() {
        let defect = Defect::cell_open(dso_defects::BitLineSide::True);
        let report = DesignReport {
            name: "paper".to_string(),
            fingerprint: 0xabcd,
            transfer_ratio: 30.0 / 330.0,
            cbl: 300e-15,
            wl_boost: 0.4,
            cells: vec![CoverageCell {
                defect,
                op_point: OperatingPoint::nominal(),
                border: Some(2e5),
                fails_above: true,
                vmp: 1.223,
                confidence: Confidence::Full,
            }],
        };
        let table = report.coverage_matrix();
        assert!(table.contains("O3 (true)"), "{table}");
        assert!(table.contains("R > 200 kΩ"), "{table}");
        assert!(table.contains("full"), "{table}");
        assert!(table.contains("1.223 V"), "{table}");
    }
}
